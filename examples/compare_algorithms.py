"""Compare all local clustering algorithms from the same seed.

The paper's conclusion: "we did not find any one algorithm that always
dominated the others... data analysts can use any of them for graph
cluster exploration, or even use all of them to find slightly different
clusters of similar size from the same seed set."  This example runs the
four diffusions plus the evolving set process from one seed and prints a
side-by-side comparison, including each run's work-depth profile and its
simulated time on the paper's 40-core machine.

Run:  python examples/compare_algorithms.py [proxy-name]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import PAPER_MACHINE, local_cluster, track
from repro.core import EvolvingSetParams, cluster_stats, evolving_set_process
from repro.graph import load_proxy, proxy_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "com-LJ"
    if name not in proxy_names():
        raise SystemExit(f"unknown proxy {name!r}; choose from {proxy_names()}")

    graph = load_proxy(name)
    seed = int(np.argmax(graph.degrees()))
    print(f"Graph: {name} proxy {graph!r}; seed {seed} (degree {graph.degree(seed)})\n")

    configs = [
        ("nibble", {"eps": 1e-6}),
        ("pr-nibble", {"alpha": 0.01, "eps": 1e-5}),
        ("hk-pr", {"t": 10.0, "taylor_degree": 20, "eps": 1e-4}),
        ("rand-hk-pr", {"t": 10.0, "max_walk_length": 10, "num_walks": 100_000}),
    ]
    header = (f"{'method':>12} {'|S|':>7} {'phi':>8} {'support':>8} "
              f"{'iters':>6} {'sim T1':>9} {'sim T40':>9} {'speedup':>8}")
    print(header)
    print("-" * len(header))
    for method, overrides in configs:
        with track() as tracker:
            result = local_cluster(graph, seed, method=method, rng=0, **overrides)
        t1 = PAPER_MACHINE.simulated_time(tracker, 1)
        t40 = PAPER_MACHINE.simulated_time_on_cores(tracker, 40)
        print(f"{method:>12} {result.size:>7} {result.conductance:>8.4f} "
              f"{result.diffusion.support_size():>8} {result.diffusion.iterations:>6} "
              f"{t1:>8.4f}s {t40:>8.4f}s {t1 / t40:>7.1f}x")

    best = None
    for restart in range(8):
        esp = evolving_set_process(
            graph, seed, EvolvingSetParams(max_iterations=60), rng=restart
        )
        if best is None or esp.conductance < best.conductance:
            best = esp
    stats = cluster_stats(graph, best.cluster)
    print(f"{'esp (best/8)':>12} {stats.size:>7} {stats.conductance:>8.4f} "
          f"{'-':>8} {best.iterations:>6} {'-':>9} {'-':>9} {'-':>8}")

    print("\nNo single method dominates: sizes and conductances differ slightly,")
    print("which is exactly the paper's conclusion — run several and compare.")


if __name__ == "__main__":
    main()
