"""Quickstart: find a local cluster around a seed vertex.

Builds a small social-network-like graph, runs PageRank-Nibble from a seed,
and prints the cluster the sweep cut selects — the paper's end-to-end
pipeline in a dozen lines.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import local_cluster
from repro.core import cluster_stats
from repro.graph import power_law_communities


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    print("Building a 10,000-vertex power-law community graph...")
    graph = power_law_communities(10_000, intra_degree=10.0, inter_degree=3.0, seed=42)
    print(f"  {graph!r} (average degree {graph.total_volume / graph.num_vertices:.1f})")

    print(f"\nRunning PR-Nibble + sweep cut from seed vertex {seed}...")
    result = local_cluster(graph, seed, method="pr-nibble", alpha=0.02, eps=1e-4)

    stats = cluster_stats(graph, result.cluster)
    print(f"  cluster size:   {result.size}")
    print(f"  volume:         {stats.volume}")
    print(f"  boundary edges: {stats.boundary}")
    print(f"  conductance:    {stats.conductance:.4f}")
    print(f"  diffusion touched {result.diffusion.support_size()} vertices "
          f"in {result.diffusion.iterations} parallel iterations")
    members = ", ".join(map(str, result.cluster[:12].tolist()))
    ellipsis = ", ..." if result.size > 12 else ""
    print(f"  members: [{members}{ellipsis}]")

    print("\nThe same call with the other diffusions:")
    for method, overrides in [
        ("nibble", {"eps": 1e-6}),
        ("hk-pr", {"t": 5.0, "eps": 1e-4}),
        ("rand-hk-pr", {"num_walks": 50_000}),
    ]:
        other = local_cluster(graph, seed, method=method, **overrides)
        print(f"  {method:11s} -> |S|={other.size:5d}  phi={other.conductance:.4f}")


if __name__ == "__main__":
    main()
