"""Network community profile of a graph (the paper's Figure 12 workflow).

Generates the NCP — best conductance per cluster size — of a social-network
proxy by sweeping PR-Nibble over random seeds and parameters, then renders
it as an ASCII log-log plot and writes the series to CSV.

Run:  python examples/ncp_profile.py [proxy-name] [num-seeds]
      (default: Twitter proxy, 25 seeds)
"""

from __future__ import annotations

import sys

from repro.bench import ascii_series, write_csv
from repro.core import log_binned, ncp_profile
from repro.graph import load_proxy, proxy_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Twitter"
    num_seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 25
    if name not in proxy_names():
        raise SystemExit(f"unknown proxy {name!r}; choose from {proxy_names()}")

    print(f"Loading the {name} proxy...")
    graph = load_proxy(name)
    print(f"  {graph!r}")

    print(f"Sweeping PR-Nibble from {num_seeds} random seeds "
          "(alpha in {0.05, 0.01}, eps in {1e-4, 1e-5})...")
    profile = ncp_profile(
        graph,
        num_seeds=num_seeds,
        alphas=(0.05, 0.01),
        eps_values=(1e-4, 1e-5),
        rng=0,
    )
    print(f"  {profile.runs} diffusion+sweep runs contributed")

    centers, minima = log_binned(profile)
    print("\nNCP (x: cluster size, y: best conductance; log-log):\n")
    print(ascii_series(centers.tolist(), minima.tolist(), logx=True, logy=True))

    best_size = int(profile.sizes()[profile.conductance[profile.sizes() - 1].argmin()])
    print(f"\nBest cluster overall: size {best_size}, "
          f"conductance {profile.best_at(best_size):.4f}")
    path = write_csv(
        f"ncp_{name}_example",
        ["size", "conductance"],
        zip(*profile.series()),
    )
    print(f"Full series written to {path}")


if __name__ == "__main__":
    main()
