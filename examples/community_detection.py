"""Community detection with local clustering (the paper's Section 1 use case).

"Andersen and Lang use a variant of the algorithm of Spielman and Teng to
identify communities in networks" — this example plants communities in a
graph, then recovers them from single seed vertices with each of the four
diffusion algorithms, scoring the recovery against the ground truth.

Run:  python examples/community_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import LocalClusterer
from repro.graph import planted_partition

NUM_COMMUNITIES = 20
COMMUNITY_SIZE = 100


def jaccard(found: np.ndarray, truth: np.ndarray) -> float:
    a, b = set(found.tolist()), set(truth.tolist())
    return len(a & b) / len(a | b)


def main() -> None:
    n = NUM_COMMUNITIES * COMMUNITY_SIZE
    print(f"Planting {NUM_COMMUNITIES} communities of {COMMUNITY_SIZE} vertices each...")
    graph = planted_partition(n, NUM_COMMUNITIES, intra_degree=8.0, inter_degree=1.0, seed=7)
    print(f"  {graph!r}")

    clusterer = LocalClusterer(graph, rng=0)
    methods = {
        "nibble": lambda seed: clusterer.nibble(seed, eps=1e-6),
        "pr-nibble": lambda seed: clusterer.pr_nibble(seed, alpha=0.05, eps=1e-6),
        "hk-pr": lambda seed: clusterer.hk_pr(seed, t=5.0, taylor_degree=12, eps=1e-5),
        "rand-hk-pr": lambda seed: clusterer.rand_hk_pr(
            seed, t=5.0, max_walk_length=10, num_walks=20_000
        ),
    }

    rng = np.random.default_rng(1)
    sample = rng.choice(NUM_COMMUNITIES, size=5, replace=False)
    print(f"\nRecovering communities {sample.tolist()} from one random seed each:\n")
    header = f"{'community':>10} {'seed':>6} " + "".join(f"{m:>22}" for m in methods)
    print(header)
    print("-" * len(header))

    scores: dict[str, list[float]] = {name: [] for name in methods}
    for community in sample.tolist():
        truth = np.arange(community * COMMUNITY_SIZE, (community + 1) * COMMUNITY_SIZE)
        seed = int(rng.choice(truth))
        cells = []
        for name, run in methods.items():
            result = run(seed)
            score = jaccard(result.cluster, truth)
            scores[name].append(score)
            cells.append(f"J={score:.2f} phi={result.conductance:.3f}")
        print(f"{community:>10} {seed:>6} " + "".join(f"{c:>22}" for c in cells))

    print("\nMean Jaccard overlap with ground truth:")
    for name, values in scores.items():
        print(f"  {name:11s} {np.mean(values):.3f}")
    print("\nAll four diffusions find (near-)exact planted communities from a")
    print("single seed while touching only a small neighborhood of the graph.")


if __name__ == "__main__":
    main()
