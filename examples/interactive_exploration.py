"""Interactive cluster exploration: find, inspect, remove, repeat.

The paper's motivating workflow (Section 1): "an analyst would run a
computation, study the result, and based on that determine what computation
to run next.  Furthermore, the analyst may want to repeatedly remove local
clusters from a graph."  This example peels several low-conductance
clusters off a social-network proxy, re-seeding in the remainder each time
— the loop that motivates making every single query fast.

Run:  python examples/interactive_exploration.py [rounds]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import LocalClusterer
from repro.core import best_seed_by_sampling
from repro.graph import induced_subgraph, load_proxy


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    print("Loading the soc-LJ proxy...")
    graph = load_proxy("soc-LJ")
    ids = np.arange(graph.num_vertices)  # current -> original vertex ids
    print(f"  {graph!r}\n")

    for round_number in range(1, rounds + 1):
        start = time.perf_counter()
        seed, sampled_phi = best_seed_by_sampling(graph, num_candidates=20, rng=round_number)
        clusterer = LocalClusterer(graph)
        result = clusterer.pr_nibble(seed, alpha=0.01, eps=1e-5)
        elapsed = time.perf_counter() - start

        print(f"round {round_number}: seed {int(ids[seed])} -> "
              f"|S|={result.size}, phi={result.conductance:.4f} "
              f"({elapsed:.2f}s including seed sampling)")
        preview = ", ".join(map(str, ids[result.cluster][:8].tolist()))
        print(f"  members (original ids): [{preview}{', ...' if result.size > 8 else ''}]")

        keep = np.setdiff1d(np.arange(graph.num_vertices), result.cluster)
        graph, kept_old = induced_subgraph(graph, keep)
        ids = ids[kept_old]
        print(f"  removed; remaining graph: {graph!r}\n")

    print("Each query returned in well under a second of diffusion time —")
    print("the interactivity the paper's parallel algorithms are built for.")


if __name__ == "__main__":
    main()
