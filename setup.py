"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package installs in offline
environments that lack the ``wheel`` package (where PEP 517 editable
installs fail): ``python setup.py develop`` is the fallback for
``pip install -e .``.
"""

from setuptools import setup

setup()
