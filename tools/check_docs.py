#!/usr/bin/env python3
"""Link and anchor checker for the markdown doc set.

Walks every markdown link in README.md and docs/*.md and fails when:

* a relative link points at a file that does not exist;
* a ``#fragment`` names a heading anchor that does not resolve in the
  target file (GitHub's slug rules: lowercase, punctuation stripped,
  spaces to hyphens, ``-N`` suffixes for duplicates).

External links (http/https/mailto) are deliberately not fetched — CI
must not fail on someone else's outage.  Run from anywhere:

    python tools/check_docs.py            # check the repo's doc set
    python tools/check_docs.py FILE...    # check specific files

Exit status 0 when every link resolves, 1 otherwise (one line per broken
link).  Used by the CI ``docs`` job and wrapped by
``tests/test_docs.py`` so tier-1 catches stale anchors too.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: files whose links are checked by default (the documentation set).
DEFAULT_FILES = ("README.md", "docs")

#: ``[text](target)`` — good enough for this doc set: no reference-style
#: links, no nested brackets, no titles.  Images (``![...]``) match too.
LINK_PATTERN = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (sans duplicate suffix)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)        # drop code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def collect_anchors(markdown: str) -> set[str]:
    """Every heading anchor the file exposes, with ``-N`` duplicates."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def iter_links(markdown: str):
    """Yield link targets outside fenced code blocks."""
    in_fence = False
    for line in markdown.splitlines():
        if CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            yield match.group(1)


def check_file(path: Path) -> list[str]:
    """Broken-link descriptions for one markdown file (empty = clean)."""
    errors: list[str] = []
    markdown = path.read_text(encoding="utf-8")
    for target in iter_links(markdown):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        location, _, fragment = target.partition("#")
        if location:
            resolved = (path.parent / location).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown files are not ours
            anchors = collect_anchors(resolved.read_text(encoding="utf-8"))
            if fragment not in anchors:
                errors.append(f"{path}: stale anchor -> {target}")
    return errors


def gather_default_files() -> list[Path]:
    files: list[Path] = []
    for entry in DEFAULT_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def main(argv: list[str]) -> int:
    files = [Path(arg) for arg in argv] if argv else gather_default_files()
    errors: list[str] = []
    checked = 0
    for path in files:
        errors.extend(check_file(path))
        checked += 1
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"{len(errors)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {checked} file(s), every link and anchor resolves")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
