"""Graph substrate: CSR representation, builders, generators, IO, proxies."""

from .builder import (
    edge_arrays_of,
    from_adjacency,
    from_edge_arrays,
    from_edge_list,
    from_networkx,
)
from .components import (
    component_sizes,
    connected_components,
    induced_subgraph,
    largest_component_vertices,
)
from .csr import CSRGraph
from .evolving import (
    EvolvingGraph,
    GraphVersion,
    apply_updates,
    normalize_update_edges,
)
from .generators import (
    barbell_graph,
    citation_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_3d,
    paper_figure1_graph,
    path_graph,
    planted_partition,
    power_law_communities,
    rand_local,
    rmat,
    star_graph,
)
from .io import (
    load_npz,
    read_adjacency_graph,
    read_edge_list,
    save_npz,
    write_adjacency_graph,
    write_edge_list,
)
from .proxies import PROXIES, ProxySpec, default_scale, load_proxy, proxy_names
from .shared import SharedCSR, SharedCSRHandle
from .sharded import (
    ShardMap,
    ShardSpill,
    ShardedCSR,
    ShardedCSRHandle,
    ShardedGraphView,
    plan_boundaries,
)

__all__ = [
    "CSRGraph",
    "EvolvingGraph",
    "GraphVersion",
    "apply_updates",
    "normalize_update_edges",
    "edge_arrays_of",
    "from_adjacency",
    "from_edge_arrays",
    "from_edge_list",
    "from_networkx",
    "component_sizes",
    "connected_components",
    "induced_subgraph",
    "largest_component_vertices",
    "barbell_graph",
    "citation_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "grid_3d",
    "paper_figure1_graph",
    "path_graph",
    "planted_partition",
    "power_law_communities",
    "rand_local",
    "rmat",
    "star_graph",
    "load_npz",
    "read_adjacency_graph",
    "read_edge_list",
    "save_npz",
    "write_adjacency_graph",
    "write_edge_list",
    "PROXIES",
    "ProxySpec",
    "default_scale",
    "load_proxy",
    "proxy_names",
    "SharedCSR",
    "SharedCSRHandle",
    "ShardMap",
    "ShardSpill",
    "ShardedCSR",
    "ShardedCSRHandle",
    "ShardedGraphView",
    "plan_boundaries",
]
