"""Shared-memory graph plane: one CSR copy, visible from every process.

The paper's execution model keeps a single read-only Ligra CSR graph in
shared memory while all cores run diffusions against it.  Under the
``fork`` start method Python gets that for free (copy-on-write pages), but
``spawn``/``forkserver`` workers start from a fresh interpreter and inherit
nothing — historically the process backend had to warn and degrade to
serial execution on those platforms.

:class:`SharedCSR` closes that gap with ``multiprocessing.shared_memory``:
the parent exports ``offsets``/``neighbors`` into two named segments once,
workers attach zero-copy on *any* start method, and the parent unlinks the
segments deterministically when the engine shuts down.

Lifecycle contract
------------------

* ``SharedCSR.create(graph)`` (parent) — copies the CSR arrays into fresh
  segments and registers an ``atexit`` guard so an abandoned handle can
  never leak ``/dev/shm`` entries past interpreter exit.
* ``shared.handle()`` — a small picklable :class:`SharedCSRHandle` (segment
  names, dtypes, lengths) that travels to workers as pool-initializer args.
* ``SharedCSR.attach(handle)`` (worker) — maps the segments and wraps them
  in a :class:`~repro.graph.csr.CSRGraph` *without copying or re-validating*
  (the parent validated at build time).  Attached views never unlink; they
  only close their local mapping.
* ``shared.unlink()`` / ``with shared: ...`` (parent) — closes the mapping
  and removes the named segments.  Idempotent; also runs from the atexit
  guard.

POSIX keeps the backing memory alive until the last process closes its
mapping, so the parent may unlink as soon as the pool has shut down even if
a worker is still mid-exit.

Runnable example — export, attach (here: in-process; in production: from
a worker on any start method), tear down deterministically:

>>> import numpy as np
>>> from repro.graph import barbell_graph
>>> graph = barbell_graph(4)
>>> with graph.share() as shared:                  # parent: export once
...     with SharedCSR.attach(shared.handle()) as attached:
...         same = bool(np.array_equal(attached.graph.degrees(), graph.degrees()))
>>> same                                           # zero-copy, content-identical
True
>>> shared.unlinked                                # context exit removed segments
True
"""

from __future__ import annotations

import atexit
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .csr import CSRGraph

__all__ = ["SharedCSR", "SharedCSRHandle", "SEGMENT_PREFIX"]

#: every segment this module creates is named ``repro_csr_<token>_<role>``,
#: so tests (and operators) can audit ``/dev/shm`` for leaks by prefix.
SEGMENT_PREFIX = "repro_csr"

#: SharedCSR owners that have not been unlinked yet; the atexit guard
#: drains it so no segment survives the interpreter.
_LIVE: dict[int, "SharedCSR"] = {}


def _cleanup_live() -> None:  # pragma: no cover - exercised via atexit
    for shared in list(_LIVE.values()):
        shared.unlink()


atexit.register(_cleanup_live)


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable description of an exported graph: names + array metadata.

    Deliberately tiny — this is what crosses the IPC boundary instead of
    the graph itself.  Element counts are recorded per array because
    segment sizes are rounded up to at least one byte (and, on some
    platforms, to a page), so the attaching side rebuilds each view from
    its true length rather than the segment size.
    """

    offsets_name: str
    neighbors_name: str
    offsets_dtype: str
    neighbors_dtype: str
    num_offsets: int
    num_neighbors: int


def _export(name: str, array: np.ndarray) -> shared_memory.SharedMemory:
    """Copy ``array`` into a fresh named segment (size >= 1 byte)."""
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, array.nbytes)
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[:] = array
    return segment


def _attach(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without enrolling it in the resource tracker.

    Workers must not register attached segments: all processes share one
    tracker whose cache is a *set*, so N workers registering and
    unregistering the same name race each other (KeyError spray in the
    tracker) and a late tracker cleanup could unlink a segment the parent
    still owns (cpython#82300).  Python 3.13 exposes ``track=False``;
    earlier versions get the same effect by silencing ``register`` for
    the duration of the attach, so no tracker message is ever sent.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedCSR:
    """A CSR graph exported to (or attached from) shared-memory segments.

    Exactly one process — the creator — owns the segments and may
    ``unlink()`` them; attached instances only ``close()`` their local
    mapping.  The object is a context manager in both roles.
    """

    def __init__(
        self,
        graph: "CSRGraph",
        segments: tuple[shared_memory.SharedMemory, ...],
        handle: SharedCSRHandle,
        owner: bool,
    ) -> None:
        self.graph = graph
        self._segments = segments
        self._handle = handle
        self.owner = owner
        self._closed = False
        self._unlinked = False
        if owner:
            _LIVE[id(self)] = self

    # ------------------------------------------------------------------
    # Construction: parent exports, workers attach
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph: "CSRGraph") -> "SharedCSR":
        """Export ``graph``'s CSR arrays into fresh shared segments."""
        token = secrets.token_hex(8)
        handle = SharedCSRHandle(
            offsets_name=f"{SEGMENT_PREFIX}_{token}_off",
            neighbors_name=f"{SEGMENT_PREFIX}_{token}_nbr",
            offsets_dtype=str(graph.offsets.dtype),
            neighbors_dtype=str(graph.neighbors.dtype),
            num_offsets=len(graph.offsets),
            num_neighbors=len(graph.neighbors),
        )
        offsets_seg = _export(handle.offsets_name, graph.offsets)
        try:
            neighbors_seg = _export(handle.neighbors_name, graph.neighbors)
        except BaseException:
            offsets_seg.close()
            offsets_seg.unlink()
            raise
        shared = cls(
            cls._wrap(handle, offsets_seg, neighbors_seg),
            (offsets_seg, neighbors_seg),
            handle,
            owner=True,
        )
        return shared

    @classmethod
    def attach(cls, handle: SharedCSRHandle) -> "SharedCSR":
        """Map an exported graph zero-copy (worker side, any start method)."""
        offsets_seg = _attach(handle.offsets_name)
        try:
            neighbors_seg = _attach(handle.neighbors_name)
        except BaseException:
            offsets_seg.close()
            raise
        return cls(
            cls._wrap(handle, offsets_seg, neighbors_seg),
            (offsets_seg, neighbors_seg),
            handle,
            owner=False,
        )

    @staticmethod
    def _wrap(
        handle: SharedCSRHandle,
        offsets_seg: shared_memory.SharedMemory,
        neighbors_seg: shared_memory.SharedMemory,
    ) -> "CSRGraph":
        """A CSRGraph over the segment buffers — no copy, no re-validation."""
        from .csr import CSRGraph

        offsets = np.ndarray(
            (handle.num_offsets,), dtype=np.dtype(handle.offsets_dtype),
            buffer=offsets_seg.buf,
        )
        neighbors = np.ndarray(
            (handle.num_neighbors,), dtype=np.dtype(handle.neighbors_dtype),
            buffer=neighbors_seg.buf,
        )
        # The CSR arrays are immutable by library-wide contract; enforce it
        # here because these views alias memory other processes read.
        offsets.flags.writeable = False
        neighbors.flags.writeable = False
        graph = CSRGraph.__new__(CSRGraph)
        graph.offsets = offsets
        graph.neighbors = neighbors
        return graph

    def handle(self) -> SharedCSRHandle:
        return self._handle

    @property
    def closed(self) -> bool:
        """Whether this process's mapping has been dropped."""
        return self._closed

    @property
    def unlinked(self) -> bool:
        """Whether the named segments have been removed (owner side)."""
        return self._unlinked

    def segment_names(self) -> tuple[str, str]:
        """The two ``/dev/shm`` entry names backing this export — lets a
        long-lived owner (e.g. a pool session reusing one export across
        consecutive batches) audit that no further segments appear."""
        return (self._handle.offsets_name, self._handle.neighbors_name)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (keeps the named segments alive)."""
        if self._closed:
            return
        self._closed = True
        # The graph's arrays alias the segment buffers; numpy holds exported
        # memoryviews that SharedMemory.close() would trip over, so detach
        # them first.
        self.graph.offsets = np.empty(0, dtype=np.dtype(self._handle.offsets_dtype))
        self.graph.neighbors = np.empty(0, dtype=np.dtype(self._handle.neighbors_dtype))
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a live external view
                pass

    def unlink(self) -> None:
        """Close and remove the named segments (owner only; idempotent)."""
        self.close()
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        _LIVE.pop(id(self), None)
        for segment in self._segments:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        role = "owner" if self.owner else "attached"
        return (
            f"SharedCSR({role}, n={self._handle.num_offsets - 1}, "
            f"segments={self._handle.offsets_name!r}/{self._handle.neighbors_name!r})"
        )
