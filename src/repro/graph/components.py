"""Connected components and induced subgraphs.

The paper's experiments start every diffusion "from a single arbitrary
vertex in the largest component" (Section 4); this module supplies the
largest-component machinery.  Components are computed with the classic
Shiloach-Vishkin style label propagation: hook every vertex to the minimum
label among its neighbors, then pointer-jump until labels stabilise —
O(m log n) work, O(log^2 n) depth, entirely vectorised.
"""

from __future__ import annotations

import numpy as np

from ..runtime import log2ceil, record
from .csr import CSRGraph

__all__ = [
    "connected_components",
    "component_sizes",
    "largest_component_vertices",
    "induced_subgraph",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label array where ``labels[v]`` is the minimum vertex id in v's component."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    if graph.total_volume == 0:
        return labels
    sources, targets = graph.gather_edges(np.arange(n, dtype=np.int64))
    while True:
        # Hook: every vertex adopts the smallest label among its neighbors.
        candidate = labels.copy()
        np.minimum.at(candidate, targets, labels[sources])
        record(work=len(sources), depth=log2ceil(len(sources)), category="misc")
        # Pointer jumping: compress label chains.
        while True:
            jumped = candidate[candidate]
            if np.array_equal(jumped, candidate):
                break
            candidate = jumped
        if np.array_equal(candidate, labels):
            return labels
        labels = candidate


def component_sizes(labels: np.ndarray) -> dict[int, int]:
    """``{representative_label: component_size}``."""
    unique, counts = np.unique(labels, return_counts=True)
    return {int(label): int(count) for label, count in zip(unique, counts)}


def largest_component_vertices(graph: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest connected component, ascending."""
    labels = connected_components(graph)
    unique, counts = np.unique(labels, return_counts=True)
    winner = unique[np.argmax(counts)]
    return np.flatnonzero(labels == winner).astype(np.int64)


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``; returns ``(subgraph, old_ids)``.

    ``old_ids[new_id]`` recovers the original vertex of each subgraph
    vertex.  Utility for experiment setup, not used inside the local
    algorithms (which never touch the whole graph).
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    remap = np.full(graph.num_vertices, -1, dtype=np.int64)
    remap[vertices] = np.arange(len(vertices), dtype=np.int64)
    sources, targets = graph.gather_edges(vertices)
    keep = remap[targets] >= 0
    from .builder import from_edge_arrays

    subgraph = from_edge_arrays(
        remap[sources[keep]], remap[targets[keep]], num_vertices=len(vertices)
    )
    return subgraph, vertices
