"""Building :class:`~repro.graph.csr.CSRGraph` instances from edge data.

The paper's experimental setup removes all self and duplicate edges and
symmetrises directed inputs (Section 4, "Input Graphs"); this module is
where those normalisations live.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edge_arrays",
    "from_edge_list",
    "from_adjacency",
    "from_networkx",
    "edge_arrays_of",
]


def from_edge_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Build a simple undirected CSR graph from parallel endpoint arrays.

    Symmetrises (each input pair yields both directions), removes
    self-loops, deduplicates, and sorts every adjacency list.  Isolated
    vertices are retained when ``num_vertices`` exceeds the largest id.
    """
    sources = np.asarray(sources, dtype=np.int64).ravel()
    targets = np.asarray(targets, dtype=np.int64).ravel()
    if sources.shape != targets.shape:
        raise ValueError("sources and targets must have equal length")
    if len(sources) > 0 and min(sources.min(), targets.min()) < 0:
        raise ValueError("vertex ids must be non-negative")
    observed = 0 if len(sources) == 0 else int(max(sources.max(), targets.max())) + 1
    n = observed if num_vertices is None else int(num_vertices)
    if n < observed:
        raise ValueError(f"num_vertices={n} is less than max id + 1 = {observed}")

    keep = sources != targets  # drop self-loops
    u = sources[keep]
    v = targets[keep]
    all_src = np.concatenate([u, v])
    all_dst = np.concatenate([v, u])
    if len(all_src) == 0:
        return CSRGraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))

    # Deduplicate via a single 128-bit-safe key sort: n < 2**31 keeps
    # src * n + dst within int64.
    if n >= (1 << 31):
        raise ValueError("graphs with >= 2^31 vertices are not supported")
    encoded = all_src * np.int64(n) + all_dst
    unique = np.unique(encoded)
    dedup_src = unique // n
    dedup_dst = unique % n

    counts = np.bincount(dedup_src, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    # unique keys are already sorted by (src, dst), so adjacency lists are
    # sorted and contiguous.
    return CSRGraph(offsets, dedup_dst.astype(np.int64))


def from_edge_list(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
) -> CSRGraph:
    """Build a graph from an iterable of ``(u, v)`` pairs."""
    pairs = list(edges)
    if not pairs:
        return from_edge_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), num_vertices
        )
    array = np.asarray(pairs, dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError("edges must be (u, v) pairs")
    return from_edge_arrays(array[:, 0], array[:, 1], num_vertices)


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]],
    num_vertices: int | None = None,
) -> CSRGraph:
    """Build a graph from ``{vertex: [neighbors...]}``."""
    sources: list[int] = []
    targets: list[int] = []
    for vertex, neighbors in adjacency.items():
        for neighbor in neighbors:
            sources.append(int(vertex))
            targets.append(int(neighbor))
    return from_edge_arrays(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        num_vertices,
    )


def from_networkx(nx_graph, num_vertices: int | None = None) -> CSRGraph:
    """Build a graph from a ``networkx`` graph with integer node labels.

    Optional convenience for interoperability; ``networkx`` is imported by
    the caller, not by this library.
    """
    edges = list(nx_graph.edges())
    n = num_vertices if num_vertices is not None else nx_graph.number_of_nodes()
    return from_edge_list(edges, num_vertices=n)


def edge_arrays_of(graph: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Each undirected edge once, as ``(sources, targets)`` with u < v."""
    sources, targets = graph.gather_edges(np.arange(graph.num_vertices, dtype=np.int64))
    forward = sources < targets
    return sources[forward], targets[forward]
