"""Sharded graph plane: partitioned CSR for graphs bigger than one worker.

The paper's whole premise is that a local diffusion touches only a seed's
neighbourhood — cluster time is independent of graph size (Shun et al.,
VLDB 2016), and the distributed heat-kernel line of work (Chung & Simpson)
shows local clustering survives partitioned graph storage.  Memory-scalable
serving should therefore not require every process to hold the full CSR:
a worker answering queries about one region of the graph only needs that
region resident.

:class:`ShardedCSR` mechanises that.  It splits a
:class:`~repro.graph.csr.CSRGraph` into ``K`` contiguous vertex-range
shards, each exported as an independent pair of shared-memory segments
(reusing :class:`~repro.graph.shared.SharedCSR`, so the per-shard
lifecycle, leak auditing and zero-copy attach are exactly the PR-3 graph
plane's).  A compact :class:`ShardMap` — just the ``K+1`` boundary vertex
ids — routes any vertex to its owning shard in O(log K).

:class:`ShardedGraphView` is the serving side: a CSR-compatible graph
object that starts with *no* shard resident and attaches each shard
**lazily**, the first time a read touches one of its vertices.  Because a
shard stores its neighbour lists with *global* vertex ids, every read the
view answers is bit-identical to the unsharded graph — lazy attach is an
exactness-preserving memory optimisation, never an approximation:

* ``max_resident`` caps how many shards the view keeps mapped at once;
  excess shards are detached least-recently-used first (and transparently
  re-attached if touched again), so peak resident graph memory is
  ``max_resident`` shards instead of the whole CSR.
* ``spill_shards`` bounds how many *distinct* shards one diffusion may
  touch before the view raises :class:`ShardSpill` — the signal the
  engine's :class:`~repro.engine.router.ShardRouter` uses to escalate a
  non-local job to whole-graph execution instead of faulting the entire
  graph in shard by shard.
* ``halo_bytes`` budgets a small LRU **halo cache** of hot boundary-vertex
  adjacency rows (copied out of their shard), so the cross-shard reads a
  diffusion makes near a shard boundary are served without attaching the
  neighbour shard at all — recovering most of the lazy-attach latency
  while keeping the resident-memory win.

Runnable example — partition, attach lazily, read exactly:

>>> import numpy as np
>>> from repro.graph import barbell_graph
>>> from repro.graph.sharded import ShardedCSR
>>> graph = barbell_graph(8)                    # two 8-cliques, one bridge
>>> with ShardedCSR.create(graph, shards=2) as sharded:
...     with sharded.view(max_resident=1) as view:
...         left = view.degrees(np.arange(8))           # attaches shard 0
...         right = view.degrees(np.arange(8, 16))      # attaches shard 1
...         resident_at_once = view.resident_shards
>>> bool(np.array_equal(left, graph.degrees(np.arange(8))))
True
>>> resident_at_once                             # LRU held the cap
1

Lifecycle mirrors :mod:`repro.graph.shared`: the creating process owns the
segments and must ``unlink()`` (context manager / atexit guard both work);
views only ever ``close()`` their local mappings.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..prims.scan import exclusive_prefix_sum
from ..runtime import log2ceil, record
from .csr import CSRGraph
from .shared import SharedCSR, SharedCSRHandle

__all__ = [
    "DEFAULT_HALO_BYTES",
    "ShardMap",
    "ShardSpill",
    "ShardedCSR",
    "ShardedCSRHandle",
    "ShardedGraphView",
    "plan_boundaries",
]

#: default byte budget of a view's halo cache.  Sized to hold thousands of
#: typical adjacency rows — enough to absorb the boundary working set of a
#: local diffusion — while staying negligible next to even one shard.
DEFAULT_HALO_BYTES = 1 << 20

#: at most this many rows are copied into the halo per *vectorised* read of
#: a non-resident shard; scalar reads (the per-push pattern that thrashes
#: attaches) always populate.
_HALO_GROUP_CAP = 256


class ShardSpill(RuntimeError):
    """A computation touched more distinct shards than its spill threshold.

    Raised by :class:`ShardedGraphView` when ``spill_shards`` is set and a
    read would attach one shard too many.  Catchers (the engine's
    :class:`~repro.engine.router.ShardRouter`) re-run the job against the
    whole graph — results are identical either way; only the memory
    footprint differs.
    """


def plan_boundaries(offsets: np.ndarray, num_shards: int) -> tuple[int, ...]:
    """Volume-balanced contiguous vertex ranges: ``K+1`` boundary ids.

    Shards are cut so each holds roughly ``2m / K`` neighbour entries —
    memory per shard, not vertices per shard, is what a resident-set cap
    bounds.  Boundaries are non-decreasing and cover ``[0, n)`` exactly;
    a pathological degree distribution may yield empty shards (their
    range is empty, their segment one byte), which routing handles.
    """
    n = len(offsets) - 1
    k = max(1, min(int(num_shards), max(n, 1)))
    targets = np.linspace(0, int(offsets[-1]), k + 1)[1:-1]
    cuts = np.searchsorted(np.asarray(offsets), targets, side="left")
    boundaries = np.concatenate([[0], cuts, [n]]).astype(np.int64)
    boundaries = np.maximum.accumulate(boundaries)
    return tuple(int(b) for b in boundaries)


@dataclass(frozen=True)
class ShardMap:
    """The compact routing structure: ``K+1`` boundary vertex ids.

    Shard ``k`` owns the contiguous vertex range
    ``[boundaries[k], boundaries[k+1])``.  This is the *entire* metadata a
    router or view needs to place a vertex — a few dozen bytes for any
    realistic shard count, trivially picklable.
    """

    boundaries: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.boundaries) - 1

    @property
    def num_vertices(self) -> int:
        return self.boundaries[-1]

    def span(self, shard: int) -> tuple[int, int]:
        """``[lo, hi)`` vertex range owned by ``shard``."""
        return self.boundaries[shard], self.boundaries[shard + 1]

    def shard_of(self, vertices: np.ndarray | int) -> np.ndarray | int:
        """Owning shard id(s) for vertex id(s) — O(log K) searchsorted."""
        bounds = np.asarray(self.boundaries[1:], dtype=np.int64)
        result = np.searchsorted(bounds, np.asarray(vertices, dtype=np.int64), side="right")
        if np.ndim(vertices) == 0:
            return int(result)
        return result

    def shards_of(self, vertices: Iterable[int] | np.ndarray) -> tuple[int, ...]:
        """Sorted distinct owning shards of a vertex set (a job's home)."""
        array = np.atleast_1d(np.asarray(list(vertices), dtype=np.int64))
        if len(array) == 0:
            return ()
        return tuple(int(s) for s in np.unique(self.shard_of(array)))


@dataclass(frozen=True)
class ShardedCSRHandle:
    """Picklable description of a sharded export: shard map + segment names.

    Like :class:`~repro.graph.shared.SharedCSRHandle`, this is what crosses
    an IPC boundary instead of the graph: the boundaries tuple, one tiny
    segment handle per shard, the global sizes, and the base graph's
    content fingerprint (so views keep cache identity with the unsharded
    graph — a sharded run hits the same cache entries as a whole-graph
    run).
    """

    boundaries: tuple[int, ...]
    shards: tuple[SharedCSRHandle, ...]
    num_vertices: int
    num_neighbors: int
    fingerprint: str

    def map(self) -> ShardMap:
        return ShardMap(self.boundaries)


def _shard_piece(graph: CSRGraph, lo: int, hi: int) -> CSRGraph:
    """Shard ``[lo, hi)`` as a CSR piece: local offsets, GLOBAL neighbor ids.

    Built via ``__new__`` because a shard is deliberately not a valid
    standalone graph — its neighbour ids point anywhere in the full vertex
    space, which is exactly what keeps sharded reads bit-identical.
    """
    piece = CSRGraph.__new__(CSRGraph)
    piece.offsets = (graph.offsets[lo : hi + 1] - graph.offsets[lo]).astype(np.int64)
    piece.neighbors = graph.neighbors[graph.offsets[lo] : graph.offsets[hi]]
    return piece


class ShardedCSR:
    """A CSR graph partitioned into independently exported vertex-range shards.

    The creating process owns every shard's shared-memory segments; pass
    :meth:`handle` across process boundaries and build
    :class:`ShardedGraphView`\\ s there (or locally via :meth:`view`).
    ``unlink()`` removes all segments; the per-shard atexit guards from
    :mod:`repro.graph.shared` cover abandoned owners.
    """

    def __init__(self, shards: list[SharedCSR], handle: ShardedCSRHandle) -> None:
        self._shards = shards
        self._handle = handle
        self.map = handle.map()

    @classmethod
    def create(cls, graph: CSRGraph, shards: int = 4) -> "ShardedCSR":
        """Partition ``graph`` into ``shards`` volume-balanced exports."""
        boundaries = plan_boundaries(graph.offsets, shards)
        exported: list[SharedCSR] = []
        try:
            for k in range(len(boundaries) - 1):
                piece = _shard_piece(graph, boundaries[k], boundaries[k + 1])
                exported.append(SharedCSR.create(piece))
        except BaseException:
            for owner in exported:
                owner.unlink()
            raise
        handle = ShardedCSRHandle(
            boundaries=boundaries,
            shards=tuple(owner.handle() for owner in exported),
            num_vertices=graph.num_vertices,
            num_neighbors=len(graph.neighbors),
            fingerprint=graph.fingerprint(),
        )
        return cls(exported, handle)

    @property
    def num_shards(self) -> int:
        return self.map.num_shards

    def handle(self) -> ShardedCSRHandle:
        return self._handle

    def segment_names(self) -> tuple[str, ...]:
        """Every ``/dev/shm`` entry backing this export (for leak audits)."""
        names: list[str] = []
        for owner in self._shards:
            names.extend(owner.segment_names())
        return tuple(names)

    def shard_nbytes(self) -> list[int]:
        """Approximate per-shard memory (offsets + neighbors bytes)."""
        sizes = []
        for sub in self._handle.shards:
            sizes.append(8 * (sub.num_offsets + sub.num_neighbors))
        return sizes

    def view(
        self,
        max_resident: int | None = None,
        spill_shards: int | None = None,
        halo_bytes: int | None = None,
    ) -> "ShardedGraphView":
        """A lazy view over this export (see :class:`ShardedGraphView`)."""
        return ShardedGraphView(
            self._handle,
            max_resident=max_resident,
            spill_shards=spill_shards,
            halo_bytes=halo_bytes,
        )

    def unlink(self) -> None:
        """Remove every shard's segments (idempotent, owner only)."""
        for owner in self._shards:
            owner.unlink()

    def close(self) -> None:
        for owner in self._shards:
            owner.close()

    def __enter__(self) -> "ShardedCSR":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedCSR(n={self._handle.num_vertices}, "
            f"shards={self.num_shards}, boundaries={self._handle.boundaries})"
        )


class ShardedGraphView:
    """A CSR-compatible graph over a sharded export, attaching shards lazily.

    Implements the full read API the diffusions, sweep cut and quality
    metrics consume — ``degrees`` / ``neighbors_of`` / ``gather_edges`` /
    ``neighbor_at`` / ``volume`` / ``has_edge`` — by routing each vertex to
    its owning shard through the :class:`ShardMap` and attaching segments
    only when first touched.  All answers are bit-identical to the
    unsharded :class:`~repro.graph.csr.CSRGraph` (neighbour ids are global;
    work-depth records mirror the base implementation), so an engine can
    swap a view in for the graph without changing any result.

    ``max_resident`` bounds simultaneously mapped shards (LRU detach;
    exact, since a detached shard transparently re-attaches).
    ``spill_shards`` bounds distinct shards touched since the last
    :meth:`reset_spill` — crossing it raises :class:`ShardSpill` for the
    router to escalate.

    ``halo_bytes`` budgets the **halo cache**: an LRU of adjacency rows
    *copied* out of non-resident shards the first time a read touches
    them.  Reads are served resident-shard-first; a vertex whose shard is
    not resident but whose row is cached is answered from the halo —
    without attaching the shard, and without charging the spill budget
    (the budget bounds shards a diffusion actually needs *mapped*; a few
    cached boundary rows are the footprint the cache exists to absorb).
    Alongside the row LRU, an enabled halo keeps one copied *local
    offsets* array per shard ever attached (1-2% of a shard's bytes,
    outside the row budget), so degree reads vectorise after the shard is
    detached instead of re-attaching or walking cached rows one by one.
    Rows hold global neighbour ids and offsets copies are verbatim, so
    halo answers are bit-identical to every other path.  ``None`` selects
    :data:`DEFAULT_HALO_BYTES`; ``0`` disables the cache (and the offsets
    sidecar).  Not thread-safe; one view per executing job stream.
    """

    def __init__(
        self,
        handle: ShardedCSRHandle,
        max_resident: int | None = None,
        spill_shards: int | None = None,
        halo_bytes: int | None = None,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        if spill_shards is not None and spill_shards < 1:
            raise ValueError("spill_shards must be >= 1")
        if halo_bytes is not None and halo_bytes < 0:
            raise ValueError("halo_bytes must be >= 0")
        self._handle = handle
        self.map = handle.map()
        self.max_resident = max_resident
        self.spill_shards = spill_shards
        self.halo_bytes = DEFAULT_HALO_BYTES if halo_bytes is None else int(halo_bytes)
        self._resident: "OrderedDict[int, SharedCSR]" = OrderedDict()
        self._touched: set[int] = set()
        self._halo: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._halo_nbytes = 0
        self._shard_offsets: dict[int, np.ndarray] = {}
        self.attaches = 0
        self.detaches = 0
        self.halo_hits = 0
        self.halo_misses = 0
        self.halo_evictions = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Halo cache: copied rows of hot vertices in non-resident shards
    # ------------------------------------------------------------------
    def _halo_lookup(self, shard: int, vertex: int) -> np.ndarray | None:
        """The vertex's cached row, iff its shard is not resident."""
        if self.halo_bytes == 0 or shard in self._resident:
            return None
        row = self._halo.get(vertex)
        if row is None:
            return None
        self._halo.move_to_end(vertex)
        self.halo_hits += 1
        return row

    def _halo_rows(self, shard: int, vertices: np.ndarray) -> list[np.ndarray] | None:
        """All-or-nothing halo serving for one vectorised shard group."""
        if self.halo_bytes == 0 or shard in self._resident:
            return None
        rows = []
        halo_get = self._halo.get
        refresh = self._halo.move_to_end
        for vertex in vertices.tolist():
            row = halo_get(vertex)
            if row is None:
                # Recency moves already made stand: those rows WERE read.
                return None
            refresh(vertex)
            rows.append(row)
        self.halo_hits += len(rows)
        return rows

    def _halo_store(self, vertex: int, row: np.ndarray) -> None:
        """Copy one adjacency row into the halo, evicting LRU over budget.

        The copy is mandatory: the source is a view into a shard's
        shared-memory segment, which an LRU detach would invalidate.
        """
        if self.halo_bytes == 0 or vertex in self._halo:
            return
        row = np.array(row, dtype=np.int64)
        self._halo[vertex] = row
        self._halo_nbytes += row.nbytes
        while self._halo_nbytes > self.halo_bytes and self._halo:
            _, evicted = self._halo.popitem(last=False)
            self._halo_nbytes -= evicted.nbytes
            self.halo_evictions += 1

    # ------------------------------------------------------------------
    # Residency: lazy attach, LRU detach, spill accounting
    # ------------------------------------------------------------------
    def _arrays(self, shard: int) -> tuple[np.ndarray, np.ndarray]:
        """(local offsets, neighbors) of ``shard``, attaching if needed."""
        if self._closed:
            raise RuntimeError("view is closed")
        # Spill accounting is independent of residency: the budget counts
        # the distinct shards the *current scope* (the router: one job)
        # touches, whether or not an earlier scope left them mapped.
        if (
            self.spill_shards is not None
            and shard not in self._touched
            and len(self._touched) >= self.spill_shards
        ):
            raise ShardSpill(
                f"computation needs shard {shard} beyond the "
                f"{len(self._touched)} it already touched — spill threshold "
                f"is {self.spill_shards} shard(s)"
            )
        self._touched.add(shard)
        attached = self._resident.get(shard)
        if attached is not None:
            self._resident.move_to_end(shard)
            return attached.graph.offsets, attached.graph.neighbors
        while self.max_resident is not None and len(self._resident) >= self.max_resident:
            _, oldest = self._resident.popitem(last=False)
            oldest.close()
            self.detaches += 1
        attached = SharedCSR.attach(self._handle.shards[shard])
        self._resident[shard] = attached
        self.attaches += 1
        if self.halo_bytes != 0 and shard not in self._shard_offsets:
            # Sidecar to the halo: one *copied* local offsets array per
            # shard ever attached (1-2% of the shard's bytes).  Degree
            # reads vectorise against it after the shard is detached, so
            # they never force a re-attach nor fall into per-row Python.
            self._shard_offsets[shard] = np.array(attached.graph.offsets)
        return attached.graph.offsets, attached.graph.neighbors

    def _offsets_for(self, shard: int) -> np.ndarray:
        """The shard's local offsets without forcing residency: live arrays
        while the shard is mapped, the cached copy after it was detached,
        and a real attach only for a shard never seen before."""
        attached = self._resident.get(shard)
        if attached is not None:
            self._resident.move_to_end(shard)
            return attached.graph.offsets
        cached = self._shard_offsets.get(shard)
        if cached is not None:
            return cached
        return self._arrays(shard)[0]

    @property
    def resident_shards(self) -> int:
        """Shards currently mapped into this process."""
        return len(self._resident)

    @property
    def touched_shards(self) -> tuple[int, ...]:
        """Distinct shards touched since construction / :meth:`reset_spill`."""
        return tuple(sorted(self._touched))

    def reset_spill(self) -> None:
        """Start a fresh spill-accounting scope (the router calls this per
        job, so the threshold bounds one diffusion's own footprint —
        shards left resident by earlier jobs don't count against it)."""
        self._touched = set()

    def close(self) -> None:
        """Detach every resident shard and drop the halo (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for attached in self._resident.values():
            attached.close()
        self._resident.clear()
        self._halo.clear()
        self._halo_nbytes = 0
        self._shard_offsets.clear()

    def __enter__(self) -> "ShardedGraphView":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Sizes — global, straight off the handle
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._handle.num_vertices

    @property
    def num_edges(self) -> int:
        return self._handle.num_neighbors // 2

    @property
    def total_volume(self) -> int:
        return self._handle.num_neighbors

    def fingerprint(self) -> str:
        """The *base graph's* content fingerprint: a sharded run shares
        cache entries (and `resolve_engine` identity) with unsharded runs."""
        return self._handle.fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedGraphView(n={self.num_vertices}, shards={self.map.num_shards}, "
            f"resident={sorted(self._resident)}, max_resident={self.max_resident})"
        )

    # ------------------------------------------------------------------
    # Degrees and adjacency — bit-identical to CSRGraph
    # ------------------------------------------------------------------
    def _per_shard(self, vertices: np.ndarray):
        """Yield ``(shard, mask, local_ids)`` per owning shard, ascending.

        The all-one-shard case (most frontier groups: a local diffusion
        mostly reads its home shard) short-circuits with a full-array
        slice instead of paying ``np.unique`` + boolean masks per call.
        """
        if len(vertices) == 0:
            return
        shard_ids = np.asarray(self.map.shard_of(vertices))
        first = int(shard_ids[0])
        if shard_ids[0] == shard_ids[-1] and (shard_ids == first).all():
            lo, _ = self.map.span(first)
            yield first, slice(None), vertices - lo
            return
        for k in np.unique(shard_ids):
            mask = shard_ids == k
            lo, _ = self.map.span(int(k))
            yield int(k), mask, vertices[mask] - lo

    def degree(self, vertex: int) -> int:
        vertex = int(vertex)
        shard = int(self.map.shard_of(vertex))
        offsets = self._offsets_for(shard)
        lo, _ = self.map.span(shard)
        local = vertex - lo
        return int(offsets[local + 1] - offsets[local])

    def degrees(self, vertices: np.ndarray | None = None) -> np.ndarray:
        if vertices is None:
            parts = [
                np.diff(self._offsets_for(k)) for k in range(self.map.num_shards)
            ]
            return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        vertices = np.asarray(vertices, dtype=np.int64)
        out = np.empty(len(vertices), dtype=np.int64)
        for shard, mask, local in self._per_shard(vertices):
            offsets = self._offsets_for(shard)
            out[mask] = offsets[local + 1] - offsets[local]
        return out

    def neighbors_of(self, vertex: int) -> np.ndarray:
        vertex = int(vertex)
        shard = int(self.map.shard_of(vertex))
        row = self._halo_lookup(shard, vertex)
        if row is not None:
            return row
        populate = self.halo_bytes != 0 and shard not in self._resident
        if populate:
            self.halo_misses += 1
        offsets, neighbors = self._arrays(shard)
        lo, _ = self.map.span(shard)
        local = vertex - lo
        row = neighbors[offsets[local] : offsets[local + 1]]
        if populate:
            self._halo_store(vertex, row)
        return row

    def volume(self, vertices: np.ndarray) -> int:
        return int(self.degrees(np.asarray(vertices, dtype=np.int64)).sum())

    def has_edge(self, u: int, v: int) -> bool:
        adjacency = self.neighbors_of(u)
        position = np.searchsorted(adjacency, v)
        return bool(position < len(adjacency) and adjacency[position] == v)

    def neighbor_at(self, vertices: np.ndarray, pick: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        pick = np.asarray(pick, dtype=np.int64)
        out = np.empty(len(vertices), dtype=np.int64)
        for shard, mask, local in self._per_shard(vertices):
            rows = self._halo_rows(shard, vertices[mask])
            if rows is not None:
                out[mask] = [
                    row[p] for row, p in zip(rows, pick[mask].tolist())
                ]
                continue
            offsets, neighbors = self._arrays(shard)
            out[mask] = neighbors[offsets[local] + pick[mask]]
        return out

    # ------------------------------------------------------------------
    # Bulk edge gather — the engine under edgeMap, shard-routed
    # ------------------------------------------------------------------
    def gather_edges(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Identical output (and recorded work/depth) to
        :meth:`CSRGraph.gather_edges`: per-vertex slots are computed over
        the *input order*, then each owning shard fills its vertices' slots
        in place — the cross-shard case is a scatter, not a reorder."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        degs = self.degrees(vertices)
        starts, total = exclusive_prefix_sum(degs)
        total = int(total)
        record(
            work=len(vertices) + total,
            depth=log2ceil(max(total, 1)),
            category="edge_map",
        )
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        sources = np.repeat(vertices, degs)
        targets = np.empty(total, dtype=np.int64)
        for shard, mask, local in self._per_shard(vertices):
            rows = self._halo_rows(shard, vertices[mask])
            if rows is not None:
                for start, count_v, row in zip(
                    starts[mask].tolist(), degs[mask].tolist(), rows
                ):
                    targets[start : start + count_v] = row
                continue
            populate = self.halo_bytes != 0 and shard not in self._resident
            if populate:
                self.halo_misses += 1
            offsets, neighbors = self._arrays(shard)
            if populate:
                for v, loc in zip(
                    vertices[mask][:_HALO_GROUP_CAP].tolist(),
                    local[:_HALO_GROUP_CAP].tolist(),
                ):
                    self._halo_store(v, neighbors[offsets[loc] : offsets[loc + 1]])
            degs_k = degs[mask]
            count = int(degs_k.sum())
            if count == 0:
                continue
            slot = np.arange(count, dtype=np.int64)
            # Plain cumsum, not the instrumented scan primitive: this is
            # shard-plane bookkeeping, and the recorded work/depth profile
            # must stay bit-identical to the unsharded gather.
            starts_k = np.cumsum(degs_k) - degs_k
            within = slot - np.repeat(starts_k, degs_k)
            per_vertex_base = np.repeat(offsets[local], degs_k)
            positions = np.repeat(starts[mask], degs_k) + within
            targets[positions] = neighbors[per_vertex_base + within]
        return sources, targets
