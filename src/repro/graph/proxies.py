"""Scaled-down proxies for the paper's Table 2 input graphs.

The paper evaluates on ten graphs (Table 2), eight of which are multi-
hundred-million-edge real-world datasets (SNAP crawls, Twitter, a Yahoo Web
graph) that are neither redistributable nor tractable in this environment.
Per the substitution policy in DESIGN.md, each gets a synthetic proxy
matched on the structural property that drives its behaviour in the
evaluation:

* social networks (soc-LJ, com-LJ, com-Orkut)  -> power-law community model
  (heavy-tailed degrees + small dense communities = good local clusters);
* citation network (cit-Patents)               -> copying/recency model;
* microblog / friend crawls (Twitter, com-friendster) -> R-MAT;
* Web graph (Yahoo)                            -> sparser, more skewed R-MAT;
* mesh (nlpkkt240)                             -> 3-D grid (the paper itself
  observes these have *no good local clusters* and terminate instantly);
* randLocal, 3D-grid                           -> the paper's own generators,
  implemented exactly.

``scale`` multiplies vertex counts (default from ``REPRO_SCALE``, 1.0);
proxies are cached per ``(name, scale, seed)`` because benchmarks reuse
them heavily.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from .csr import CSRGraph
from . import generators as gen

__all__ = ["ProxySpec", "PROXIES", "proxy_names", "load_proxy", "default_scale"]


@dataclass(frozen=True)
class ProxySpec:
    """One Table-2 graph: paper-reported sizes plus our proxy builder."""

    name: str
    paper_vertices: int
    paper_edges: int
    kind: str
    build: Callable[[float, int], CSRGraph]

    def describe(self) -> str:
        return (
            f"{self.name}: paper n={self.paper_vertices:,} m={self.paper_edges:,} "
            f"({self.kind} proxy)"
        )


def _scaled(base: int, scale: float, minimum: int = 64) -> int:
    return max(minimum, int(round(base * scale)))


def _social(
    n_base: int,
    intra: float,
    inter: float,
    seed_offset: int,
    min_size: int = 8,
    max_size: int = 2048,
    size_exponent: float = 1.8,
    density_decay: float = 0.25,
):
    def build(scale: float, seed: int) -> CSRGraph:
        return gen.power_law_communities(
            _scaled(n_base, scale),
            intra_degree=intra,
            inter_degree=inter,
            min_size=min_size,
            max_size=max_size,
            size_exponent=size_exponent,
            density_decay=density_decay,
            seed=seed + seed_offset,
        )

    return build


def _rmat(scale_base: int, edge_factor: int, a: float, seed_offset: int):
    def build(scale: float, seed: int) -> CSRGraph:
        # Adjust the R-MAT scale so vertex count tracks the multiplier.
        shift = int(round(math.log2(max(scale, 2**-8)))) if scale != 1.0 else 0
        b = c = (1.0 - a) * 0.42
        return gen.rmat(
            max(8, scale_base + shift),
            edge_factor=edge_factor,
            a=a,
            b=b,
            c=c,
            seed=seed + seed_offset,
        )

    return build


def _citation(n_base: int, refs: int, seed_offset: int):
    def build(scale: float, seed: int) -> CSRGraph:
        return gen.citation_graph(
            _scaled(n_base, scale), references_per_vertex=refs, seed=seed + seed_offset
        )

    return build


def _grid(side_base: int):
    def build(scale: float, seed: int) -> CSRGraph:
        side = max(4, int(round(side_base * scale ** (1.0 / 3.0))))
        return gen.grid_3d(side)

    return build


def _rand_local(n_base: int, seed_offset: int):
    def build(scale: float, seed: int) -> CSRGraph:
        return gen.rand_local(_scaled(n_base, scale), seed=seed + seed_offset)

    return build


#: Table 2 of the paper, in row order, with our proxy builders.
PROXIES: dict[str, ProxySpec] = {
    "soc-LJ": ProxySpec(
        "soc-LJ", 4_847_571, 42_851_237, "social community", _social(40_000, 10.0, 5.0, 1)
    ),
    "cit-Patents": ProxySpec(
        "cit-Patents", 6_009_555, 16_518_947, "citation copying", _citation(50_000, 3, 2)
    ),
    "com-LJ": ProxySpec(
        "com-LJ", 4_036_538, 34_681_189, "social community", _social(36_000, 10.0, 4.0, 3)
    ),
    "com-Orkut": ProxySpec(
        "com-Orkut", 3_072_627, 117_185_083, "dense social community", _social(24_000, 26.0, 10.0, 4)
    ),
    "nlpkkt240": ProxySpec(
        "nlpkkt240", 27_993_601, 373_239_376, "3-D mesh", _grid(30)
    ),
    # The paper's NCP experiments (Figure 12) hinge on these three having
    # real community structure: Twitter/friendster dip at cluster sizes
    # 10-100 then rise; the Yahoo Web graph additionally has good clusters
    # at much larger sizes ("tens of thousands of vertices").  Pure R-MAT
    # lacks communities entirely, so the proxies combine power-law
    # community sizes with heavy-tailed global degrees; Yahoo's proxy uses
    # a flatter size exponent and far larger maximum community.
    "Twitter": ProxySpec(
        "Twitter",
        41_652_231,
        1_202_513_046,
        "skewed social community",
        _social(65_000, 18.0, 2.0, 5, min_size=8, max_size=1024),
    ),
    "com-friendster": ProxySpec(
        "com-friendster",
        124_836_180,
        1_806_607_135,
        "social community",
        _social(65_000, 11.0, 1.5, 6, min_size=8, max_size=2048),
    ),
    # Yahoo's decay is much weaker: the paper's Web-graph NCP keeps good
    # clusters at sizes of tens of thousands of vertices.
    "Yahoo": ProxySpec(
        "Yahoo",
        1_413_511_391,
        6_434_561_035,
        "web-like community",
        _social(
            130_000,
            6.0,
            0.6,
            7,
            min_size=16,
            max_size=40_000,
            size_exponent=1.5,
            density_decay=0.12,
        ),
    ),
    "randLocal": ProxySpec(
        "randLocal", 10_000_000, 49_100_524, "paper generator", _rand_local(40_000, 8)
    ),
    "3D-grid": ProxySpec(
        "3D-grid", 9_938_375, 29_815_125, "paper generator", _grid(32)
    ),
}

_CACHE: dict[tuple[str, float, int], CSRGraph] = {}


def proxy_names() -> list[str]:
    """Table-2 row order."""
    return list(PROXIES)


def default_scale() -> float:
    """Scale multiplier, from ``REPRO_SCALE`` (default 1.0)."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def load_proxy(name: str, scale: float | None = None, seed: int = 0) -> CSRGraph:
    """Build (or fetch the cached) proxy graph for a Table-2 name."""
    if name not in PROXIES:
        raise KeyError(f"unknown proxy {name!r}; known: {', '.join(PROXIES)}")
    if scale is None:
        scale = default_scale()
    key = (name, float(scale), int(seed))
    graph = _CACHE.get(key)
    if graph is None:
        graph = PROXIES[name].build(float(scale), int(seed))
        _CACHE[key] = graph
    return graph
