"""Graph serialisation: SNAP edge lists, Ligra AdjacencyGraph, NumPy binary.

The paper's inputs come from SNAP (http://snap.stanford.edu) as whitespace
edge lists with ``#`` comment headers, and its implementations live in the
Ligra framework, whose on-disk format is the ``AdjacencyGraph`` text layout
(header line, n, m, n offsets, m targets).  Both are supported here, plus a
compressed ``.npz`` format for fast round-trips in tests and benchmarks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .builder import edge_arrays_of, from_edge_arrays
from .csr import CSRGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_adjacency_graph",
    "read_adjacency_graph",
    "save_npz",
    "load_npz",
]


def write_edge_list(graph: CSRGraph, path: str | Path, comment: str | None = None) -> None:
    """Write a SNAP-style edge list (each undirected edge once, tab separated)."""
    sources, targets = edge_arrays_of(graph)
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        if comment:
            for line in comment.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        for u, v in zip(sources.tolist(), targets.tolist()):
            handle.write(f"{u}\t{v}\n")


def read_edge_list(path: str | Path, num_vertices: int | None = None) -> CSRGraph:
    """Read a SNAP-style edge list (``#`` comments ignored, any whitespace)."""
    sources: list[int] = []
    targets: list[int] = []
    with Path(path).open("r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
    return from_edge_arrays(
        np.asarray(sources, dtype=np.int64),
        np.asarray(targets, dtype=np.int64),
        num_vertices=num_vertices,
    )


def write_adjacency_graph(graph: CSRGraph, path: str | Path) -> None:
    """Write Ligra's text ``AdjacencyGraph`` format.

    Layout: the literal header ``AdjacencyGraph``, then ``n``, then the
    directed edge count ``2m``, then ``n`` offsets, then ``2m`` targets,
    one value per line.
    """
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        handle.write("AdjacencyGraph\n")
        handle.write(f"{graph.num_vertices}\n")
        handle.write(f"{graph.total_volume}\n")
        np.savetxt(handle, graph.offsets[:-1], fmt="%d")
        np.savetxt(handle, graph.neighbors, fmt="%d")


def read_adjacency_graph(path: str | Path) -> CSRGraph:
    """Read Ligra's text ``AdjacencyGraph`` format."""
    with Path(path).open("r", encoding="ascii") as handle:
        header = handle.readline().strip()
        if header != "AdjacencyGraph":
            raise ValueError(f"not an AdjacencyGraph file (header {header!r})")
        n = int(handle.readline())
        directed_edges = int(handle.readline())
        values = np.loadtxt(handle, dtype=np.int64, ndmin=1)
    if len(values) != n + directed_edges:
        raise ValueError("AdjacencyGraph length mismatch")
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[:n] = values[:n]
    offsets[n] = directed_edges
    return CSRGraph(offsets, values[n:])


def save_npz(graph: CSRGraph, path: str | Path) -> None:
    """Binary round-trip format (compressed ``.npz``)."""
    np.savez_compressed(Path(path), offsets=graph.offsets, neighbors=graph.neighbors)


def load_npz(path: str | Path) -> CSRGraph:
    """Load a graph written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return CSRGraph(data["offsets"], data["neighbors"])
