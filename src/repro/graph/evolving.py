"""Evolving-graph plane: immutable versions over batched edge updates.

Production graphs mutate under traffic, but every execution plane (engine,
cache, shards, serving) assumes one frozen :class:`~repro.graph.csr.CSRGraph`.
This module reconciles the two: an update batch (edge insertions and
deletions) produces a **new immutable version** rather than mutating in
place, so every existing invariant — content fingerprints as cache
identity, zero-copy shared exports, bit-identical parallel execution —
keeps holding per version.

Three pieces:

* :func:`apply_updates` / :meth:`GraphVersion.apply` — apply one batch,
  producing a :class:`GraphVersion` that carries the materialised graph,
  its own content fingerprint, a parent link, and the **touched-vertex
  set** of the delta (the vertices whose adjacency lists changed).  The
  touched set is what downstream planes consume: incremental PPR
  (:func:`repro.core.pr_nibble.pr_nibble_update`) corrects residuals only
  at touched endpoints, and the cache (:func:`repro.cache.advance_version`)
  invalidates only entries whose recorded support intersects the delta
  region.
* Two materialisation paths with a **rebuild threshold**: small batches
  take the delta path — splice the changed rows into the parent's CSR
  arrays (O(changes · log m) index work plus one memcpy of the neighbor
  array, no global re-sort) — while batches touching more than
  ``rebuild_threshold`` of the directed-edge volume rebuild from the full
  edge list.  Both paths land on the *identical canonical arrays*: CSR
  with sorted, deduplicated adjacency is a canonical form, so the
  fingerprint depends only on the edge set, never on the update path or
  ordering that produced it (the version-identity invariant the property
  suite pins).
* :class:`EvolvingGraph` — the version chain: ``apply_updates`` appends,
  ``at(k)`` addresses any historical version, ``latest`` tracks the head.
  Engines and services built over an :class:`EvolvingGraph` resolve a
  ``graph_version`` knob against this chain.

>>> from repro.graph import cycle_graph
>>> from repro.graph.evolving import EvolvingGraph
>>> chain = EvolvingGraph(cycle_graph(6))
>>> v1 = chain.apply_updates(insertions=[(0, 3)])
>>> (v1.version, sorted(v1.touched.tolist()), v1.graph.has_edge(0, 3))
(1, [0, 3], True)
>>> chain.apply_updates(deletions=[(0, 3)]).graph.fingerprint() == chain.at(0).graph.fingerprint()
True
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .builder import edge_arrays_of, from_edge_arrays
from .csr import CSRGraph

__all__ = [
    "DEFAULT_REBUILD_THRESHOLD",
    "EvolvingGraph",
    "GraphVersion",
    "apply_updates",
    "normalize_update_edges",
]

#: Directed-change fraction above which a batch rebuilds the CSR from the
#: full edge list instead of splicing rows into the parent's arrays.
DEFAULT_REBUILD_THRESHOLD = 0.25


def normalize_update_edges(
    edges: Iterable[Sequence[int]] | np.ndarray, num_vertices: int
) -> np.ndarray:
    """Update pairs as a deduplicated ``(k, 2)`` int64 array with ``u < v``.

    Updates are explicit user input, so unlike the bulk builders nothing is
    silently dropped: self-loops and out-of-range endpoints raise.
    """
    pairs = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    pairs = pairs.astype(np.int64, copy=False).reshape(-1, 2)
    if pairs.min() < 0 or pairs.max() >= num_vertices:
        raise ValueError(
            f"update endpoints must be in [0, {num_vertices}); got "
            f"[{pairs.min()}, {pairs.max()}]"
        )
    if np.any(pairs[:, 0] == pairs[:, 1]):
        raise ValueError("edge updates must not contain self-loops")
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    encoded = np.unique(lo * np.int64(num_vertices) + hi)
    return np.stack([encoded // num_vertices, encoded % num_vertices], axis=1)


def _directed_encodings(pairs: np.ndarray, num_vertices: int) -> np.ndarray:
    """Both directions of each ``u < v`` pair as sorted ``src * n + dst`` keys."""
    n = np.int64(num_vertices)
    forward = pairs[:, 0] * n + pairs[:, 1]
    backward = pairs[:, 1] * n + pairs[:, 0]
    return np.sort(np.concatenate([forward, backward]))


def _present_mask(graph: CSRGraph, pairs: np.ndarray) -> np.ndarray:
    """Which ``u < v`` pairs are existing edges of ``graph``."""
    return np.fromiter(
        (graph.has_edge(int(u), int(v)) for u, v in pairs),
        dtype=bool,
        count=len(pairs),
    )


def _splice(graph: CSRGraph, insert: np.ndarray, delete: np.ndarray) -> CSRGraph:
    """Delta path: patch the parent's CSR arrays row-locally.

    The parent's directed-edge key sequence ``src * n + dst`` is strictly
    increasing (CSR rows are contiguous and adjacency lists sorted), so a
    batch is two sorted-merge passes — ``searchsorted`` locates each change,
    one ``delete``/``insert`` memcpy applies it — and the result is the
    same canonical array a full rebuild would produce.
    """
    n = graph.num_vertices
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.offsets))
    encoded = sources * np.int64(n) + graph.neighbors
    if len(delete):
        remove = _directed_encodings(delete, n)
        encoded = np.delete(encoded, np.searchsorted(encoded, remove))
    if len(insert):
        add = _directed_encodings(insert, n)
        encoded = np.insert(encoded, np.searchsorted(encoded, add), add)
    new_sources = encoded // n
    counts = np.bincount(new_sources, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(offsets, (encoded % n).astype(np.int64))


def _rebuild(graph: CSRGraph, insert: np.ndarray, delete: np.ndarray) -> CSRGraph:
    """Rebuild path: full canonical rebuild from the updated edge list."""
    n = graph.num_vertices
    sources, targets = edge_arrays_of(graph)
    encoded = sources * np.int64(n) + targets  # u < v, unique
    if len(delete):
        remove = delete[:, 0] * np.int64(n) + delete[:, 1]
        encoded = encoded[~np.isin(encoded, remove)]
    if len(insert):
        encoded = np.concatenate([encoded, insert[:, 0] * np.int64(n) + insert[:, 1]])
    return from_edge_arrays(encoded // n, encoded % n, num_vertices=n)


class GraphVersion:
    """One immutable version of an evolving graph.

    ``graph`` is a plain canonical :class:`~repro.graph.csr.CSRGraph` —
    every downstream plane (kernels, shared memory, sharding, caching)
    consumes it unchanged.  ``touched`` is the sorted vertex set whose
    adjacency differs from ``parent``; ``rebuilt`` records which
    materialisation path produced the arrays (the content is identical
    either way).
    """

    __slots__ = ("graph", "version", "parent", "touched", "rebuilt")

    def __init__(
        self,
        graph: CSRGraph,
        version: int = 0,
        parent: "GraphVersion | None" = None,
        touched: np.ndarray | None = None,
        rebuilt: bool = False,
    ) -> None:
        self.graph = graph
        self.version = int(version)
        self.parent = parent
        self.touched = (
            np.empty(0, dtype=np.int64)
            if touched is None
            else np.unique(np.asarray(touched, dtype=np.int64))
        )
        self.rebuilt = bool(rebuilt)

    def fingerprint(self) -> str:
        """Content fingerprint of this version's edge set (cache identity)."""
        return self.graph.fingerprint()

    def apply(
        self,
        insertions: Iterable[Sequence[int]] | np.ndarray = (),
        deletions: Iterable[Sequence[int]] | np.ndarray = (),
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
    ) -> "GraphVersion":
        """One update batch applied to this version (see :func:`apply_updates`)."""
        return apply_updates(
            self, insertions, deletions, rebuild_threshold=rebuild_threshold
        )

    def touched_since(self, ancestor: "GraphVersion") -> np.ndarray:
        """Union of touched sets along the parent chain back to ``ancestor``.

        ``ancestor`` must be this version or one of its ancestors; the
        returned set is every vertex whose adjacency may differ between the
        two versions (the delta region incremental maintenance corrects).
        """
        sets: list[np.ndarray] = []
        cursor: GraphVersion | None = self
        while cursor is not None and cursor is not ancestor:
            sets.append(cursor.touched)
            cursor = cursor.parent
        if cursor is None:
            raise ValueError(
                f"version {ancestor.version} is not an ancestor of version "
                f"{self.version}"
            )
        if not sets:
            return np.empty(0, dtype=np.int64)
        if len(sets) == 1:
            return sets[0]  # already unique and sorted per version
        return np.unique(np.concatenate(sets))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GraphVersion(v{self.version}, n={self.graph.num_vertices}, "
            f"m2={len(self.graph.neighbors)}, touched={len(self.touched)}, "
            f"fingerprint={self.fingerprint()[:12]})"
        )


def apply_updates(
    base: GraphVersion | CSRGraph,
    insertions: Iterable[Sequence[int]] | np.ndarray = (),
    deletions: Iterable[Sequence[int]] | np.ndarray = (),
    rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
) -> GraphVersion:
    """Apply one batched update, producing the next immutable version.

    Inserting an edge that already exists (or deleting one that does not)
    is a no-op: the touched set and the delta cost count only *effective*
    changes, so the version identity depends purely on the resulting edge
    set.  An edge named in both lists of one batch is ambiguous and raises.

    ``rebuild_threshold`` picks the materialisation path: batches whose
    effective directed changes exceed that fraction of the parent's
    directed-edge volume rebuild from the edge list; smaller batches splice
    rows into the parent's arrays.  ``0.0`` forces rebuild, ``1.0``
    (almost) always splices; the arrays — and therefore the fingerprint —
    are identical either way.
    """
    if not 0.0 <= rebuild_threshold <= 1.0:
        raise ValueError("rebuild_threshold must be in [0, 1]")
    parent = base if isinstance(base, GraphVersion) else GraphVersion(base)
    graph = parent.graph
    insert = normalize_update_edges(insertions, graph.num_vertices)
    delete = normalize_update_edges(deletions, graph.num_vertices)
    if len(insert) and len(delete):
        n = np.int64(graph.num_vertices)
        overlap = np.intersect1d(
            insert[:, 0] * n + insert[:, 1], delete[:, 0] * n + delete[:, 1]
        )
        if len(overlap):
            u, v = int(overlap[0] // n), int(overlap[0] % n)
            raise ValueError(
                f"edge ({u}, {v}) appears in both insertions and deletions "
                "of one batch"
            )
    # Only effective changes count: no-op updates must not perturb the
    # touched set (or the cache invalidation region derived from it).
    insert = insert[~_present_mask(graph, insert)]
    delete = delete[_present_mask(graph, delete)]
    if not len(insert) and not len(delete):
        return GraphVersion(
            graph,
            version=parent.version + 1,
            parent=parent,
            touched=np.empty(0, dtype=np.int64),
            rebuilt=False,
        )
    directed_changes = 2 * (len(insert) + len(delete))
    rebuild = directed_changes > rebuild_threshold * max(len(graph.neighbors), 1)
    updated = (
        _rebuild(graph, insert, delete) if rebuild else _splice(graph, insert, delete)
    )
    touched = np.unique(np.concatenate([insert.ravel(), delete.ravel()]))
    return GraphVersion(
        updated,
        version=parent.version + 1,
        parent=parent,
        touched=touched,
        rebuilt=rebuild,
    )


class EvolvingGraph:
    """The version chain of a graph evolving under update batches.

    Versions are numbered densely from 0 (the root graph); every version
    stays addressable through :meth:`at`, so engines pinned to an old
    version (``graph_version=k``) and the serving plane's
    admitted-against-version semantics both resolve against one chain.
    Appending is the only mutation and versions are immutable, so readers
    on other threads see a consistent chain without locking.
    """

    def __init__(
        self,
        graph: CSRGraph | GraphVersion,
        rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD,
    ) -> None:
        if not 0.0 <= rebuild_threshold <= 1.0:
            raise ValueError("rebuild_threshold must be in [0, 1]")
        root = graph if isinstance(graph, GraphVersion) else GraphVersion(graph)
        if root.version != 0 or root.parent is not None:
            raise ValueError("an EvolvingGraph must start from a root version")
        self._versions: list[GraphVersion] = [root]
        self.rebuild_threshold = float(rebuild_threshold)

    @property
    def latest(self) -> GraphVersion:
        return self._versions[-1]

    @property
    def num_versions(self) -> int:
        return len(self._versions)

    @property
    def num_vertices(self) -> int:
        """Vertex count (stable across versions: updates never add vertices)."""
        return self._versions[0].graph.num_vertices

    def at(self, version: int | None) -> GraphVersion:
        """The version numbered ``version`` (``None`` means the latest)."""
        if version is None:
            return self.latest
        index = int(version)
        if not 0 <= index < len(self._versions):
            raise ValueError(
                f"graph_version {index} does not exist (have versions "
                f"0..{len(self._versions) - 1})"
            )
        return self._versions[index]

    def apply_updates(
        self,
        insertions: Iterable[Sequence[int]] | np.ndarray = (),
        deletions: Iterable[Sequence[int]] | np.ndarray = (),
    ) -> GraphVersion:
        """Apply one batch to the latest version and append the result."""
        version = apply_updates(
            self.latest, insertions, deletions, rebuild_threshold=self.rebuild_threshold
        )
        self._versions.append(version)
        return version

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EvolvingGraph(versions={len(self._versions)}, "
            f"latest={self.latest.fingerprint()[:12]})"
        )
