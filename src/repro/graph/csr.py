"""Compressed-sparse-row graph — the in-memory representation.

All graphs in the paper are undirected and unweighted (Section 2); Ligra
stores them in CSR so that the edges of a vertex subset can be gathered with
work proportional to the subset's volume.  :class:`CSRGraph` mirrors that:
``offsets`` (length n+1) indexes into ``neighbors`` (length 2m, each
undirected edge stored in both directions).

The key bulk operation is :meth:`CSRGraph.gather_edges`, which materialises
the ``(source, destination)`` pairs of all edges incident to a frontier in
O(volume) work and O(log volume) depth — exactly the cost Ligra's
``edgeMap`` is charged in the paper.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

import numpy as np

from ..prims.scan import exclusive_prefix_sum
from ..runtime import log2ceil, record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .shared import SharedCSR, SharedCSRHandle

__all__ = ["CSRGraph"]


class CSRGraph:
    """Undirected, unweighted graph in compressed-sparse-row form.

    Build instances with :mod:`repro.graph.builder` (which symmetrises,
    deduplicates and removes self-loops) or a generator from
    :mod:`repro.graph.generators`; the constructor itself only validates
    structural consistency of pre-built arrays.
    """

    __slots__ = ("offsets", "neighbors", "_fingerprint")

    def __init__(self, offsets: np.ndarray, neighbors: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if offsets.ndim != 1 or neighbors.ndim != 1:
            raise ValueError("offsets and neighbors must be 1-D arrays")
        if len(offsets) == 0 or offsets[0] != 0:
            raise ValueError("offsets must start with 0")
        if offsets[-1] != len(neighbors):
            raise ValueError("offsets must end at len(neighbors)")
        if len(offsets) > 1 and (np.diff(offsets) < 0).any():
            raise ValueError("offsets must be non-decreasing")
        if len(neighbors) > 0 and (neighbors.min() < 0 or neighbors.max() >= len(offsets) - 1):
            raise ValueError("neighbor ids out of range")
        self.offsets = offsets
        self.neighbors = neighbors

    # ------------------------------------------------------------------
    # Sizes (paper notation: n = |V|, m = |E| undirected, vol(V) = 2m)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """n — number of vertices."""
        return len(self.offsets) - 1

    @property
    def num_edges(self) -> int:
        """m — number of *undirected* edges."""
        return len(self.neighbors) // 2

    @property
    def total_volume(self) -> int:
        """vol(V) = 2m — the sum of all degrees."""
        return len(self.neighbors)

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Content fingerprint (the cache's graph identity)
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the CSR arrays, memoised on the instance.

        Two graphs have equal fingerprints iff their ``offsets`` and
        ``neighbors`` arrays are element-wise identical, so the value
        survives any lossless round-trip through :mod:`repro.graph.io` and
        changes when any edge is added, removed, or rewired.  ``CSRGraph``
        itself is unweighted (``__slots__`` admits no ``weights``), but a
        subclass that adds a ``weights`` array gets it folded in, so a
        weighted variant can never alias its unweighted skeleton.  The CSR
        arrays are treated as immutable after construction (everything in
        this codebase reads but never writes them); mutating them in place
        would silently invalidate the memo.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(digest_size=20)
        arrays = [("offsets", self.offsets), ("neighbors", self.neighbors)]
        weights = getattr(self, "weights", None)
        if weights is not None:
            arrays.append(("weights", weights))
        for name, array in arrays:
            digest.update(name.encode("ascii"))
            digest.update(str(array.dtype).encode("ascii"))
            digest.update(np.int64(array.shape[0]).tobytes())
            digest.update(np.ascontiguousarray(array).tobytes())
        value = digest.hexdigest()
        self._fingerprint = value
        return value

    # ------------------------------------------------------------------
    # Shared-memory export (the engine's cross-process graph plane)
    # ------------------------------------------------------------------
    def share(self) -> "SharedCSR":
        """Export the CSR arrays into shared-memory segments.

        Returns an owning :class:`repro.graph.shared.SharedCSR`; pass its
        ``handle()`` to worker processes and rebuild the graph there with
        :meth:`attach`.  The caller (or an ``atexit`` guard) must
        ``unlink()`` the segments — ``with graph.share() as shared: ...``
        does so deterministically.
        """
        from .shared import SharedCSR

        return SharedCSR.create(self)

    @classmethod
    def attach(cls, handle: "SharedCSRHandle") -> "SharedCSR":
        """Attach zero-copy to a graph exported by :meth:`share`.

        Works under any ``multiprocessing`` start method; the returned
        :class:`SharedCSR`'s ``graph`` attribute is a read-only
        :class:`CSRGraph` view over the shared segments.
        """
        from .shared import SharedCSR

        return SharedCSR.attach(handle)

    # ------------------------------------------------------------------
    # Degrees and adjacency
    # ------------------------------------------------------------------
    def degree(self, vertex: int) -> int:
        """d(v) — number of edges incident on ``vertex``."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def degrees(self, vertices: np.ndarray | None = None) -> np.ndarray:
        """Degrees of ``vertices`` (or of every vertex when omitted)."""
        if vertices is None:
            return np.diff(self.offsets)
        vertices = np.asarray(vertices, dtype=np.int64)
        return self.offsets[vertices + 1] - self.offsets[vertices]

    def neighbors_of(self, vertex: int) -> np.ndarray:
        """Read-only view of the adjacency list of ``vertex``."""
        return self.neighbors[self.offsets[vertex] : self.offsets[vertex + 1]]

    def volume(self, vertices: np.ndarray) -> int:
        """vol(S) — sum of degrees over the vertex set ``vertices``."""
        return int(self.degrees(np.asarray(vertices, dtype=np.int64)).sum())

    def neighbor_at(self, vertices: np.ndarray, pick: np.ndarray) -> np.ndarray:
        """The ``pick``-th neighbor of each vertex (vectorised walk step).

        Every graph read the algorithms perform goes through a method —
        never raw ``offsets``/``neighbors`` indexing — so the sharded view
        (:mod:`repro.graph.sharded`) can answer it per shard.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        pick = np.asarray(pick, dtype=np.int64)
        return self.neighbors[self.offsets[vertices] + pick]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search (adjacency lists are sorted)."""
        adjacency = self.neighbors_of(u)
        position = np.searchsorted(adjacency, v)
        return bool(position < len(adjacency) and adjacency[position] == v)

    # ------------------------------------------------------------------
    # Bulk edge gather (the engine under edgeMap)
    # ------------------------------------------------------------------
    def gather_edges(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All directed edges leaving ``vertices`` as ``(sources, targets)``.

        Work O(|vertices| + vol(vertices)), depth O(log vol): per-vertex
        degrees are scanned into write offsets and every edge slot is filled
        independently — the data-parallel edge gather Ligra performs inside
        ``edgeMap``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        degs = self.degrees(vertices)
        starts, total = exclusive_prefix_sum(degs)
        total = int(total)
        record(work=len(vertices) + total, depth=log2ceil(max(total, 1)), category="edge_map")
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        slot = np.arange(total, dtype=np.int64)
        per_vertex_base = np.repeat(self.offsets[vertices], degs)
        within = slot - np.repeat(starts, degs)
        sources = np.repeat(vertices, degs)
        targets = self.neighbors[per_vertex_base + within]
        return sources, targets

    # ------------------------------------------------------------------
    # Validation (used by tests and the builder)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``ValueError`` unless the graph is simple and symmetric."""
        n = self.num_vertices
        for vertex in range(n):
            adjacency = self.neighbors_of(vertex)
            if len(adjacency) > 1 and (np.diff(adjacency) <= 0).any():
                raise ValueError(f"adjacency of {vertex} not strictly increasing")
            if (adjacency == vertex).any():
                raise ValueError(f"self-loop at {vertex}")
        sources, targets = self.gather_edges(np.arange(n, dtype=np.int64))
        forward = set(zip(sources.tolist(), targets.tolist()))
        for u, v in forward:
            if (v, u) not in forward:
                raise ValueError(f"edge ({u}, {v}) missing its reverse")
