"""Graph generators: the paper's synthetic inputs plus proxy families.

Two generators come straight from Section 4 ("Input Graphs"):

* ``randLocal`` — "a random graph where every vertex has five edges to
  neighbors chosen with probability proportional to the difference in the
  neighbor's ID value from the vertex's ID".  As in the PBBS generator this
  describes, the bias *favours nearby ids* (probability inversely
  proportional to the id distance) — that locality is what gives the graph
  good small clusters.
* ``3D-grid`` — "a synthetic grid graph in 3-dimensional space where every
  vertex has six edges, each connecting it to its 2 neighbors in each
  dimension" (a 3-torus, so the graph is 6-regular).

The remaining generators build the scaled-down *proxies* for the paper's
real-world inputs (see :mod:`repro.graph.proxies`): R-MAT for heavy-tailed
degree structure, a power-law community model for social networks (the
source of the NCP dip in Figure 12), a citation-style copying model, and
classic small graphs for tests, including the exact worked example of the
paper's Figure 1.

All randomness flows through an explicit ``numpy.random.Generator`` seed.
"""

from __future__ import annotations

import numpy as np

from .builder import from_edge_arrays, from_edge_list
from .csr import CSRGraph

__all__ = [
    "rand_local",
    "grid_3d",
    "rmat",
    "erdos_renyi",
    "planted_partition",
    "power_law_communities",
    "citation_graph",
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "barbell_graph",
    "paper_figure1_graph",
]


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# The paper's own synthetic generators
# ----------------------------------------------------------------------
def rand_local(n: int, edges_per_vertex: int = 5, seed: int | np.random.Generator = 0) -> CSRGraph:
    """The paper's ``randLocal`` graph (Section 4).

    Each vertex draws ``edges_per_vertex`` neighbors with probability
    biased towards nearby vertex ids: the id distance is sampled
    log-uniformly, giving density roughly proportional to ``1/distance``.
    After symmetrisation and deduplication the average degree is a little
    under ``2 * edges_per_vertex`` (the paper's instance: n = 10^7 with
    49.1M unique undirected edges from 5 picks per vertex).
    """
    if n < 2:
        raise ValueError("rand_local needs at least 2 vertices")
    rng = _rng(seed)
    picks = n * edges_per_vertex
    sources = np.repeat(np.arange(n, dtype=np.int64), edges_per_vertex)
    # Log-uniform distance in [1, n-1]: P(distance = d) ~ 1/d.
    distance = np.exp(rng.random(picks) * np.log(n - 1)).astype(np.int64)
    distance = np.clip(distance, 1, n - 1)
    sign = rng.integers(0, 2, size=picks) * 2 - 1
    targets = (sources + sign * distance) % n
    return from_edge_arrays(sources, targets, num_vertices=n)


def grid_3d(side: int, torus: bool = True) -> CSRGraph:
    """The paper's ``3D-grid`` graph: ``side**3`` vertices, 6-regular torus.

    With ``torus=False`` boundary vertices simply lack the wrapped edges
    (useful for small tests).
    """
    if side < 2:
        raise ValueError("grid_3d needs side >= 2")
    n = side**3
    coords = np.arange(n, dtype=np.int64)
    x = coords % side
    y = (coords // side) % side
    z = coords // (side * side)

    sources = []
    targets = []
    for axis_value, stride in ((x, 1), (y, side), (z, side * side)):
        forward = axis_value + 1
        if torus:
            wrapped = coords + stride * (np.where(forward == side, 1 - side, 1))
            sources.append(coords)
            targets.append(wrapped)
        else:
            interior = forward < side
            sources.append(coords[interior])
            targets.append(coords[interior] + stride)
    return from_edge_arrays(np.concatenate(sources), np.concatenate(targets), num_vertices=n)


# ----------------------------------------------------------------------
# Proxy families for the paper's real-world graphs
# ----------------------------------------------------------------------
def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """R-MAT graph with ``2**scale`` vertices and heavy-tailed degrees.

    The standard recursive-quadrant sampler (Graph500 defaults
    ``a=0.57, b=0.19, c=0.19, d=0.05``); used as the proxy family for the
    Twitter / friendster / Web crawls, whose skewed degree distributions
    drive the frontier sizes in the paper's scaling experiments.
    """
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must leave d = 1-a-b-c > 0")
    rng = _rng(seed)
    n = 1 << scale
    num_edges = n * edge_factor
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for _ in range(scale):
        rows <<= 1
        cols <<= 1
        draw = rng.random(num_edges)
        # Quadrants: (0,0) w.p. a; (0,1) w.p. b; (1,0) w.p. c; (1,1) w.p. d.
        right = ((draw >= a) & (draw < a + b)) | (draw >= a + b + c)
        down = draw >= a + b
        cols += right
        rows += down
    return from_edge_arrays(rows, cols, num_vertices=n)


def erdos_renyi(n: int, num_edges: int, seed: int | np.random.Generator = 0) -> CSRGraph:
    """G(n, m)-style random graph: ``num_edges`` uniform endpoint pairs."""
    rng = _rng(seed)
    sources = rng.integers(0, n, size=num_edges, dtype=np.int64)
    targets = rng.integers(0, n, size=num_edges, dtype=np.int64)
    return from_edge_arrays(sources, targets, num_vertices=n)


def planted_partition(
    n: int,
    num_communities: int,
    intra_degree: float,
    inter_degree: float,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Equal-size planted-partition graph (stochastic block model).

    Each vertex gets ~``intra_degree`` edges inside its community and
    ~``inter_degree`` edges to uniform random vertices.  With
    ``intra_degree >> inter_degree`` every community is a low-conductance
    cluster — the ground truth used by the end-to-end recovery tests
    ("if there exists a cluster S with conductance phi and one picks a
    starting vertex in S then the algorithm returns a cluster...").
    """
    if n % num_communities != 0:
        raise ValueError("n must be divisible by num_communities")
    rng = _rng(seed)
    size = n // num_communities
    num_intra = int(round(n * intra_degree / 2))
    num_inter = int(round(n * inter_degree / 2))

    community = rng.integers(0, num_communities, size=num_intra, dtype=np.int64)
    intra_u = community * size + rng.integers(0, size, size=num_intra, dtype=np.int64)
    intra_v = community * size + rng.integers(0, size, size=num_intra, dtype=np.int64)
    inter_u = rng.integers(0, n, size=num_inter, dtype=np.int64)
    inter_v = rng.integers(0, n, size=num_inter, dtype=np.int64)
    return from_edge_arrays(
        np.concatenate([intra_u, inter_u]),
        np.concatenate([intra_v, inter_v]),
        num_vertices=n,
    )


def power_law_communities(
    n: int,
    intra_degree: float = 8.0,
    inter_degree: float = 4.0,
    min_size: int = 8,
    max_size: int = 2048,
    size_exponent: float = 1.8,
    density_decay: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Social-network proxy: power-law community sizes + R-MAT-style glue.

    Community sizes follow a truncated Pareto law (exponent
    ``size_exponent``); inside each community vertices receive
    ~``intra_degree`` uniform edges; across communities an R-MAT-like
    skewed sampler contributes ~``inter_degree`` per vertex, producing the
    heavy-tailed global degree distribution of graphs like soc-LiveJournal
    and com-Orkut.  The small dense communities are exactly the
    low-conductance clusters of size 10-100 behind the NCP dip the paper
    reproduces from Leskovec et al.

    ``density_decay`` scales a community's internal degree by
    ``(min_size / size) ** density_decay``: with a positive decay, larger
    communities are internally sparser — the well-documented property of
    real social networks that makes their NCP *rise* again past the dip
    (big "communities" blend into the expander core).  Zero keeps uniform
    density, in which case community conductance is size-independent.
    """
    if density_decay < 0.0:
        raise ValueError("density_decay must be non-negative")
    rng = _rng(seed)
    sizes: list[int] = []
    total = 0
    while total < n:
        draw = min_size * (1.0 - rng.random()) ** (-1.0 / (size_exponent - 1.0))
        size = int(min(max(draw, min_size), max_size, n - total))
        sizes.append(size)
        total += size

    starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
    sizes_arr = np.asarray(sizes, dtype=np.int64)

    # Intra-community edges: per-vertex budget proportional to community
    # size, discounted for large communities by the density decay.
    density = (min_size / sizes_arr.astype(np.float64)) ** density_decay
    intra_per_comm = np.maximum(
        (sizes_arr * density * intra_degree / 2).astype(np.int64), 1
    )
    comm_of_edge = np.repeat(np.arange(len(sizes), dtype=np.int64), intra_per_comm)
    edge_start = starts[comm_of_edge]
    edge_size = sizes_arr[comm_of_edge]
    intra_u = edge_start + (rng.random(len(comm_of_edge)) * edge_size).astype(np.int64)
    intra_v = edge_start + (rng.random(len(comm_of_edge)) * edge_size).astype(np.int64)

    # Inter-community edges: skewed endpoints (squared uniform favours low
    # ids, i.e. the big communities' hubs), then a random id permutation
    # below removes any id-ordering artifact.
    num_inter = int(round(n * inter_degree / 2))
    inter_u = (rng.random(num_inter) ** 2 * n).astype(np.int64)
    inter_v = (rng.random(num_inter) * n).astype(np.int64)

    sources = np.concatenate([intra_u, inter_u])
    targets = np.concatenate([intra_v, inter_v])
    permutation = rng.permutation(n).astype(np.int64)
    return from_edge_arrays(permutation[sources], permutation[targets], num_vertices=n)


def citation_graph(
    n: int,
    references_per_vertex: int = 5,
    skew: float = 2.0,
    seed: int | np.random.Generator = 0,
) -> CSRGraph:
    """Citation-network proxy (cit-Patents): a copying/recency model.

    Vertex ``i`` cites ``references_per_vertex`` earlier vertices with a
    bias towards early (already highly cited) vertices: target
    ``floor(i * U**skew)``.  Produces a sparse, DAG-like topology with a
    few heavily cited hubs, like patent citation networks.
    """
    rng = _rng(seed)
    sources = np.repeat(np.arange(1, n, dtype=np.int64), references_per_vertex)
    draw = rng.random(len(sources)) ** skew
    targets = (sources.astype(np.float64) * draw).astype(np.int64)
    return from_edge_arrays(sources, targets, num_vertices=n)


# ----------------------------------------------------------------------
# Small deterministic graphs (tests and documentation examples)
# ----------------------------------------------------------------------
def path_graph(n: int) -> CSRGraph:
    """Path 0 - 1 - ... - (n-1)."""
    vertices = np.arange(n - 1, dtype=np.int64)
    return from_edge_arrays(vertices, vertices + 1, num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("cycle_graph needs n >= 3")
    vertices = np.arange(n, dtype=np.int64)
    return from_edge_arrays(vertices, (vertices + 1) % n, num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    """Clique on ``n`` vertices."""
    grid_u, grid_v = np.triu_indices(n, k=1)
    return from_edge_arrays(grid_u.astype(np.int64), grid_v.astype(np.int64), num_vertices=n)


def star_graph(n: int) -> CSRGraph:
    """Star: vertex 0 joined to vertices 1..n-1."""
    spokes = np.arange(1, n, dtype=np.int64)
    return from_edge_arrays(np.zeros(n - 1, dtype=np.int64), spokes, num_vertices=n)


def barbell_graph(clique_size: int) -> CSRGraph:
    """Two ``clique_size``-cliques joined by a single bridge edge.

    The bridge is the unique minimum-conductance cut, a convenient ground
    truth for sweep-cut tests.
    """
    k = clique_size
    left_u, left_v = np.triu_indices(k, k=1)
    right_u = left_u + k
    right_v = left_v + k
    sources = np.concatenate([left_u, right_u, [k - 1]]).astype(np.int64)
    targets = np.concatenate([left_v, right_v, [k]]).astype(np.int64)
    return from_edge_arrays(sources, targets, num_vertices=2 * k)


def paper_figure1_graph() -> CSRGraph:
    """The example graph of the paper's Figure 1 (n = 8, m = 8).

    Vertices A..H map to 0..7.  The nested clusters have the conductances
    listed in the figure: phi({A}) = 1, phi({A,B}) = 1/2,
    phi({A,B,C}) = 1/7, phi({A,B,C,D}) = 3/5 — with the sweep ordering
    {A, B, C, D} the sweep cut must return {A, B, C}.
    """
    edges = [
        (0, 1),  # A-B
        (0, 2),  # A-C
        (1, 2),  # B-C
        (2, 3),  # C-D
        (3, 4),  # D-E
        (3, 5),  # D-F
        (3, 6),  # D-G
        (6, 7),  # G-H
    ]
    return from_edge_list(edges, num_vertices=8)
