"""repro — Parallel Local Graph Clustering.

A from-scratch Python reproduction of *"Parallel Local Graph Clustering"*
(J. Shun, F. Roosta-Khorasani, K. Fountoulakis, M. W. Mahoney; VLDB 2016):
work-efficient parallel versions of the Nibble, PageRank-Nibble, heat
kernel PageRank and randomized heat kernel PageRank local clustering
algorithms, a work-efficient parallel sweep cut, the Ligra-style local
graph-processing substrate they run on, and the paper's full experimental
harness.

Quick start
-----------
>>> import repro
>>> graph = repro.graph.barbell_graph(16)
>>> result = repro.local_cluster(graph, seeds=0, method="pr-nibble", eps=1e-5)
>>> result.size, round(result.conductance, 4)
(16, 0.0041)

Subpackages
-----------
``repro.cache``
    Content-addressed result cache: graph fingerprints, canonical cache
    keys, LRU/disk stores, and the caching backend that replays repeated
    diffusion queries instead of re-running them.
``repro.core``
    The clustering algorithms, sweep cut, quality metrics, NCP driver.
``repro.engine``
    Batch executor: independent diffusion jobs fanned across a process
    pool, shard-routed (``shards=``), or run serially, aggregated
    through reducers.
``repro.graph``
    CSR graphs, builders, generators, IO, Table-2 proxy registry, the
    shared-memory export plane and the sharded (partitioned) plane.
``repro.kernels``
    Compiled kernel plane: numba- and C-compiled twins of the hot
    diffusion loops, selected by the ``kernel=`` knob, bit-identical to
    the Python reference.
``repro.ligra``
    vertexSubset / vertexMap / edgeMap local-processing layer.
``repro.prims``
    Parallel primitives: scan, filter, sorting, hash table, sparse sets.
``repro.runtime``
    Work-depth instrumentation and the simulated multicore machine.
``repro.serve``
    Async serving plane: a :class:`~repro.serve.DiffusionService`
    micro-batching concurrent client queries onto one long-lived engine
    pool, interactive jobs drained ahead of bulk backlogs.
"""

from . import bench, cache, core, engine, graph, kernels, ligra, prims, runtime, serve
from .cache import CacheStats, CachingBackend, ResultCache
from .core import (
    ALGORITHMS,
    ClusterRequest,
    ClusterResult,
    EngineOptions,
    EvolvingSetParams,
    HKPRParams,
    LocalClusterer,
    NibbleParams,
    PRNibbleParams,
    RandHKPRParams,
    RequestError,
    async_local_cluster,
    cluster_many,
    cluster_stats,
    conductance,
    evolving_set_process,
    hk_pr,
    local_cluster,
    ncp_profile,
    nibble,
    pr_nibble,
    rand_hk_pr,
    sweep_cut,
)
from .engine import BatchEngine, DiffusionJob, job_grid
from .graph import CSRGraph, load_proxy
from .runtime import PAPER_MACHINE, MachineModel, track
from .serve import DiffusionServer, DiffusionService

__version__ = "1.0.0"

__all__ = [
    "bench",
    "cache",
    "CacheStats",
    "CachingBackend",
    "ResultCache",
    "core",
    "engine",
    "graph",
    "kernels",
    "ligra",
    "prims",
    "runtime",
    "serve",
    "ALGORITHMS",
    "BatchEngine",
    "ClusterRequest",
    "DiffusionServer",
    "DiffusionService",
    "EngineOptions",
    "RequestError",
    "ClusterResult",
    "DiffusionJob",
    "job_grid",
    "async_local_cluster",
    "cluster_many",
    "EvolvingSetParams",
    "HKPRParams",
    "LocalClusterer",
    "NibbleParams",
    "PRNibbleParams",
    "RandHKPRParams",
    "cluster_stats",
    "conductance",
    "evolving_set_process",
    "hk_pr",
    "local_cluster",
    "ncp_profile",
    "nibble",
    "pr_nibble",
    "rand_hk_pr",
    "sweep_cut",
    "CSRGraph",
    "load_proxy",
    "PAPER_MACHINE",
    "MachineModel",
    "track",
    "__version__",
]
