"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from .harness import (
    ProfiledRun,
    ascii_series,
    format_seconds,
    format_table,
    profiled_run,
    results_dir,
    write_csv,
)

__all__ = [
    "ProfiledRun",
    "ascii_series",
    "format_seconds",
    "format_table",
    "profiled_run",
    "results_dir",
    "write_csv",
]
