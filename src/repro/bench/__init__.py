"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from .harness import (
    BatchRun,
    ProfiledRun,
    ascii_series,
    batched_run,
    format_seconds,
    format_table,
    profiled_run,
    results_dir,
    write_csv,
)
from .memory import measure_probe, serve_and_report

__all__ = [
    "BatchRun",
    "ProfiledRun",
    "ascii_series",
    "batched_run",
    "format_seconds",
    "format_table",
    "measure_probe",
    "serve_and_report",
    "profiled_run",
    "results_dir",
    "write_csv",
]
