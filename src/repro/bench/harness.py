"""Benchmark harness utilities: profiling runs, tables, CSV emission.

Every benchmark in ``benchmarks/`` regenerates one table or figure of the
paper.  The helpers here keep those scripts small: run a callable under the
work-depth tracker and a wall clock, simulate paper-machine times at any
core count, format aligned tables that mirror the paper's layout, and write
CSV series (one file per table/figure) under ``results/``.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, TypeVar

from ..runtime import PAPER_MACHINE, MachineModel, WorkDepthTracker, track

__all__ = [
    "ProfiledRun",
    "profiled_run",
    "BatchRun",
    "batched_run",
    "results_dir",
    "write_csv",
    "format_table",
    "format_seconds",
    "ascii_series",
]

T = TypeVar("T")


@dataclass
class ProfiledRun:
    """One measured execution: its value, cost profile and wall time."""

    value: Any
    tracker: WorkDepthTracker
    wall_seconds: float

    def simulated_time(self, cores: int, machine: MachineModel = PAPER_MACHINE) -> float:
        """Simulated paper-machine time at ``cores`` cores (T_1, T_40, ...)."""
        return machine.simulated_time_on_cores(self.tracker, cores)

    def speedup(self, cores: int, machine: MachineModel = PAPER_MACHINE) -> float:
        return machine.self_relative_speedup(self.tracker, cores)


def profiled_run(fn: Callable[[], T]) -> ProfiledRun:
    """Execute ``fn`` under the cost tracker and a wall clock."""
    start = time.perf_counter()
    with track() as tracker:
        value = fn()
    elapsed = time.perf_counter() - start
    return ProfiledRun(value=value, tracker=tracker, wall_seconds=elapsed)


@dataclass
class BatchRun:
    """One measured batch-engine run: reduced value, stats and wall time.

    The throughput quantity benchmarks care about is wall-clock jobs/s at
    a given worker count — per-job times summed across a pool overcount,
    so :class:`~repro.engine.reducers.BatchStats` and the wall clock are
    kept side by side.
    """

    value: Any
    stats: Any
    wall_seconds: float
    workers: int

    @property
    def jobs_per_second(self) -> float:
        return self.stats.jobs_per_second(self.wall_seconds)


def batched_run(engine: Any, jobs: Iterable[Any], reducer: Any = None) -> BatchRun:
    """Run ``jobs`` through a :class:`repro.engine.BatchEngine` under a wall
    clock, always collecting :class:`BatchStats` alongside the caller's
    reducer.  ``value`` is the caller-reducer's final, or ``None`` when no
    reducer is given (stats-only timing run)."""
    from ..engine import StatsReducer

    stats_reducer = StatsReducer()
    reducers = [reducer, stats_reducer] if reducer is not None else [stats_reducer]
    start = time.perf_counter()
    finals = engine.run(jobs, reducers)
    elapsed = time.perf_counter() - start
    if reducer is not None:
        value, stats = finals
    else:
        value, stats = None, finals[0]
    return BatchRun(value=value, stats=stats, wall_seconds=elapsed, workers=engine.workers)


def results_dir() -> Path:
    """Directory for CSV outputs (``REPRO_RESULTS`` or ``./results``)."""
    path = Path(os.environ.get("REPRO_RESULTS", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_csv(name: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> Path:
    """Write ``results/<name>.csv`` and return its path."""
    path = results_dir() / f"{name}.csv"
    with path.open("w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def format_seconds(seconds: float) -> str:
    """Compact human-readable seconds (paper tables use 2-3 significant digits)."""
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Aligned monospace table (right-aligned numbers, left-aligned text)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 14,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Tiny scatter plot for terminal-readable figure reproductions."""
    import math

    if len(xs) != len(ys) or len(xs) == 0:
        raise ValueError("xs and ys must be equal-length and non-empty")
    fx = (lambda v: math.log10(max(v, 1e-300))) if logx else float
    fy = (lambda v: math.log10(max(v, 1e-300))) if logy else float
    px = [fx(x) for x in xs]
    py = [fy(y) for y in ys]
    x_lo, x_hi = min(px), max(px)
    y_lo, y_hi = min(py), max(py)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(px, py):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    top = f"{max(ys):.3g}"
    bottom = f"{min(ys):.3g}"
    lines = [f"{top:>10} |" + "".join(grid[0])]
    lines += [" " * 10 + "|" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{bottom:>10} |" + "".join(grid[-1]))
    lines.append(" " * 11 + "-" * width)
    lines.append(f"{'':>11}{min(xs):<.3g}{'':>{max(width - 16, 1)}}{max(xs):.3g}")
    return "\n".join(lines)
