"""Resident-memory probes: what does a serving process actually map?

The sharded graph plane's claim is about *process* memory — a worker
serving jobs through a :class:`~repro.graph.sharded.ShardedGraphView`
keeps only the touched shard(s) resident, where the historical serving
model materialises the whole CSR per worker.  Peak RSS can only be
measured from inside a process whose lifetime spans exactly the serving
work, so these helpers launch a **fresh interpreter** per probe
(``python -c`` + a pickle handshake over stdin/stdout — deliberately not
``multiprocessing.spawn``, whose child re-imports the parent's
``__main__`` and, under a test runner, inflates every child's baseline
RSS identically, drowning the few-MB graph signal) and report
``ru_maxrss`` plus per-job latencies.

Two probe modes, same jobs, same outcomes:

* ``whole``  — the child receives the full CSR arrays (the
  every-worker-holds-the-graph model) and runs jobs against them.
* ``sharded`` — the child receives only a picklable
  :class:`~repro.graph.sharded.ShardedCSRHandle` and serves through a
  lazily attaching view capped at ``max_resident`` shards, with
  ``halo_bytes`` sizing the view's boundary-row cache (``0`` disables
  it — the pure lazy-attach baseline).

Used by ``benchmarks/bench_sharded.py``; kept in the library so the
child entry point is importable from a bare interpreter.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path
from typing import Sequence

__all__ = ["measure_probe", "serve_and_report"]


def serve_and_report(mode, payload, jobs, max_resident, halo_bytes=None):
    """Serve ``jobs`` in this process; report peak RSS + latencies.

    Meant to run inside a probe child whose whole lifetime is the serving
    work, so ``ru_maxrss`` is attributable to it.  The job list runs
    twice: one untimed warm-up pass (fresh-interpreter cold-start costs —
    code paths, page faults, cache fill — land there), then the timed
    pass the latencies and view counters report.  That makes the numbers
    *steady-state serving* figures for every mode: the whole-graph model
    stops paying first-touch faults, a halo-enabled view serves from a
    warm cache, and the halo-less baseline keeps paying its structural
    attach churn on every pass.  Peak RSS still spans both passes.
    """
    import time

    from ..engine.executor import run_job
    from ..graph.csr import CSRGraph
    from ..graph.sharded import ShardedGraphView

    def peak_rss_bytes() -> int:
        # /proc VmHWM, not getrusage: Linux carries ru_maxrss across
        # fork+exec, so a probe child would report the *launching*
        # process's peak; VmHWM resets on exec and is this child's own.
        try:
            with open("/proc/self/status") as status:
                for line in status:
                    if line.startswith("VmHWM:"):
                        return int(line.split()[1]) * 1024
        except OSError:  # pragma: no cover - non-Linux host
            pass
        import resource  # pragma: no cover - non-Linux fallback

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    if mode == "whole":
        offsets, neighbors = payload
        graph = CSRGraph.__new__(CSRGraph)  # validated in the parent
        graph.offsets = offsets
        graph.neighbors = neighbors
        holder = None
    else:
        holder = ShardedGraphView(
            payload, max_resident=max_resident, halo_bytes=halo_bytes
        )
        graph = holder
    # try/finally, not a trailing close(): a job that raises must still
    # detach the view's resident shard segments before the probe child
    # reports failure (an un-torn-down view pins shard mappings for the
    # rest of the process lifetime).
    try:
        for index, job in enumerate(jobs):
            run_job(graph, job, index=index, include_vector=False)
        if holder is not None:
            holder.attaches = 0
            holder.detaches = 0
            holder.halo_hits = 0
            holder.halo_misses = 0
            holder.halo_evictions = 0
        latencies = []
        checksum = 0
        for index, job in enumerate(jobs):
            start = time.perf_counter()
            outcome = run_job(graph, job, index=index, include_vector=False)
            latencies.append(time.perf_counter() - start)
            checksum += outcome.pushes
        report = {
            "peak_rss_bytes": peak_rss_bytes(),
            "latencies": latencies,
            "pushes_checksum": checksum,
            "resident_shards": holder.resident_shards if holder is not None else None,
            "lazy_attaches": holder.attaches if holder is not None else None,
            "halo_hits": holder.halo_hits if holder is not None else None,
            "halo_misses": holder.halo_misses if holder is not None else None,
            "halo_evictions": holder.halo_evictions if holder is not None else None,
        }
    finally:
        if holder is not None:
            holder.close()
    return report


def _child_main() -> None:  # pragma: no cover - runs in probe children only
    """Entry point for ``python -c``: pickle request in, pickle report out."""
    mode, payload, jobs, max_resident, halo_bytes = pickle.load(sys.stdin.buffer)
    report = serve_and_report(mode, payload, jobs, max_resident, halo_bytes)
    pickle.dump(report, sys.stdout.buffer)
    sys.stdout.buffer.flush()


def measure_probe(
    mode, payload, jobs: Sequence, max_resident=None, halo_bytes=None, timeout=300.0
):
    """Run one probe in a fresh interpreter and return its report dict."""
    package_root = str(Path(__file__).resolve().parents[2])  # .../src
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    request = pickle.dumps((mode, payload, list(jobs), max_resident, halo_bytes))
    completed = subprocess.run(
        [sys.executable, "-c", "from repro.bench.memory import _child_main; _child_main()"],
        input=request,
        stdout=subprocess.PIPE,
        env=env,
        timeout=timeout,
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(f"{mode} probe exited with {completed.returncode}")
    return pickle.loads(completed.stdout)
