"""``vertexSubset`` — Ligra's representation of an active vertex set.

Section 2 ("Ligra Framework"): *Ligra provides a vertexSubset data
structure used for representing a subset of the vertices*.  The defining
property for local algorithms is that a vertexSubset costs O(|subset|)
space and the operators over it cost work proportional to the subset (and
its edges), never to |V|.

Vertices are kept as a sorted, deduplicated int64 array; sorting gives the
bulk operators a deterministic processing order (useful for reproducible
floating-point sums) without changing the set semantics.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["VertexSubset"]


class VertexSubset:
    """An immutable sparse set of vertex ids."""

    __slots__ = ("vertices",)

    def __init__(self, vertices: np.ndarray) -> None:
        array = np.unique(np.asarray(vertices, dtype=np.int64))
        if len(array) > 0 and array[0] < 0:
            raise ValueError("vertex ids must be non-negative")
        self.vertices = array

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "VertexSubset":
        return cls(np.empty(0, dtype=np.int64))

    @classmethod
    def single(cls, vertex: int) -> "VertexSubset":
        """The paper's usual starting frontier: just the seed vertex."""
        return cls(np.asarray([vertex], dtype=np.int64))

    @classmethod
    def of(cls, *vertices: int) -> "VertexSubset":
        return cls(np.asarray(vertices, dtype=np.int64))

    # ------------------------------------------------------------------
    # Set interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vertices)

    def is_empty(self) -> bool:
        return len(self.vertices) == 0

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices.tolist())

    def __contains__(self, vertex: int) -> bool:
        position = np.searchsorted(self.vertices, vertex)
        return bool(position < len(self.vertices) and self.vertices[position] == vertex)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexSubset):
            return NotImplemented
        return np.array_equal(self.vertices, other.vertices)

    def __hash__(self) -> int:  # subsets are immutable value objects
        return hash(self.vertices.tobytes())

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self.vertices[:8].tolist()))
        suffix = ", ..." if len(self.vertices) > 8 else ""
        return f"VertexSubset([{preview}{suffix}], size={len(self)})"

    def union(self, other: "VertexSubset") -> "VertexSubset":
        return VertexSubset(np.concatenate([self.vertices, other.vertices]))

    def where(self, mask: np.ndarray) -> "VertexSubset":
        """Subset of this subset selected by a boolean mask (a filter)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.vertices.shape:
            raise ValueError("mask must have one flag per vertex")
        return VertexSubset(self.vertices[mask])
