"""Ligra-style local graph processing layer: vertexSubset, vertexMap, edgeMap.

The paper implements its algorithms in Ligra [41] precisely because Ligra
"only does work proportional to the number of active vertices (and their
edges) in each iteration".  This subpackage reproduces that contract in
bulk-synchronous form.
"""

from .ops import edge_map, edge_map_gather, expand_by_degree, vertex_map
from .vertex_subset import VertexSubset

__all__ = ["VertexSubset", "vertex_map", "edge_map", "edge_map_gather", "expand_by_degree"]
