"""``vertexMap`` / ``edgeMap`` — Ligra's data-parallel operators.

Section 2: *vertexMap takes a vertexSubset U and a function F and applies F
to all vertices in U.  edgeMap takes a graph, a vertexSubset U and an update
function F and applies F to all edges (u, v) with u in U. ... edgeMap is
implemented by doing work proportional to the number of vertices in its
input vertexSubset and the sum of their outgoing degrees.*

In this bulk-synchronous realisation the user function receives *whole
arrays* rather than single elements: one ``vertex_map`` call applies F to
the full frontier at once and one ``edge_map`` call applies F to every
incident edge at once.  That is the same programming contract — F must be
correct under concurrent application to all elements, which is why the
paper's Fs resolve write conflicts with fetch-and-add (here: the batched
``SparseVector.add``) — expressed at batch granularity.

The optional boolean return of F keeps Ligra's output-frontier semantics:
``edge_map`` returns the vertexSubset of targets for which F returned true.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from ..runtime import log2ceil, record
from .vertex_subset import VertexSubset

__all__ = ["vertex_map", "edge_map", "edge_map_gather", "expand_by_degree"]

VertexFunction = Callable[[np.ndarray], np.ndarray | None]
EdgeFunction = Callable[[np.ndarray, np.ndarray], np.ndarray | None]


def vertex_map(subset: VertexSubset, fn: VertexFunction) -> VertexSubset:
    """Apply ``fn`` to the frontier's vertex array; O(|U|) work.

    ``fn`` may side-effect per-vertex data (the paper's usage) and may
    return a boolean mask selecting an output subset; returning ``None``
    yields the empty subset, mirroring Ligra's F returning false.
    """
    vertices = subset.vertices
    record(work=len(vertices), depth=log2ceil(len(vertices)), category="vertex_map")
    mask = fn(vertices)
    if mask is None:
        return VertexSubset.empty()
    return subset.where(np.asarray(mask, dtype=bool))


def edge_map(graph: CSRGraph, subset: VertexSubset, fn: EdgeFunction) -> VertexSubset:
    """Apply ``fn`` to every edge leaving the frontier; O(vol(U)) work.

    ``fn(sources, targets)`` receives the full gathered edge arrays
    (grouped by source, sources ascending) and may return a boolean
    per-edge mask; the output subset contains the distinct targets of
    selected edges.
    """
    sources, targets = graph.gather_edges(subset.vertices)
    record(work=len(sources), depth=log2ceil(len(sources)), category="edge_map")
    mask = fn(sources, targets)
    if mask is None:
        return VertexSubset.empty()
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != targets.shape:
        raise ValueError("edge function must return one flag per edge")
    return VertexSubset(targets[mask])


def edge_map_gather(graph: CSRGraph, subset: VertexSubset) -> tuple[np.ndarray, np.ndarray]:
    """The raw gathered ``(sources, targets)`` arrays of ``edge_map``.

    For algorithms that combine the edge pass with per-source scalars (all
    the diffusions do: the pushed mass is ``r[s] / d(s)``), gathering once
    and processing the arrays directly avoids re-reading per-source values
    per edge; :func:`expand_by_degree` aligns per-frontier-vertex values
    with the gathered edge order.
    """
    return graph.gather_edges(subset.vertices)


def expand_by_degree(
    graph: CSRGraph, subset: VertexSubset, per_vertex: np.ndarray
) -> np.ndarray:
    """Repeat ``per_vertex[i]`` once per edge of frontier vertex ``i``.

    The result aligns element-for-element with the edge arrays returned by
    :func:`edge_map_gather` for the same subset, because
    :meth:`CSRGraph.gather_edges` groups edges by source in input order.
    """
    per_vertex = np.asarray(per_vertex)
    if per_vertex.shape[0] != len(subset):
        raise ValueError("need one value per frontier vertex")
    return np.repeat(per_vertex, graph.degrees(subset.vertices))
