"""Deterministic heat kernel PageRank (HK-PR) of Kloster & Gleich (§3.4).

The heat kernel PageRank vector is ``h = e^{-t} * sum_k (t^k / k!) P^k s``
with ``P = A D^{-1}``.  Kloster and Gleich approximate the series by its
degree-N Taylor polynomial and solve the resulting linear system with a
queue-driven push procedure ("hk-relax") over residual entries ``r[(v, j)]``
indexed by (vertex, Taylor level).

Coefficients ``psi_k = sum_{m=0}^{N-k} k! / (m+k)! * t^m`` control the push
thresholds; they satisfy ``psi_N = 1`` and the backward recurrence
``psi_k = 1 + t / (k + 1) * psi_{k+1}``, which is how :func:`psi_coefficients`
computes them (O(N) work; the prefix-sums formulation the paper charges
O(N^2) work for is tested against it).

A residual entry is pushed when it reaches the threshold
``thr_j(w) = e^t * eps * d(w) / (2 N psi_j(t))`` (note: the unnormalised
residuals grow like ``t^j / j!``, so the threshold carries the ``e^t``
factor of the final rescaling; the transcription of the threshold in the
paper's Section 3.4 is garbled — this is the rule from Kloster & Gleich's
original algorithm, which the paper states it follows).

Parallelisation (Figure 7): entries with the same level j can be processed
together, in increasing j — level-j pushes only ever update level j+1 — so
the parallel algorithm runs one vertexMap + edgeMap per level and produces
*exactly* the same output vector as the sequential queue (Section 3.4:
"This parallel algorithm applies the same updates as the sequential
algorithm and thus the vector returned is the same").  On the last level
(j + 1 = N) neighbor contributions go directly into ``p``.

Work O(N^2 + N e^t / eps), depth O(N t log(1 / eps)) (Theorem 4).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..ligra import VertexSubset, edge_map, expand_by_degree, vertex_map
from ..prims.sparse import SparseDict, SparseVector
from ..runtime import log2ceil, record
from .result import DiffusionResult

__all__ = [
    "HKPRParams",
    "psi_coefficients",
    "hk_pr_sequential",
    "hk_pr_parallel",
    "hk_pr",
]


@dataclass(frozen=True)
class HKPRParams:
    """Inputs of HK-PR: temperature t, Taylor degree N, tolerance eps.

    The paper's Table 3 setting is ``t=10, N=20, eps=1e-7``; Kloster &
    Gleich set N to at most ``2 t log(1/eps)`` in practice, making the
    O(N^2) coefficient precomputation a lower-order term.
    """

    t: float = 10.0
    taylor_degree: int = 20
    eps: float = 1e-6

    def __post_init__(self) -> None:
        if self.t <= 0.0:
            raise ValueError("t must be positive")
        if self.taylor_degree < 1:
            raise ValueError("taylor_degree must be >= 1")
        if not 0.0 < self.eps < 1.0:
            raise ValueError("eps must be in (0, 1)")


def psi_coefficients(t: float, taylor_degree: int) -> np.ndarray:
    """``psi_k`` for k = 0..N via the backward recurrence (see module doc)."""
    n = taylor_degree
    psi = np.empty(n + 1, dtype=np.float64)
    psi[n] = 1.0
    for k in range(n - 1, -1, -1):
        psi[k] = 1.0 + t / (k + 1.0) * psi[k + 1]
    record(work=float(n * n), depth=log2ceil(n), category="scan")
    return psi


def _seed_array(seeds: int | np.ndarray) -> np.ndarray:
    array = np.unique(np.atleast_1d(np.asarray(seeds, dtype=np.int64)))
    if len(array) == 0:
        raise ValueError("at least one seed vertex is required")
    return array


def _threshold_scale(params: HKPRParams, psi: np.ndarray, level: int) -> float:
    """``e^t * eps / (2 N psi_level)`` — multiply by d(w) for the threshold."""
    return math.exp(params.t) * params.eps / (2.0 * params.taylor_degree * psi[level])


def hk_pr_sequential(
    graph: CSRGraph, seeds: int | np.ndarray, params: HKPRParams
) -> DiffusionResult:
    """Queue-driven sequential hk-relax, exactly as described in Section 3.4."""
    seed_list = _seed_array(seeds)
    n_taylor = params.taylor_degree
    psi = psi_coefficients(params.t, n_taylor)
    p = SparseDict()
    residual: dict[tuple[int, int], float] = {
        (int(s), 0): 1.0 / len(seed_list) for s in seed_list
    }
    queue: deque[tuple[int, int]] = deque(residual.keys())
    pushes = 0
    touched_edges = 0

    while queue:
        vertex, level = queue.popleft()
        value = residual[(vertex, level)]
        degree = graph.degree(vertex)
        p.add(vertex, value)
        pushes += 1
        touched_edges += degree
        if degree == 0:
            continue
        if level + 1 == n_taylor:
            share = value / degree
            for neighbor in graph.neighbors_of(vertex).tolist():
                p.add(neighbor, share)
            continue
        mass = params.t * value / ((level + 1.0) * degree)
        scale = _threshold_scale(params, psi, level + 1)
        for neighbor in graph.neighbors_of(vertex).tolist():
            key = (neighbor, level + 1)
            old = residual.get(key, 0.0)
            threshold = scale * graph.degree(neighbor)
            if old < threshold and old + mass >= threshold:
                queue.append(key)
            residual[key] = old + mass
    record(work=float(touched_edges + 2 * pushes), depth=0.0, category="sequential")
    return DiffusionResult(
        vector=p, iterations=pushes, pushes=pushes, touched_edges=touched_edges
    )


def hk_pr_parallel(
    graph: CSRGraph, seeds: int | np.ndarray, params: HKPRParams
) -> DiffusionResult:
    """Level-synchronous parallel HK-PR (Figure 7).

    The level index j is implicit in the iteration number, so the residual
    needs only the current level's sparse vector ``r`` and the next level's
    ``r'``.
    """
    seed_list = _seed_array(seeds)
    n_taylor = params.taylor_degree
    psi = psi_coefficients(params.t, n_taylor)
    p = SparseVector()
    r = SparseVector.from_pairs(seed_list, 1.0 / len(seed_list))
    frontier = VertexSubset(seed_list)
    iterations = 0
    pushes = 0
    touched_edges = 0
    frontier_sizes: list[int] = []

    level = 0
    while not frontier.is_empty():
        frontier_values = r.get(frontier.vertices)
        frontier_degrees = np.maximum(graph.degrees(frontier.vertices), 1)

        def update_self(vertices: np.ndarray) -> None:
            p.add(vertices, frontier_values)

        vertex_map(frontier, update_self)
        iterations += 1
        pushes += len(frontier)
        touched_edges += int(graph.degrees(frontier.vertices).sum())
        frontier_sizes.append(len(frontier))

        if level + 1 == n_taylor:
            per_edge = expand_by_degree(graph, frontier, frontier_values / frontier_degrees)

            def update_ngh_last(sources: np.ndarray, targets: np.ndarray) -> None:
                p.add(targets, per_edge)

            edge_map(graph, frontier, update_ngh_last)
            break

        r_next = SparseVector(capacity_hint=r.nnz)
        per_edge = expand_by_degree(
            graph,
            frontier,
            params.t * frontier_values / ((level + 1.0) * frontier_degrees),
        )

        def update_ngh(sources: np.ndarray, targets: np.ndarray) -> None:
            r_next.add(targets, per_edge)

        edge_map(graph, frontier, update_ngh)

        candidates = r_next.keys()
        scale = _threshold_scale(params, psi, level + 1)
        above = r_next.get(candidates) >= scale * graph.degrees(candidates)
        record(work=len(candidates), depth=log2ceil(len(candidates)), category="filter")
        r = r_next
        frontier = VertexSubset(candidates[above])
        level += 1

    return DiffusionResult(
        vector=p,
        iterations=iterations,
        pushes=pushes,
        touched_edges=touched_edges,
        extras={"levels": level, "frontier_sizes": frontier_sizes},
    )


def hk_pr(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: HKPRParams | None = None,
    parallel: bool = True,
    kernel: str | None = None,
) -> DiffusionResult:
    """Run deterministic HK-PR with default or supplied parameters.

    ``kernel`` is accepted for API uniformity with the other methods and
    validated (:func:`repro.kernels.resolve_kernel`); the Taylor-push
    loops are dominated by whole-frontier array operations, so HK-PR has
    no compiled twin and both values run the reference code.
    """
    from ..kernels import resolve_kernel

    resolve_kernel(kernel)
    params = params or HKPRParams()
    if parallel:
        return hk_pr_parallel(graph, seeds, params)
    return hk_pr_sequential(graph, seeds, params)
