"""Evolving sets (Andersen & Peres) — the Section 5 extension.

The paper's related-work section describes the evolving set process (ESP):
*"Starting with a single vertex in a set S, each iteration of the algorithm
adds or deletes vertices from S based on whether the probability of
transitioning to a given vertex from the current set is above some randomly
chosen threshold"* — and notes the authors implemented it (observing high
variance between runs) and that it parallelises work-efficiently with
data-parallel operations.  This module supplies that implementation.

One ESP step from set ``S``: draw ``U ~ Uniform(0, 1)`` and set

    ``S' = { y : q(y, S) >= U }``   where
    ``q(y, S) = 1/2 * [y in S] + |N(y) ∩ S| / (2 d(y))``

is the probability that one step of the lazy random walk from ``y`` lands
in ``S``.  Only ``S`` and its boundary can change membership, so each
iteration costs O(vol(S) + vol(∂S)) — the computation stays local.  The
best-conductance set seen over the run is returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..prims.atomics import combine_duplicates
from ..runtime import log2ceil, record
from .quality import cluster_stats

__all__ = ["EvolvingSetParams", "EvolvingSetResult", "evolving_set_process"]


@dataclass(frozen=True)
class EvolvingSetParams:
    """Inputs of the evolving set process.

    ``target_conductance`` stops the walk early once met (the theoretical
    algorithm's stopping rule f(phi, n)); ``volume_cap`` bounds the work
    (ESP sets can grow past any local budget on expanders).

    ``extinction_retries``: the plain ESP is absorbed at the empty set with
    probability up to 1/2 per step while the set is small (a lazy-walk
    member has ``q = 1/2`` with no in-set neighbors).  Andersen & Peres
    analyse the *volume-biased* ESP, which conditions against extinction;
    we approximate it by redrawing the threshold up to this many times when
    the next set would be empty (0 reproduces the plain process).
    """

    max_iterations: int = 100
    target_conductance: float = 0.0
    volume_cap: int | None = None
    extinction_retries: int = 16

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= self.target_conductance <= 1.0:
            raise ValueError("target_conductance must be in [0, 1]")
        if self.extinction_retries < 0:
            raise ValueError("extinction_retries must be >= 0")


@dataclass
class EvolvingSetResult:
    """Best set found plus the full trajectory (size/conductance per step)."""

    cluster: np.ndarray
    conductance: float
    iterations: int
    sizes: list[int] = field(default_factory=list)
    conductances: list[float] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"EvolvingSetResult(|S|={len(self.cluster)}, phi={self.conductance:.4g}, "
            f"iterations={self.iterations})"
        )


def _transition_probabilities(
    graph: CSRGraph, members: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Candidates (S ∪ N(S)) and their lazy-walk probability into S."""
    sources, targets = graph.gather_edges(members)
    # Edges point *out of* S; reversing them gives, for each endpoint y,
    # the number of y's neighbors inside S.
    into_s_vertices, into_s_counts = combine_duplicates(
        targets, np.ones(len(targets), dtype=np.float64)
    )
    candidates = np.union1d(members, into_s_vertices)
    record(work=len(candidates), depth=log2ceil(len(candidates)), category="filter")
    counts = np.zeros(len(candidates), dtype=np.float64)
    counts[np.searchsorted(candidates, into_s_vertices)] = into_s_counts
    degrees = np.maximum(graph.degrees(candidates), 1)
    in_set = np.isin(candidates, members, assume_unique=True)
    q = 0.5 * in_set + counts / (2.0 * degrees)
    return candidates, q


def evolving_set_process(
    graph: CSRGraph,
    seed: int,
    params: EvolvingSetParams | None = None,
    rng: np.random.Generator | int = 0,
) -> EvolvingSetResult:
    """Run the (parallelisable) evolving set process from a seed vertex."""
    params = params or EvolvingSetParams()
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    if graph.degree(int(seed)) == 0:
        raise ValueError("seed vertex must have at least one edge")
    volume_cap = params.volume_cap if params.volume_cap is not None else graph.num_edges

    members = np.asarray([int(seed)], dtype=np.int64)
    best = cluster_stats(graph, members)
    best_members = members
    sizes: list[int] = []
    conductances: list[float] = []
    iterations = 0

    for _ in range(params.max_iterations):
        candidates, q = _transition_probabilities(graph, members)
        members = candidates[q >= rng.random()]
        for _retry in range(params.extinction_retries):
            if len(members) > 0:
                break
            members = candidates[q >= rng.random()]
        iterations += 1
        if len(members) == 0:
            break
        stats = cluster_stats(graph, members)
        sizes.append(stats.size)
        conductances.append(stats.conductance)
        if stats.conductance < best.conductance:
            best = stats
            best_members = members
        if best.conductance <= params.target_conductance:
            break
        if stats.volume > volume_cap:
            break

    return EvolvingSetResult(
        cluster=np.asarray(best_members, dtype=np.int64),
        conductance=best.conductance,
        iterations=iterations,
        sizes=sizes,
        conductances=conductances,
    )
