"""Seed-vertex selection strategies used by the paper's experiments.

Section 4 uses two strategies: "a single arbitrary vertex in the largest
component" (Table 3) and "chosen by sampling 10^4 vertices and picking the
one that gave the lowest-conductance clusters" (Figure 8).  Both are
provided, plus uniform multi-seed sampling for NCP plots.
"""

from __future__ import annotations

import numpy as np

from ..graph.components import largest_component_vertices
from ..graph.csr import CSRGraph
from .pr_nibble import PRNibbleParams, pr_nibble
from .sweep import sweep_cut

__all__ = ["arbitrary_seed", "random_seeds", "best_seed_by_sampling"]


def arbitrary_seed(graph: CSRGraph, rng: np.random.Generator | int = 0) -> int:
    """A random vertex of the largest connected component (Table 3 style)."""
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    component = largest_component_vertices(graph)
    return int(component[rng.integers(len(component))])


def random_seeds(
    graph: CSRGraph,
    count: int,
    rng: np.random.Generator | int = 0,
    min_degree: int = 1,
) -> np.ndarray:
    """``count`` uniform random vertices with degree >= ``min_degree``.

    Used by the NCP driver (the paper runs PR-Nibble "from 10^5 random seed
    vertices").
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    eligible = np.flatnonzero(graph.degrees() >= min_degree)
    if len(eligible) == 0:
        raise ValueError(f"no vertex has degree >= {min_degree}")
    replace = count > len(eligible)
    return np.sort(rng.choice(eligible, size=count, replace=replace)).astype(np.int64)


def best_seed_by_sampling(
    graph: CSRGraph,
    num_candidates: int = 100,
    rng: np.random.Generator | int = 0,
    params: PRNibbleParams | None = None,
    parallel: bool = True,
) -> tuple[int, float]:
    """The Figure-8 strategy: sample seeds, keep the lowest-conductance one.

    Runs a (cheap) PR-Nibble + sweep from each candidate and returns
    ``(best_seed, best_conductance)``.  The paper sampled 10^4 candidates
    on a billion-edge graph; scale ``num_candidates`` to your graph.
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    params = params or PRNibbleParams(alpha=0.05, eps=1e-4)
    candidates = random_seeds(graph, num_candidates, rng=rng)
    best_seed = int(candidates[0])
    best_phi = 1.0 + 1e-9
    for candidate in candidates.tolist():
        diffusion = pr_nibble(graph, candidate, params, parallel=parallel)
        if diffusion.support_size() == 0:
            continue
        sweep = sweep_cut(graph, diffusion.vector, parallel=parallel)
        if sweep.best_conductance < best_phi:
            best_phi = sweep.best_conductance
            best_seed = candidate
    return best_seed, best_phi
