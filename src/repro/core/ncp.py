"""Network community profile (NCP) plots — paper Section 4, Figure 12.

An NCP plot shows, for each cluster size k, the best (lowest) conductance
over all clusters of size k found by the algorithm — "a concept introduced
in [29] ... that quantifies the best cluster as a function of cluster
size".  The paper generates NCPs for billion-edge graphs by running
PR-Nibble from 10^5 random seeds while varying alpha and eps.

Every sweep already scores *every* prefix of its ordering, so each run
contributes up to N (size, conductance) points, not just its best cluster;
the profile is the pointwise minimum over all contributions — the same
harvesting Leskovec et al. use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..graph.csr import CSRGraph
from .seeding import random_seeds

__all__ = ["NCPResult", "ncp_profile", "log_binned"]


@dataclass
class NCPResult:
    """Best conductance per cluster size.

    ``conductance[k-1]`` is the best conductance found over clusters of
    exactly ``k`` vertices (``inf`` where no cluster of that size was
    seen); ``runs`` counts the (seed, parameter) combinations explored.
    """

    max_size: int
    conductance: np.ndarray
    runs: int

    def sizes(self) -> np.ndarray:
        """Cluster sizes with at least one observation."""
        return np.flatnonzero(np.isfinite(self.conductance)) + 1

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sizes, best conductances)`` — the Figure 12 scatter."""
        sizes = self.sizes()
        return sizes, self.conductance[sizes - 1]

    def best_at(self, size: int) -> float:
        if not 1 <= size <= self.max_size:
            raise ValueError("size out of range")
        return float(self.conductance[size - 1])


def log_binned(result: NCPResult, bins_per_decade: int = 8) -> tuple[np.ndarray, np.ndarray]:
    """Logarithmically binned profile (min within each bin) for plotting."""
    sizes, phis = result.series()
    if len(sizes) == 0:
        return sizes.astype(np.float64), phis
    edges_count = int(np.ceil(np.log10(max(sizes.max(), 2)) * bins_per_decade)) + 1
    edges = np.logspace(0, np.log10(sizes.max()), edges_count)
    bin_of = np.digitize(sizes, edges)
    centers = []
    minima = []
    for b in np.unique(bin_of):
        mask = bin_of == b
        centers.append(float(np.exp(np.mean(np.log(sizes[mask])))))
        minima.append(float(phis[mask].min()))
    return np.asarray(centers), np.asarray(minima)


def ncp_profile(
    graph: CSRGraph,
    num_seeds: int = 100,
    alphas: Sequence[float] = (0.1, 0.01),
    eps_values: Sequence[float] = (1e-4, 1e-5),
    max_size: int | None = None,
    parallel: bool = True,
    rng: np.random.Generator | int = 0,
    seeds: Iterable[int] | None = None,
    engine: "Any | str | None" = None,
    workers: int | None = None,
    cache: "Any | bool | str | None" = None,
    start_method: str | None = None,
    schedule: str | None = None,
    kernel: str | None = None,
) -> NCPResult:
    """Generate an NCP by sweeping PR-Nibble over seeds and parameters.

    Mirrors the paper's methodology ("running PR-Nibble from 10^5 random
    seed vertices and by varying alpha and eps") at configurable scale.
    ``max_size`` truncates the profile (Figure 12 plots sizes up to 10^5).

    The (seed, alpha, eps) jobs are independent, so they run through the
    batch engine: ``workers=4`` (or ``engine="process"``) fans them out
    across a process pool (on any platform — non-``fork`` start methods
    attach the graph through shared memory); the default is the
    deterministic serial backend, which reproduces the historical
    one-at-a-time loop exactly.  ``start_method`` and ``schedule``
    (``"cost"`` cost-balanced chunks, the default, or ``"fifo"``) tune
    the pool; mixed-eps grids are exactly the workload cost scheduling
    de-straggles, since PR-Nibble work scales as O(1/(eps*alpha)).
    A prebuilt :class:`repro.engine.BatchEngine` is accepted via
    ``engine`` for callers issuing many profiles against one graph.
    The pointwise-minimum reduction is order- and partition-independent,
    so results are bit-identical at every worker count.

    ``cache`` memoises per-job outcomes (``True``, a cache directory, or a
    :class:`repro.cache.ResultCache`): re-running a profile, or running an
    overlapping parameter grid, replays hits instead of re-diffusing and
    still produces the bit-identical profile.

    ``kernel`` selects the loop implementation (:mod:`repro.kernels`,
    e.g. ``"auto"``) applied to every job; because results are
    bit-identical across kernels the profile — and any cache entries it
    writes or replays — is unchanged, only faster.
    """
    from ..engine import NCPReducer, job_grid, resolve_engine

    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    if seeds is None:
        seed_array = random_seeds(graph, num_seeds, rng=rng)
    else:
        seed_array = np.asarray(list(seeds), dtype=np.int64)
    limit = max_size if max_size is not None else graph.num_vertices
    jobs = job_grid(
        seed_array, "pr-nibble", {"alpha": tuple(alphas), "eps": tuple(eps_values)}
    )
    batch = resolve_engine(
        graph,
        engine,
        workers=workers,
        parallel=parallel,
        include_vectors=False,
        cache=cache,
        start_method=start_method,
        schedule=schedule,
        kernel=kernel,
    )
    return batch.run(jobs, NCPReducer(limit))
