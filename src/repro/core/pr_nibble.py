"""PageRank-Nibble — approximate personalised PageRank push (Section 3.3).

Andersen, Chung and Lang's algorithm maintains a PageRank vector ``p`` and a
residual vector ``r`` (initially unit mass on the seed) and repeatedly
*pushes* from vertices whose residual is large relative to their degree
(``r[v] >= eps * d(v)``), until none remain.

Update rules (a push from ``v``):

* **original** (as in [2]):
    ``p[v] += alpha * r[v]``;
    ``r[w] += (1 - alpha) * r[v] / (2 d(v))`` for each neighbor ``w``;
    ``r[v] = (1 - alpha) * r[v] / 2``.
* **optimized** (the paper's Section 3.3 optimization, 1.4-6.4x faster in
  their Figure 4):
    ``p[v] += (2 alpha / (1 + alpha)) * r[v]``;
    ``r[w] += ((1 - alpha) / (1 + alpha)) * r[v] / d(v)``;
    ``r[v] = 0``.

Both conserve ``|p|_1 + |r|_1`` exactly and approximate the same linear
system; both give the O(1 / (eps * alpha)) work bound.

The **sequential** implementation is the queue-based algorithm of [2]: pop a
vertex, push from it repeatedly until its residual drops below threshold,
enqueueing neighbors as they cross the threshold.

The **parallel** implementation (Figures 5-6) pushes from *every*
above-threshold vertex in one iteration, reading the residuals as they were
at the start of the iteration (the two-vector r/r' discipline).  It may
perform more pushes than the sequential algorithm — the paper's Table 1
measures at most 1.6x more — but Theorem 3 shows the total work is still
O(1 / (eps * alpha)).

The **beta-fraction variant** mentioned at the end of Section 3.3 processes
only the top ``beta``-fraction of eligible vertices by ``r[v]/d(v)`` per
iteration, trading parallelism against total work.

The **incremental variant** :func:`pr_nibble_update` maintains a solution
across graph versions (:mod:`repro.graph.evolving`): both push rules
conserve the linear invariant ``p + M r = M s`` with
``M = c1 (I - c2 W)^{-1}``, ``c1 = 2 alpha / (1 + alpha)``,
``c2 = (1 - alpha) / (1 + alpha)`` and ``W = A D^{-1}`` the walk matrix, so
when an update batch changes ``W`` only in the columns of touched vertices,
the prior ``(p, r)`` is re-validated for the new graph by the local residual
correction ``r' = r + (c2 / c1) (W' - W) p`` — charged only at mutated
endpoints with mass — and then pushed to convergence under the paper's
usual ``|r(v)| / d(v) < eps`` terminal condition.  Deletions can drive
residuals negative, so the incremental push is signed; the result obeys
the same invariant and threshold as a cold run at the same ``eps`` (the
push *order* differs, so vectors agree to within the residual tolerance
rather than bitwise — the differential suite pins the invariant, the
terminal condition and sweep-cut equivalence).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels import csr_arrays, get_kernels, resolve_kernel
from ..ligra import VertexSubset, edge_map, expand_by_degree, vertex_map
from ..prims.sparse import SparseDict, SparseVector
from ..runtime import log2ceil, record
from .result import DiffusionResult

__all__ = [
    "PRNibbleParams",
    "pr_nibble_sequential",
    "pr_nibble_parallel",
    "pr_nibble",
    "pr_nibble_residual",
    "pr_nibble_update",
]


@dataclass(frozen=True)
class PRNibbleParams:
    """Inputs of PR-Nibble.

    The paper's Table 3 setting is ``alpha=0.01, eps=1e-7`` on billion-edge
    graphs.  ``optimized`` selects the paper's faster update rule
    (Figure 6); ``beta`` enables the top-fraction frontier variant
    (``beta=1`` processes every eligible vertex, the Figure 5 behaviour).
    """

    alpha: float = 0.01
    eps: float = 1e-6
    optimized: bool = True
    beta: float = 1.0
    max_iterations: int = 10**9

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if not 0.0 < self.eps < 1.0:
            raise ValueError("eps must be in (0, 1)")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


def _seed_array(seeds: int | np.ndarray) -> np.ndarray:
    array = np.unique(np.atleast_1d(np.asarray(seeds, dtype=np.int64)))
    if len(array) == 0:
        raise ValueError("at least one seed vertex is required")
    return array


def pr_nibble_sequential(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: PRNibbleParams,
    kernel: str | None = None,
) -> DiffusionResult:
    """Queue-based sequential PR-Nibble (either update rule).

    ``kernel`` selects the push-loop implementation (see
    :mod:`repro.kernels`): a compiled kernel runs the identical loop over
    the raw CSR arrays and is bit-identical to the Python default —
    including sparse-vector entry order, push counts, and the recorded
    work profile.  Graphs without whole-CSR arrays (shard views) always
    take the Python path.
    """
    seed_list = _seed_array(seeds)
    alpha = params.alpha
    eps = params.eps
    kernel_name = resolve_kernel(kernel)
    arrays = csr_arrays(graph) if kernel_name != "python" else None
    if arrays is not None:
        p_keys, p_values, r_keys, r_values, pushes, touched_edges = get_kernels(
            kernel_name
        ).ppr_push(arrays[0], arrays[1], seed_list, alpha, eps, params.optimized)
        p = SparseDict(dict(zip(p_keys.tolist(), p_values.tolist())))
        r = SparseDict(dict(zip(r_keys.tolist(), r_values.tolist())))
        record(work=float(touched_edges + 2 * pushes), depth=0.0, category="sequential")
        return DiffusionResult(
            vector=p,
            iterations=pushes,
            pushes=pushes,
            touched_edges=touched_edges,
            extras={"residual_mass": r.l1_norm(), "residual": r},
        )
    p = SparseDict()
    r = SparseDict({int(s): 1.0 / len(seed_list) for s in seed_list})
    queue: deque[int] = deque(int(s) for s in seed_list)
    queued = set(queue)
    pushes = 0
    touched_edges = 0

    while queue:
        vertex = queue.popleft()
        queued.discard(vertex)
        degree = graph.degree(vertex)
        if degree == 0:
            continue
        threshold = eps * degree
        # "We repeatedly push from v until it is below the threshold."
        while r[vertex] >= threshold:
            residual = r[vertex]
            if params.optimized:
                p.add(vertex, (2.0 * alpha / (1.0 + alpha)) * residual)
                share = ((1.0 - alpha) / (1.0 + alpha)) * residual / degree
                r[vertex] = 0.0
            else:
                p.add(vertex, alpha * residual)
                share = (1.0 - alpha) * residual / (2.0 * degree)
                r[vertex] = (1.0 - alpha) * residual / 2.0
            pushes += 1
            touched_edges += degree
            for neighbor in graph.neighbors_of(vertex).tolist():
                r.add(neighbor, share)
                if neighbor not in queued and r[neighbor] >= eps * graph.degree(neighbor):
                    queue.append(neighbor)
                    queued.add(neighbor)
    record(work=float(touched_edges + 2 * pushes), depth=0.0, category="sequential")
    # For sequential PR-Nibble the iteration count equals the push count
    # (each iteration pushes one vertex) — the Table 1 convention.
    return DiffusionResult(
        vector=p,
        iterations=pushes,
        pushes=pushes,
        touched_edges=touched_edges,
        extras={"residual_mass": r.l1_norm(), "residual": r},
    )


def _select_beta_fraction(
    eligible: np.ndarray, scores: np.ndarray, beta: float
) -> np.ndarray:
    """Top ``ceil(beta * |eligible|)`` vertices by score (r[v]/d(v))."""
    keep = int(np.ceil(beta * len(eligible)))
    if keep >= len(eligible):
        return eligible
    record(
        work=len(eligible) * max(log2ceil(len(eligible)), 1.0),
        depth=log2ceil(len(eligible)),
        category="sort",
    )
    order = np.lexsort((eligible, -scores))
    return eligible[order[:keep]]


def pr_nibble_parallel(
    graph: CSRGraph, seeds: int | np.ndarray, params: PRNibbleParams
) -> DiffusionResult:
    """Frontier-parallel PR-Nibble (Figures 5-6), optionally beta-fraction.

    Reads all residuals at the start of the iteration, then applies
    ``UpdateSelf`` (vertexMap) before ``UpdateNgh`` (edgeMap), matching the
    r / r' two-vector discipline of the pseudocode: pushes use only
    residuals from previous iterations.
    """
    seed_list = _seed_array(seeds)
    alpha = params.alpha
    eps = params.eps
    p = SparseVector()
    r = SparseVector.from_pairs(seed_list, 1.0 / len(seed_list))
    # Degree-0 vertices can never push: the sequential reference pops and
    # skips them, leaving their residual in place.  They must not enter
    # the frontier here either — ``eps * degree`` is 0 for them, so once
    # admitted they stay "eligible" forever (p would also gain mass the
    # reference never grants).
    frontier = VertexSubset(seed_list[graph.degrees(seed_list) > 0])
    iterations = 0
    pushes = 0
    touched_edges = 0
    frontier_sizes: list[int] = []

    while not frontier.is_empty() and iterations < params.max_iterations:
        frontier_values = r.get(frontier.vertices)
        frontier_degrees = np.maximum(graph.degrees(frontier.vertices), 1)

        if params.optimized:
            self_gain = (2.0 * alpha / (1.0 + alpha)) * frontier_values
            new_residual = np.zeros(len(frontier))
            per_vertex_share = (
                ((1.0 - alpha) / (1.0 + alpha)) * frontier_values / frontier_degrees
            )
        else:
            self_gain = alpha * frontier_values
            new_residual = (1.0 - alpha) * frontier_values / 2.0
            per_vertex_share = (1.0 - alpha) * frontier_values / (2.0 * frontier_degrees)

        def update_self(vertices: np.ndarray) -> None:
            p.add(vertices, self_gain)
            r.set(vertices, new_residual)

        vertex_map(frontier, update_self)

        per_edge_share = expand_by_degree(graph, frontier, per_vertex_share)
        pushed_targets: list[np.ndarray] = []

        def update_ngh(sources: np.ndarray, targets: np.ndarray) -> None:
            r.add(targets, per_edge_share)
            pushed_targets.append(targets)

        edge_map(graph, frontier, update_ngh)

        iterations += 1
        pushes += len(frontier)
        touched_edges += int(graph.degrees(frontier.vertices).sum())
        frontier_sizes.append(len(frontier))

        # Only the old frontier and the pushed-to vertices can now be above
        # threshold (everything else is unchanged) — the local filter.
        # edge_map currently delivers all edges in one callback, but the
        # contract allows several; fold every chunk into the candidates.
        if pushed_targets:
            targets = (
                pushed_targets[0]
                if len(pushed_targets) == 1
                else np.concatenate(pushed_targets)
            )
        else:
            targets = np.empty(0, dtype=np.int64)
        candidates = np.unique(np.concatenate([frontier.vertices, targets]))
        candidate_degrees = graph.degrees(candidates)
        residuals = r.get(candidates)
        # Degree-0 candidates are excluded for the same reason as above:
        # an ``eps * 0`` threshold would hold them eligible forever.
        above = (candidate_degrees > 0) & (residuals >= eps * candidate_degrees)
        record(work=len(candidates), depth=log2ceil(len(candidates)), category="filter")
        eligible = candidates[above]
        if params.beta < 1.0 and len(eligible) > 0:
            scores = residuals[above] / np.maximum(candidate_degrees[above], 1)
            eligible = _select_beta_fraction(eligible, scores, params.beta)
        frontier = VertexSubset(eligible)

    return DiffusionResult(
        vector=p,
        iterations=iterations,
        pushes=pushes,
        touched_edges=touched_edges,
        extras={"residual_mass": r.l1_norm(), "residual": r, "frontier_sizes": frontier_sizes},
    )


def pr_nibble(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: PRNibbleParams | None = None,
    parallel: bool = True,
    kernel: str | None = None,
) -> DiffusionResult:
    """Run PR-Nibble with default or supplied parameters.

    ``kernel`` selects the push-loop implementation for the sequential
    path (:mod:`repro.kernels`); the bulk-synchronous parallel path is
    already array-vectorised and ignores it.  An explicitly requested
    but unavailable kernel raises either way — better loud than silently
    different from what was asked for.
    """
    params = params or PRNibbleParams()
    if parallel:
        resolve_kernel(kernel)  # validate even though the BSP path ignores it
        return pr_nibble_parallel(graph, seeds, params)
    return pr_nibble_sequential(graph, seeds, params, kernel=kernel)


def _sparse_copy(vector: "SparseDict | SparseVector | dict") -> SparseDict:
    """A mutable :class:`SparseDict` copy of any supported vector type."""
    from .result import vector_items

    keys, values = vector_items(vector)
    return SparseDict(dict(zip(keys.tolist(), values.tolist())))


def pr_nibble_residual(
    graph: CSRGraph,
    vector: "SparseDict | SparseVector | dict",
    seeds: int | np.ndarray,
    alpha: float,
) -> SparseDict:
    """The residual implied by ``vector`` on ``graph`` under the push invariant.

    Every PR-Nibble state satisfies ``p + M r = M s`` with
    ``M = c1 (I - c2 W)^{-1}``, which pins the residual as a function of the
    pagerank vector: ``r = s - p / c1 + (c2 / c1) W p``.  Cost
    O(vol(supp p)).  The differential tests use this to check that the
    incremental path lands on the *same* invariant a cold run maintains.
    """
    seed_list = _seed_array(seeds)
    c1 = 2.0 * alpha / (1.0 + alpha)
    c2 = (1.0 - alpha) / (1.0 + alpha)
    residual = SparseDict({int(s): 1.0 / len(seed_list) for s in seed_list})
    for vertex, mass in _sparse_copy(vector).items():
        if mass == 0.0:
            continue
        residual.add(vertex, -mass / c1)
        degree = graph.degree(vertex)
        if degree == 0:
            continue
        share = (c2 / c1) * mass / degree
        for neighbor in graph.neighbors_of(vertex).tolist():
            residual.add(neighbor, share)
    return residual


def pr_nibble_update(
    version,
    prior: DiffusionResult,
    seeds: int | np.ndarray,
    params: PRNibbleParams | None = None,
    since=None,
    kernel: str | None = None,
) -> DiffusionResult:
    """Incrementally maintain a PR-Nibble solution across graph versions.

    ``version`` is the :class:`~repro.graph.evolving.GraphVersion` to solve
    on; ``prior`` is a solution (pagerank vector plus the residual in
    ``extras["residual"]``) computed with the *same seeds and params* on
    ``since`` (default: ``version.parent``), which must be an ancestor of
    ``version``.  Instead of recomputing from scratch, the prior residual
    is corrected at the mutated endpoints — only touched vertices carrying
    pagerank mass contribute, ``r' = r + (c2/c1)(W' - W) p`` — and pushing
    resumes from there under the same ``|r(v)| >= eps * d(v)`` eligibility.
    Deletions make residuals signed, so eligibility and the terminal
    condition use ``|r|``; both update rules (``optimized`` and original)
    share the invariant, and the returned state satisfies exactly what a
    cold :func:`pr_nibble_sequential` run at the same ``eps`` guarantees.

    ``kernel`` is validated for interface parity; the correction loop is
    Python (its work is proportional to the delta, not the graph).
    """
    params = params or PRNibbleParams()
    seed_list = _seed_array(seeds)
    resolve_kernel(kernel)  # validate even though the correction path is Python
    ancestor = version.parent if since is None else since
    if ancestor is None:
        raise ValueError("version has no parent; run a cold pr_nibble instead")
    touched = version.touched_since(ancestor)
    graph = version.graph
    old_graph = ancestor.graph
    alpha = params.alpha
    eps = params.eps
    scale = (1.0 - alpha) / (2.0 * alpha)  # c2 / c1
    residual_prior = prior.extras.get("residual")
    if residual_prior is None:
        raise ValueError(
            "prior result carries no residual; incremental maintenance needs "
            "the (p, r) pair a pr_nibble run returns"
        )

    # The common serving case — an update far from this solution's
    # support — must cost O(|delta|) numpy work, not Python scans and
    # vector copies, so the touched-with-mass set is intersected up front.
    from .result import vector_items

    p_keys, _ = vector_items(prior.vector)
    # ``touched`` is unique+sorted per version and sparse-vector keys are
    # unique by construction, so the dedup passes inside intersect1d are
    # skippable — they dominate the fast path's constant otherwise.
    hot = np.intersect1d(touched, p_keys, assume_unique=True)
    if hot.size == 0:
        # No touched vertex carries pagerank mass, so the correction is
        # identically zero; only *thresholds* can have moved (a touched
        # vertex's degree changed).  If no residual entry at a touched
        # vertex became push-eligible, the prior state already is the
        # solution on the new version — return it without copying.
        r_keys, r_values = vector_items(residual_prior)
        order = np.argsort(r_keys)
        r_keys, r_values = r_keys[order], r_values[order]
        maybe = np.intersect1d(touched, r_keys, assume_unique=True)
        degrees = graph.degrees(maybe)
        values = r_values[np.searchsorted(r_keys, maybe)]
        if not ((degrees > 0) & (np.abs(values) >= eps * degrees)).any():
            record(work=0.0, depth=0.0, category="sequential")
            return DiffusionResult(
                vector=prior.vector,
                iterations=0,
                pushes=0,
                touched_edges=0,
                extras={
                    "residual_mass": float(np.abs(r_values).sum()),
                    "residual": residual_prior,
                    "corrected_endpoints": 0,
                    "incremental": True,
                },
            )

    p = _sparse_copy(prior.vector)
    r = _sparse_copy(residual_prior)

    # Residual correction: only the touched columns of the walk matrix
    # changed, so charge (c2/c1) * p[u] * (column'_u - column_u) for each
    # touched u with mass.  Candidates collect every vertex whose residual
    # or threshold may have moved.
    corrected = 0
    candidates = set(int(u) for u in touched.tolist()) if hot.size else set()
    for u in hot.tolist():
        u = int(u)
        mass = p[u]
        if mass == 0.0:
            continue
        corrected += 1
        old_degree = old_graph.degree(u)
        if old_degree > 0:
            share = scale * mass / old_degree
            for w in old_graph.neighbors_of(u).tolist():
                r.add(w, -share)
                candidates.add(w)
        new_degree = graph.degree(u)
        if new_degree > 0:
            share = scale * mass / new_degree
            for w in graph.neighbors_of(u).tolist():
                r.add(w, share)
                candidates.add(w)

    # Only vertices with a nonzero residual entry can be push-eligible
    # (the threshold ``eps * degree`` is positive wherever pushes are
    # defined), so candidates are filtered against the residual's support
    # before any degree lookups happen.
    queue: deque[int] = deque()
    queued: set[int] = set()
    if corrected:
        eligible = sorted(v for v in candidates if v in r)
    else:
        r_keys, _ = vector_items(r)
        eligible = [int(v) for v in np.intersect1d(touched, r_keys).tolist()]
    for vertex in eligible:
        degree = graph.degree(vertex)
        if degree > 0 and abs(r[vertex]) >= eps * degree:
            queue.append(vertex)
            queued.add(vertex)
    pushes = 0
    touched_edges = 0
    while queue:
        vertex = queue.popleft()
        queued.discard(vertex)
        degree = graph.degree(vertex)
        if degree == 0:
            continue
        threshold = eps * degree
        # Signed pushes: the update rules are linear, so pushing a negative
        # residual retracts mass exactly as pushing a positive one adds it.
        while abs(r[vertex]) >= threshold:
            residual = r[vertex]
            if params.optimized:
                p.add(vertex, (2.0 * alpha / (1.0 + alpha)) * residual)
                share = ((1.0 - alpha) / (1.0 + alpha)) * residual / degree
                r[vertex] = 0.0
            else:
                p.add(vertex, alpha * residual)
                share = (1.0 - alpha) * residual / (2.0 * degree)
                r[vertex] = (1.0 - alpha) * residual / 2.0
            pushes += 1
            touched_edges += degree
            for neighbor in graph.neighbors_of(vertex).tolist():
                r.add(neighbor, share)
                if neighbor not in queued and abs(r[neighbor]) >= eps * graph.degree(
                    neighbor
                ):
                    queue.append(neighbor)
                    queued.add(neighbor)
    record(work=float(touched_edges + 2 * pushes), depth=0.0, category="sequential")
    return DiffusionResult(
        vector=p,
        iterations=pushes,
        pushes=pushes,
        touched_edges=touched_edges,
        extras={
            "residual_mass": r.l1_norm(),
            "residual": r,
            "corrected_endpoints": corrected,
            "incremental": True,
        },
    )
