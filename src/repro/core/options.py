"""The unified request/engine option surface — one knob dialect, one validator.

Before this module the same knob surface was re-spelled three times: the
Python API took loose kwargs (``local_cluster(graph, 5, eps=1e-5)``), the
CLI took flags (``--param eps=1e-5 --workers 4``), and ``repro serve``
grew an ad-hoc JSON dialect on stdin.  Each spelling validated (or
silently ignored) knobs its own way.  This module canonicalises both
halves of the surface into frozen records with **one validation path**:

* :class:`ClusterRequest` — *what to compute*: seeds, method, method
  parameters, rng, priority class, kernel, and a client correlation id.
  It is the typed twin of the versioned wire schema (``{"v": 1, ...}``)
  spoken by the network transport (:mod:`repro.serve.net`) and the stdin
  loop (``repro serve``): :meth:`ClusterRequest.to_wire` serializes it
  verbatim, :meth:`ClusterRequest.from_wire` parses and type-checks it,
  and :meth:`ClusterRequest.validate` applies the full semantic checks —
  every failure a :class:`RequestError` naming the offending field.
* :class:`EngineOptions` — *how to execute*: backend, workers,
  start-method, schedule, kernel, cache, shard layout.  Accepted as
  ``options=`` by :class:`repro.engine.BatchEngine`,
  :func:`repro.engine.resolve_engine`,
  :class:`repro.serve.DiffusionService` and
  :func:`repro.core.cluster_many`; combining it with the historical
  loose kwargs raises (the PR-4 no-silently-ignored-knob rule), and the
  loose kwargs themselves keep working as thin shims over this record.

:func:`canonical_params` — defaults filled from the method's parameter
dataclass, numerics normalised, sorted — is shared with the result cache
(:mod:`repro.cache.keys`), so the wire schema, the validator and the
cache key all agree on what "the same query" means.

>>> request = ClusterRequest.make(5, method="pr-nibble", params={"eps": 1e-5})
>>> request.to_wire() == {"v": 1, "seeds": [5], "method": "pr-nibble",
...                       "params": {"eps": 1e-5}, "rng": 0,
...                       "priority": "interactive"}
True
>>> ClusterRequest.from_wire(request.to_wire()) == request
True
>>> try:
...     validate_params("pr-nibble", {"epsilon": 1e-5})
... except RequestError as error:
...     (error.field, "choose from" in str(error))
('params.epsilon', True)
"""

from __future__ import annotations

import numbers
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "PRIORITIES",
    "WIRE_VERSION",
    "RequestError",
    "ClusterRequest",
    "EngineOptions",
    "canonical_params",
    "validate_params",
]

#: recognised submission priority classes, highest first (the serving
#: plane drains every queued interactive job ahead of any bulk job).
PRIORITIES = ("interactive", "bulk")

#: version stamped on (and required of) wire payloads — see
#: :meth:`ClusterRequest.to_wire` / :meth:`ClusterRequest.from_wire`.
WIRE_VERSION = 1

#: engine backends constructible by name (instances pass around the
#: options layer entirely — see :class:`repro.engine.BatchEngine`).
BACKENDS = ("serial", "process", "sharded")


class RequestError(ValueError):
    """A request (or options record) failed validation.

    Carries the dotted path of the offending field (``"seeds"``,
    ``"params.alpha"``; ``None`` when the payload as a whole is
    malformed) and an HTTP-ish status ``code`` the transports map onto
    replies: 400 for invalid requests, 429 for backpressure rejections,
    503 while draining.  ``str(error)`` is the human message alone.
    """

    def __init__(self, field: str | None, message: str, code: int = 400) -> None:
        super().__init__(message)
        self.field = field
        self.code = code

    def to_wire(self) -> dict[str, Any]:
        """The structured error object carried in wire replies."""
        payload: dict[str, Any] = {"message": str(self), "code": self.code}
        if self.field is not None:
            payload["field"] = self.field
        return payload


def _canonical_value(value: Any) -> Any:
    """Collapse numeric types so equal numbers compare and hash equal."""
    if isinstance(value, bool):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    return value


def _algorithms() -> dict[str, Any]:
    # Imported lazily: repro.core.api is the heavyweight algorithm table
    # and importing it at module load would cycle through this module.
    from .api import ALGORITHMS

    return ALGORITHMS


def validate_params(method: str, params: Mapping[str, Any]) -> Any:
    """Validate ``params`` for ``method``; return the params dataclass.

    The single semantic checkpoint for method parameters — the engine,
    the serving plane and the wire codec all funnel through it.  Every
    failure is a :class:`RequestError` whose ``field`` is the canonical
    parameter path (``"params.alpha"``), so error replies name the knob
    the client actually got wrong instead of echoing a raw ``TypeError``.
    """
    algorithms = _algorithms()
    if method not in algorithms:
        raise RequestError(
            "method", f"unknown method {method!r}; choose from {sorted(algorithms)}"
        )
    params_cls = algorithms[method][0]
    valid = [item.name for item in fields(params_cls)]
    for name in params:
        if name not in valid:
            raise RequestError(
                f"params.{name}",
                f"invalid {method} parameter {name!r}: unknown parameter; "
                f"choose from {', '.join(valid)}",
            )
    # Each parameter dataclass validates its fields independently in
    # __post_init__, so instantiating one override at a time attributes
    # a bad value to the exact parameter that carried it.
    for name, value in params.items():
        try:
            params_cls(**{name: value})
        except (TypeError, ValueError) as error:
            raise RequestError(
                f"params.{name}", f"invalid {method} parameter {name!r}: {error}"
            ) from None
    try:
        return params_cls(**params)
    except (TypeError, ValueError) as error:  # pragma: no cover - cross-field
        raise RequestError("params", f"invalid {method} parameters: {error}") from None


def canonical_params(method: str, params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Defaults-filled, numerically normalised, sorted parameter tuple.

    Shared between the wire/request validator and the result cache's key
    canonicaliser (:mod:`repro.cache.keys`): two requests canonicalising
    equal must produce bit-identical outcomes, and may share one cache
    entry.
    """
    filled = asdict(validate_params(method, dict(params)))
    return tuple(sorted((name, _canonical_value(value)) for name, value in filled.items()))


def _check_graph_version(version: Any) -> None:
    """Structural check shared by the request and options validators."""
    if version is None:
        return
    if isinstance(version, bool) or not isinstance(version, numbers.Integral):
        raise RequestError(
            "graph_version",
            f"graph_version must be a non-negative integer, got {version!r}",
        )
    if version < 0:
        raise RequestError(
            "graph_version",
            f"graph_version must be a non-negative integer, got {version!r}",
        )


def _check_seeds(seeds: Any) -> tuple[int, ...]:
    if isinstance(seeds, (bool, str)):
        raise RequestError("seeds", "seeds must be a vertex id or a list of vertex ids")
    if isinstance(seeds, numbers.Integral):
        seeds = [seeds]
    try:
        items = list(seeds)
    except TypeError:
        raise RequestError(
            "seeds", "seeds must be a vertex id or a list of vertex ids"
        ) from None
    if not items:
        raise RequestError("seeds", "at least one seed vertex is required")
    normalised = []
    for item in items:
        if isinstance(item, bool) or not isinstance(item, numbers.Integral):
            raise RequestError("seeds", f"seed {item!r} is not a vertex id")
        normalised.append(int(item))
    return tuple(normalised)


@dataclass(frozen=True)
class ClusterRequest:
    """One local-clustering query, canonicalised — the wire schema's twin.

    Attributes
    ----------
    seeds:
        The seed vertex ids.
    method:
        A key of :data:`repro.core.ALGORITHMS`.
    params:
        Overrides for the method's parameter dataclass.
    rng:
        Integer randomness seed (``rand-hk-pr``; ignored by the
        deterministic methods).
    priority:
        Serving-plane priority class (one of :data:`PRIORITIES`).
    kernel:
        Loop implementation (:mod:`repro.kernels`), or ``None`` for the
        engine default.  Never changes results, only speed.
    graph_version:
        Which version of an evolving graph (:mod:`repro.graph.evolving`)
        to solve on; ``None`` means the current version.  Services built
        over a frozen graph reject any explicit value.
    include_cluster:
        Ask the transport to include the cluster's member vertices in
        the reply (off by default: replies stay small).
    id:
        Free-form client correlation id, echoed verbatim in replies.

    ``params`` is stored as a plain dict (like
    :class:`~repro.engine.jobs.DiffusionJob`): the record is frozen by
    convention, cheap to build, and hashable via :meth:`canonical`.
    """

    seeds: tuple[int, ...]
    method: str = "pr-nibble"
    params: dict[str, Any] = field(default_factory=dict)
    rng: int = 0
    priority: str = "interactive"
    kernel: str | None = None
    graph_version: int | None = None
    include_cluster: bool = False
    id: Any = None

    @staticmethod
    def make(
        seeds: Any,
        method: str = "pr-nibble",
        params: Mapping[str, Any] | None = None,
        rng: int = 0,
        priority: str = "interactive",
        kernel: str | None = None,
        graph_version: int | None = None,
        include_cluster: bool = False,
        id: Any = None,
    ) -> "ClusterRequest":
        """Normalise loose seed specs (scalar, list, array) into a request."""
        return ClusterRequest(
            seeds=_check_seeds(seeds),
            method=method,
            params=dict(params or {}),
            rng=int(rng),
            priority=priority,
            kernel=kernel,
            graph_version=graph_version,
            include_cluster=include_cluster,
            id=id,
        )

    @staticmethod
    def from_job(job: Any, priority: str = "interactive") -> "ClusterRequest":
        """Lift a :class:`~repro.engine.jobs.DiffusionJob` into a request."""
        return ClusterRequest(
            seeds=tuple(job.seeds),
            method=job.method,
            params=dict(job.params),
            rng=int(job.rng),
            priority=priority,
            kernel=job.kernel,
        )

    def job(self) -> Any:
        """The :class:`~repro.engine.jobs.DiffusionJob` this request asks for."""
        from ..engine.jobs import DiffusionJob

        return DiffusionJob.make(
            list(self.seeds),
            method=self.method,
            params=self.params,
            rng=self.rng,
            kernel=self.kernel,
        )

    def canonical_params(self) -> tuple[tuple[str, Any], ...]:
        """Defaults-filled canonical parameters (the cache-key view)."""
        return canonical_params(self.method, self.params)

    def validate(self, num_vertices: int | None = None) -> "ClusterRequest":
        """Run the full semantic checks; returns ``self`` for chaining.

        Raises :class:`RequestError` naming the offending field: unknown
        method or priority, invalid parameters, unknown/unavailable
        kernel, out-of-range seeds (when ``num_vertices`` is given).
        """
        object.__setattr__(self, "seeds", _check_seeds(self.seeds))
        validate_params(self.method, self.params)
        if self.priority not in PRIORITIES:
            raise RequestError(
                "priority",
                f"unknown priority {self.priority!r}; choose from {PRIORITIES}",
            )
        if not isinstance(self.rng, numbers.Integral) or isinstance(self.rng, bool):
            raise RequestError("rng", f"rng must be an integer seed, got {self.rng!r}")
        if self.kernel is not None:
            from ..kernels import KernelUnavailableError, resolve_kernel

            try:
                resolve_kernel(self.kernel)
            except (ValueError, KernelUnavailableError) as error:
                raise RequestError("kernel", str(error)) from None
        _check_graph_version(self.graph_version)
        if num_vertices is not None:
            for seed in self.seeds:
                if not 0 <= seed < num_vertices:
                    raise RequestError(
                        "seeds",
                        f"seed {seed} out of range for a {num_vertices}-vertex graph",
                    )
        return self

    # ------------------------------------------------------------------
    # The versioned wire schema
    # ------------------------------------------------------------------
    def to_wire(self) -> dict[str, Any]:
        """Serialize verbatim as wire schema v1 (JSON-compatible dict)."""
        payload: dict[str, Any] = {
            "v": WIRE_VERSION,
            "seeds": list(self.seeds),
            "method": self.method,
            "params": dict(self.params),
            "rng": self.rng,
            "priority": self.priority,
        }
        if self.kernel is not None:
            payload["kernel"] = self.kernel
        if self.graph_version is not None:
            payload["graph_version"] = self.graph_version
        if self.include_cluster:
            payload["include_cluster"] = True
        if self.id is not None:
            payload["id"] = self.id
        return payload

    @classmethod
    def from_wire(
        cls, payload: Any, default_method: str = "pr-nibble"
    ) -> "ClusterRequest":
        """Parse one wire request; type errors name the offending field.

        An explicit ``"v"`` must equal :data:`WIRE_VERSION` and makes the
        parse strict: unknown fields are rejected (so schema typos fail
        loudly instead of being silently ignored).  Payloads without
        ``"v"`` are accepted as the legacy loose dialect of the original
        stdin loop — known fields are honoured, unknown ones ignored.
        Semantic validation is :meth:`validate`'s job.
        """
        if not isinstance(payload, Mapping):
            raise RequestError(None, "request must be a JSON object")
        version = payload.get("v")
        if version is not None and version != WIRE_VERSION:
            raise RequestError(
                "v", f"unsupported wire version {version!r}; this server speaks v1"
            )
        # "graph_version" is the lenient v1 extension for evolving graphs:
        # optional on the wire (absent means "current version"), so v1
        # clients that never send it keep working unchanged.
        known = ("v", "id", "seeds", "method", "params", "rng", "priority",
                 "kernel", "graph_version", "include_cluster")
        if version is not None:
            for name in payload:
                if name not in known:
                    raise RequestError(
                        str(name),
                        f"unknown field {name!r} under wire schema v1; "
                        f"expected a subset of {known}",
                    )
        if "seeds" not in payload:
            raise RequestError("seeds", "request is missing the 'seeds' field")
        method = payload.get("method", default_method)
        if not isinstance(method, str):
            raise RequestError("method", f"method must be a string, got {method!r}")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise RequestError("params", "params must be an object of overrides")
        for name in params:
            if not isinstance(name, str):
                raise RequestError(
                    "params", f"parameter names must be strings, got {name!r}"
                )
        rng = payload.get("rng", 0)
        if isinstance(rng, bool) or not isinstance(rng, numbers.Integral):
            raise RequestError("rng", f"rng must be an integer seed, got {rng!r}")
        priority = payload.get("priority", "interactive")
        if not isinstance(priority, str):
            raise RequestError(
                "priority", f"priority must be a string, got {priority!r}"
            )
        kernel = payload.get("kernel")
        if kernel is not None and not isinstance(kernel, str):
            raise RequestError("kernel", f"kernel must be a string, got {kernel!r}")
        graph_version = payload.get("graph_version")
        _check_graph_version(graph_version)
        include_cluster = payload.get("include_cluster", False)
        if not isinstance(include_cluster, bool):
            raise RequestError(
                "include_cluster",
                f"include_cluster must be a boolean, got {include_cluster!r}",
            )
        return cls(
            seeds=_check_seeds(payload["seeds"]),
            method=method,
            params=dict(params),
            rng=int(rng),
            priority=priority,
            kernel=kernel,
            graph_version=None if graph_version is None else int(graph_version),
            include_cluster=include_cluster,
            id=payload.get("id"),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterRequest):
            return NotImplemented
        return (
            self.seeds == other.seeds
            and self.method == other.method
            and self.params == other.params
            and self.rng == other.rng
            and self.priority == other.priority
            and self.kernel == other.kernel
            and self.graph_version == other.graph_version
            and self.include_cluster == other.include_cluster
            and self.id == other.id
        )

    def canonical(self) -> tuple:
        """A hashable canonical identity (seeds sorted, params filled).

        ``graph_version`` is deliberately excluded (like ``kernel``): it
        is resolved to a concrete graph — whose content fingerprint is the
        cache's graph identity — before any result is keyed.
        """
        return (
            tuple(sorted(set(self.seeds))),
            self.method,
            self.canonical_params(),
            self.rng,
        )


# Loose-kwarg names accepted by the engine entry points, in their
# historical order — shared by the conflict messages below.
_ENGINE_KNOBS = (
    "backend",
    "workers",
    "parallel",
    "include_vectors",
    "cache",
    "start_method",
    "schedule",
    "shards",
    "max_resident_shards",
    "spill_shards",
    "halo_bytes",
    "kernel",
    "graph_version",
)


@dataclass(frozen=True)
class EngineOptions:
    """The full execution-knob surface as one frozen, validated record.

    Every field keeps the meaning documented on
    :class:`repro.engine.BatchEngine`; ``None`` means "engine default".
    Pass an instance as ``options=`` to ``BatchEngine``,
    ``resolve_engine``, ``DiffusionService``, ``cluster_many`` or build
    one from CLI flags — combining it with the loose kwargs it replaces
    raises ``ValueError`` instead of silently preferring one spelling.

    ``backend`` is a backend *name* (one of ``"serial"``, ``"process"``,
    ``"sharded"``); prebuilt backend instances stay on the historical
    ``BatchEngine(backend=instance)`` path, outside this record.
    """

    backend: str | None = None
    workers: int | None = None
    parallel: bool = True
    include_vectors: bool = True
    cache: Any = None
    start_method: str | None = None
    schedule: str | None = None
    shards: int | None = None
    max_resident_shards: int | None = None
    spill_shards: int | None = None
    halo_bytes: int | None = None
    kernel: str | None = None
    graph_version: int | None = None

    def resolved_backend(self) -> str:
        """The backend name after the historical inference: ``"sharded"``
        when ``shards`` is set, ``"process"`` when ``workers`` asks for
        more than one worker, ``"serial"`` otherwise."""
        if self.backend is not None:
            return self.backend
        if self.shards is not None:
            return "sharded"
        return "process" if self.workers is not None and self.workers > 1 else "serial"

    def _set_knobs(self, names: Sequence[str]) -> list[str]:
        return [
            name for name in names
            if getattr(self, name) is not None and getattr(self, name) is not False
        ]

    def validate(self) -> "EngineOptions":
        """The one structural validation path for the knob surface.

        Raises ``ValueError`` (with the messages the engine always used)
        on unknown backends, shard knobs without the sharded backend,
        pool knobs with the in-process sharded backend, unknown schedule
        or start-method names, and unknown/unavailable kernels.
        """
        backend = self.resolved_backend()
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'serial', 'process', "
                "'sharded' or a backend instance"
            )
        shard_knobs = self._set_knobs(
            ("shards", "max_resident_shards", "spill_shards", "halo_bytes")
        )
        if backend in ("serial", "process") and shard_knobs:
            raise ValueError(
                f"{', '.join(shard_knobs)} only apply to the sharded backend "
                f"(pass shards= or backend='sharded'), not backend={backend!r}"
            )
        if backend == "sharded":
            conflicts = self._set_knobs(("workers", "start_method", "schedule"))
            if conflicts:
                raise ValueError(
                    f"the sharded backend is in-process; {', '.join(conflicts)} "
                    "would configure a process pool and be silently ignored"
                )
        if self.schedule is not None:
            from ..engine.scheduler import SCHEDULES

            if self.schedule not in SCHEDULES:
                raise ValueError(
                    f"unknown schedule {self.schedule!r}; choose from {SCHEDULES}"
                )
        if self.kernel is not None:
            from ..kernels import resolve_kernel

            resolve_kernel(self.kernel)  # unknown -> ValueError, unavailable raises
        _check_graph_version(self.graph_version)
        return self

    def reject_loose(self, context: str, **loose: Any) -> None:
        """Enforce the no-silently-ignored-knob rule against ``options=``.

        ``loose`` holds the caller's historical kwargs; any that is set
        (not ``None`` — the universal "engine default" sentinel) alongside
        an options record raises, naming the offenders — mirroring how
        prebuilt engines reject stray pool knobs.
        """
        set_knobs = [name for name, value in loose.items() if value is not None]
        if set_knobs:
            raise ValueError(
                f"options= already carries the {context} configuration; "
                f"{', '.join(set_knobs)} would be silently ignored — set "
                "them on EngineOptions instead"
            )

    def replace(self, **changes: Any) -> "EngineOptions":
        """A copy with ``changes`` applied (frozen-dataclass convenience)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Compact ``knob=value`` rendering of the non-default fields."""
        parts = [f"backend={self.resolved_backend()}"]
        for item in fields(self):
            value = getattr(self, item.name)
            if item.name != "backend" and value != item.default:
                parts.append(f"{item.name}={value!r}")
        return " ".join(parts)

    def _wire_items(self) -> Iterator[tuple[str, Any]]:
        for item in fields(self):
            value = getattr(self, item.name)
            if value != item.default:
                yield item.name, value

    def to_wire(self) -> dict[str, Any]:
        """Non-default knobs as a versioned, JSON-compatible dict.

        ``cache`` must be wire-representable (``None``, a bool, or a
        directory path) — live :class:`~repro.cache.ResultCache` objects
        cannot cross a wire and raise here.
        """
        payload: dict[str, Any] = {"v": WIRE_VERSION}
        for name, value in self._wire_items():
            if name == "cache" and not isinstance(value, (bool, str)):
                raise RequestError(
                    "cache",
                    "only cache=True/False or a directory path can be "
                    "serialized; pass a ResultCache instance in-process only",
                )
            payload[name] = value
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "EngineOptions":
        """Parse a wire options dict (strict: unknown fields rejected)."""
        if not isinstance(payload, Mapping):
            raise RequestError(None, "options must be a JSON object")
        version = payload.get("v", WIRE_VERSION)
        if version != WIRE_VERSION:
            raise RequestError(
                "v", f"unsupported wire version {version!r}; this build speaks v1"
            )
        known = set(_ENGINE_KNOBS)
        values: dict[str, Any] = {}
        for name, value in payload.items():
            if name == "v":
                continue
            if name not in known:
                raise RequestError(
                    str(name),
                    f"unknown engine option {name!r}; choose from {sorted(known)}",
                )
            values[name] = value
        return cls(**values).validate()
