"""Result types returned by the diffusion algorithms and the sweep cut."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..prims.sparse import SparseDict, SparseVector

__all__ = ["DiffusionResult", "SweepResult", "ClusterResult", "vector_items"]


def vector_items(vector: "SparseDict | SparseVector | dict") -> tuple[np.ndarray, np.ndarray]:
    """``(keys, values)`` arrays of any supported sparse-vector type.

    Accepts the dict-backed sequential sparse set, the hash-table-backed
    parallel sparse set, or a plain ``dict`` — the sweep cut and the tests
    treat them uniformly.
    """
    if isinstance(vector, SparseVector):
        return vector.items()
    if isinstance(vector, SparseDict):
        data = vector.to_dict()
    elif isinstance(vector, dict):
        data = vector
    else:
        raise TypeError(f"unsupported vector type: {type(vector).__name__}")
    keys = np.fromiter(data.keys(), dtype=np.int64, count=len(data))
    values = np.fromiter(data.values(), dtype=np.float64, count=len(data))
    return keys, values


@dataclass
class DiffusionResult:
    """Output of one diffusion (Nibble / PR-Nibble / HK-PR / rand-HK-PR).

    Attributes
    ----------
    vector:
        The mass vector ``p`` handed to the sweep cut.
    iterations:
        Number of frontier iterations (parallel) or queue pops (sequential
        Nibble-style loops); the quantity in the paper's Table 1 third
        column for the parallel algorithms.
    pushes:
        Number of push operations performed (Table 1, first two columns).
        For rand-HK-PR this counts random-walk steps instead.
    touched_edges:
        Total edge traversals — the *work* of the diffusion in the paper's
        locality analysis.
    extras:
        Algorithm-specific diagnostics (residual mass, frontier sizes per
        iteration, ...).
    """

    vector: SparseDict | SparseVector
    iterations: int
    pushes: int
    touched_edges: int
    extras: dict[str, Any] = field(default_factory=dict)

    def support_size(self) -> int:
        """Number of vertices with stored mass."""
        return self.vector.nnz


@dataclass
class SweepResult:
    """Full sweep profile: conductance of every prefix of the ordering.

    ``order[i]`` is the vertex of rank i+1 (sorted by non-increasing
    ``p[v]/d(v)``); ``conductances[i]``, ``volumes[i]`` and ``cuts[i]``
    describe the prefix set ``{order[0], ..., order[i]}``.
    """

    order: np.ndarray
    conductances: np.ndarray
    volumes: np.ndarray
    cuts: np.ndarray
    best_index: int

    @property
    def best_cluster(self) -> np.ndarray:
        """The minimum-conductance prefix (the returned cluster)."""
        return self.order[: self.best_index + 1]

    @property
    def best_conductance(self) -> float:
        return float(self.conductances[self.best_index])

    @property
    def num_candidates(self) -> int:
        """N — number of vertices with positive mass that were swept."""
        return len(self.order)

    def __str__(self) -> str:
        return (
            f"SweepResult(N={self.num_candidates}, |S*|={self.best_index + 1}, "
            f"phi*={self.best_conductance:.4g})"
        )


@dataclass
class ClusterResult:
    """End-to-end result of diffusion + sweep (the high-level API's output)."""

    cluster: np.ndarray
    conductance: float
    algorithm: str
    params: dict[str, Any]
    diffusion: DiffusionResult
    sweep: SweepResult

    @property
    def size(self) -> int:
        return len(self.cluster)

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: |S|={self.size} phi={self.conductance:.4g} "
            f"(support={self.diffusion.support_size()}, "
            f"iterations={self.diffusion.iterations})"
        )
