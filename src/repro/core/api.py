"""High-level public API: one call from (graph, seed) to a cluster.

Composes a diffusion with the sweep cut, mirroring the paper's pipeline:
*"All of our clustering algorithms compute a vector p, which is passed to a
sweep cut rounding procedure to generate a cluster."*

>>> from repro import local_cluster
>>> from repro.graph import barbell_graph
>>> result = local_cluster(barbell_graph(8), seeds=0, method="pr-nibble")
>>> sorted(result.cluster.tolist())
[0, 1, 2, 3, 4, 5, 6, 7]
"""

from __future__ import annotations

import asyncio
import functools
from dataclasses import asdict
from typing import TYPE_CHECKING, Any

import numpy as np

from ..graph.csr import CSRGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve import DiffusionService
from .hk_pr import HKPRParams, hk_pr
from .nibble import NibbleParams, nibble
from .pr_nibble import PRNibbleParams, pr_nibble
from .rand_hk_pr import RandHKPRParams, rand_hk_pr
from .result import ClusterResult, DiffusionResult
from .sweep import sweep_cut

__all__ = [
    "ALGORITHMS",
    "local_cluster",
    "async_local_cluster",
    "cluster_many",
    "LocalClusterer",
]

#: method name -> (parameter dataclass, diffusion runner, takes_rng)
ALGORITHMS: dict[str, tuple[type, Any, bool]] = {
    "nibble": (NibbleParams, nibble, False),
    "pr-nibble": (PRNibbleParams, pr_nibble, False),
    "hk-pr": (HKPRParams, hk_pr, False),
    "rand-hk-pr": (RandHKPRParams, rand_hk_pr, True),
}


def local_cluster(
    graph: CSRGraph,
    seeds: "int | np.ndarray | Any",
    method: str | None = None,
    parallel: bool = True,
    rng: np.random.Generator | int | None = None,
    kernel: str | None = None,
    **param_overrides: Any,
) -> ClusterResult:
    """Find a local cluster around ``seeds``: diffusion + sweep cut.

    Parameters
    ----------
    graph:
        The input graph.
    seeds:
        One vertex id or an array of them (the algorithms all "extend to
        seed sets with multiple vertices", Section 3) — or a whole
        :class:`repro.core.options.ClusterRequest`, the canonical record
        the serving plane and the wire schema speak, in which case the
        request carries the method/params/rng/kernel and passing any of
        them loose as well raises ``ValueError`` (nothing is silently
        ignored).
    method:
        ``"nibble"``, ``"pr-nibble"`` (the default), ``"hk-pr"`` or
        ``"rand-hk-pr"``.
    parallel:
        Run the parallel (bulk-synchronous) implementation; ``False``
        selects the sequential reference.
    rng:
        Randomness for ``rand-hk-pr`` (ignored by the deterministic
        methods; default 0).
    kernel:
        Loop implementation for the hot paths (:mod:`repro.kernels`):
        ``None``/``"python"`` (default), ``"numba"``, ``"c"``, or
        ``"auto"`` for the best available with graceful fallback.
        Results are bit-identical across kernels.
    **param_overrides:
        Fields of the method's parameter dataclass, e.g.
        ``alpha=0.01, eps=1e-6`` for PR-Nibble or
        ``t=5, taylor_degree=15`` for HK-PR.
    """
    from .options import ClusterRequest

    if isinstance(seeds, ClusterRequest):
        request = seeds
        carried = [
            name
            for name, value in (
                ("method", method),
                ("rng", rng),
                ("kernel", kernel),
                *sorted(param_overrides.items()),
            )
            if value is not None
        ]
        if carried:
            raise ValueError(
                "the ClusterRequest already carries the query configuration; "
                f"{', '.join(carried)} would be silently ignored — set them "
                "on the request instead"
            )
        request.validate(num_vertices=graph.num_vertices)
        method = request.method
        rng = request.rng
        kernel = request.kernel
        param_overrides = dict(request.params)
        seeds = np.asarray(request.seeds, dtype=np.int64)
    if method is None:
        method = "pr-nibble"
    if rng is None:
        rng = 0
    if method not in ALGORITHMS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(ALGORITHMS)}")
    params_cls, runner, takes_rng = ALGORITHMS[method]
    params = params_cls(**param_overrides)
    if takes_rng:
        diffusion: DiffusionResult = runner(
            graph, seeds, params, parallel=parallel, rng=rng, kernel=kernel
        )
    else:
        diffusion = runner(graph, seeds, params, parallel=parallel, kernel=kernel)
    sweep = sweep_cut(graph, diffusion.vector, parallel=parallel, kernel=kernel)
    return ClusterResult(
        cluster=np.sort(sweep.best_cluster),
        conductance=sweep.best_conductance,
        algorithm=method,
        params=asdict(params),
        diffusion=diffusion,
        sweep=sweep,
    )


async def async_local_cluster(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    method: str = "pr-nibble",
    parallel: bool = True,
    rng: np.random.Generator | int = 0,
    kernel: str | None = None,
    service: "DiffusionService | None" = None,
    priority: str = "interactive",
    **param_overrides: Any,
) -> ClusterResult:
    """:func:`local_cluster` for asyncio callers — never blocks the loop.

    With ``service=None`` the query runs in the event loop's default
    executor thread (same arguments, same result as :func:`local_cluster`).
    With a :class:`repro.serve.DiffusionService`, the query is submitted to
    the shared service instead — it micro-batches with concurrent clients,
    rides the service's long-lived pool, and (``priority="interactive"``,
    the default) drains ahead of any bulk backlog.  The service must serve
    a graph whose CSR *content* matches ``graph``.
    """
    if service is None:
        loop = asyncio.get_running_loop()
        call = functools.partial(
            local_cluster,
            graph,
            seeds,
            method=method,
            parallel=parallel,
            rng=rng,
            kernel=kernel,
            **param_overrides,
        )
        return await loop.run_in_executor(None, call)
    served = service.engine.graph
    if served is not graph and served.fingerprint() != graph.fingerprint():
        raise ValueError("service was built for a different graph")
    if parallel != service.engine.parallel:
        raise ValueError(
            f"service runs jobs with parallel={service.engine.parallel}; "
            "build the service with the implementation you need instead of "
            "overriding it per query"
        )
    if isinstance(rng, np.random.Generator):
        if method in ALGORITHMS and ALGORITHMS[method][2]:
            # A generator's state cannot ride a picklable job, and drawing
            # a sub-seed here would break the bit-identical-to-local_cluster
            # contract (and mutate the caller's generator).
            raise ValueError(
                f"{method} submitted through a service needs an integer rng "
                "seed; np.random.Generator is only supported without a service"
            )
        rng = 0  # deterministic methods ignore it
    return await service.cluster(
        seeds,
        method=method,
        rng=int(rng),
        priority=priority,
        kernel=kernel,
        **param_overrides,
    )


def cluster_many(
    graph: CSRGraph,
    seeds: np.ndarray | list[int],
    method: str = "pr-nibble",
    parallel: bool | None = None,
    rng: np.random.Generator | int = 0,
    engine: "Any | str | None" = None,
    workers: int | None = None,
    cache: "Any | bool | str | None" = None,
    start_method: str | None = None,
    schedule: str | None = None,
    kernel: str | None = None,
    options: "Any | None" = None,
    **param_overrides: Any,
) -> list[ClusterResult]:
    """Run :func:`local_cluster` from many seeds as one batch.

    The per-seed queries are independent, so they dispatch through the
    batch engine (:mod:`repro.engine`): ``workers=4`` — or a prebuilt
    :class:`repro.engine.BatchEngine` via ``engine`` — fans them across a
    process pool on any platform (non-``fork`` start methods attach the
    graph through shared memory; see ``start_method`` / ``schedule`` on
    the engine); the default serial backend matches a plain Python loop
    over :func:`local_cluster` result-for-result.  Randomized methods draw
    one sub-seed per job from ``rng`` up front, so results do not depend
    on the backend, the worker count, or the completion order.

    ``cache`` memoises per-job outcomes (``True``, a cache directory, or
    a :class:`repro.cache.ResultCache`); repeated seed lists — common in
    interactive exploration — replay hits instead of re-diffusing.
    ``kernel`` selects the loop implementation applied to every job
    (:mod:`repro.kernels`); outcomes — and cache entries — are
    bit-identical across kernels.  ``options`` carries the whole engine
    knob surface as one :class:`repro.core.options.EngineOptions` record
    (mutually exclusive with the loose engine kwargs — conflicts raise).

    Returns one :class:`ClusterResult` per entry of ``seeds``, in order.
    """
    from ..engine import DiffusionJob, resolve_engine

    if method not in ALGORITHMS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(ALGORITHMS)}")
    seed_array = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
    takes_rng = ALGORITHMS[method][2]
    if takes_rng:
        base = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        sub_seeds = base.integers(0, 2**63 - 1, size=len(seed_array))
    else:
        sub_seeds = np.zeros(len(seed_array), dtype=np.int64)
    jobs = [
        DiffusionJob.make(seed, method=method, params=param_overrides, rng=sub)
        for seed, sub in zip(seed_array.tolist(), sub_seeds.tolist())
    ]
    batch = resolve_engine(
        graph,
        engine,
        workers=workers,
        parallel=parallel,
        cache=cache,
        start_method=start_method,
        schedule=schedule,
        kernel=kernel,
        options=options,
    )
    if not batch.include_vectors:
        raise ValueError(
            "cluster_many rebuilds full ClusterResults and needs the diffusion "
            "vectors; pass an engine built with include_vectors=True"
        )
    outcomes = batch.run(jobs)
    return [outcome.to_cluster_result() for outcome in outcomes]


class LocalClusterer:
    """Object-style facade for interactive exploration of one graph.

    The paper argues these algorithms shine "in an interactive setting,
    where a data analyst wants to quickly explore the properties of local
    clusters found in a graph"; this class is that workflow's entry point —
    construct once over a loaded graph, then issue repeated queries.
    """

    def __init__(
        self,
        graph: CSRGraph,
        parallel: bool = True,
        rng: np.random.Generator | int = 0,
    ) -> None:
        self.graph = graph
        self.parallel = parallel
        self._rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    def nibble(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "nibble", self.parallel, **params)

    def pr_nibble(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "pr-nibble", self.parallel, **params)

    def hk_pr(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "hk-pr", self.parallel, **params)

    def rand_hk_pr(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(
            self.graph, seeds, "rand-hk-pr", self.parallel, rng=self._rng, **params
        )

    def all_methods(self, seeds: int | np.ndarray) -> dict[str, ClusterResult]:
        """Run all four diffusions from the same seed (the paper suggests
        analysts "use all of them to find slightly different clusters of
        similar size from the same seed set")."""
        return {name: getattr(self, name.replace("-", "_"))(seeds) for name in ALGORITHMS}
