"""High-level public API: one call from (graph, seed) to a cluster.

Composes a diffusion with the sweep cut, mirroring the paper's pipeline:
*"All of our clustering algorithms compute a vector p, which is passed to a
sweep cut rounding procedure to generate a cluster."*

>>> from repro import local_cluster
>>> from repro.graph import barbell_graph
>>> result = local_cluster(barbell_graph(8), seeds=0, method="pr-nibble")
>>> sorted(result.cluster.tolist())
[0, 1, 2, 3, 4, 5, 6, 7]
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any

import numpy as np

from ..graph.csr import CSRGraph
from .hk_pr import HKPRParams, hk_pr
from .nibble import NibbleParams, nibble
from .pr_nibble import PRNibbleParams, pr_nibble
from .rand_hk_pr import RandHKPRParams, rand_hk_pr
from .result import ClusterResult, DiffusionResult
from .sweep import sweep_cut

__all__ = ["ALGORITHMS", "local_cluster", "LocalClusterer"]

#: method name -> (parameter dataclass, diffusion runner, takes_rng)
ALGORITHMS: dict[str, tuple[type, Any, bool]] = {
    "nibble": (NibbleParams, nibble, False),
    "pr-nibble": (PRNibbleParams, pr_nibble, False),
    "hk-pr": (HKPRParams, hk_pr, False),
    "rand-hk-pr": (RandHKPRParams, rand_hk_pr, True),
}


def local_cluster(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    method: str = "pr-nibble",
    parallel: bool = True,
    rng: np.random.Generator | int = 0,
    **param_overrides: Any,
) -> ClusterResult:
    """Find a local cluster around ``seeds``: diffusion + sweep cut.

    Parameters
    ----------
    graph:
        The input graph.
    seeds:
        One vertex id or an array of them (the algorithms all "extend to
        seed sets with multiple vertices", Section 3).
    method:
        ``"nibble"``, ``"pr-nibble"``, ``"hk-pr"`` or ``"rand-hk-pr"``.
    parallel:
        Run the parallel (bulk-synchronous) implementation; ``False``
        selects the sequential reference.
    rng:
        Randomness for ``rand-hk-pr`` (ignored by the deterministic
        methods).
    **param_overrides:
        Fields of the method's parameter dataclass, e.g.
        ``alpha=0.01, eps=1e-6`` for PR-Nibble or
        ``t=5, taylor_degree=15`` for HK-PR.
    """
    if method not in ALGORITHMS:
        raise ValueError(f"unknown method {method!r}; choose from {sorted(ALGORITHMS)}")
    params_cls, runner, takes_rng = ALGORITHMS[method]
    params = params_cls(**param_overrides)
    if takes_rng:
        diffusion: DiffusionResult = runner(graph, seeds, params, parallel=parallel, rng=rng)
    else:
        diffusion = runner(graph, seeds, params, parallel=parallel)
    sweep = sweep_cut(graph, diffusion.vector, parallel=parallel)
    return ClusterResult(
        cluster=np.sort(sweep.best_cluster),
        conductance=sweep.best_conductance,
        algorithm=method,
        params=asdict(params),
        diffusion=diffusion,
        sweep=sweep,
    )


class LocalClusterer:
    """Object-style facade for interactive exploration of one graph.

    The paper argues these algorithms shine "in an interactive setting,
    where a data analyst wants to quickly explore the properties of local
    clusters found in a graph"; this class is that workflow's entry point —
    construct once over a loaded graph, then issue repeated queries.
    """

    def __init__(
        self,
        graph: CSRGraph,
        parallel: bool = True,
        rng: np.random.Generator | int = 0,
    ) -> None:
        self.graph = graph
        self.parallel = parallel
        self._rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    def nibble(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "nibble", self.parallel, **params)

    def pr_nibble(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "pr-nibble", self.parallel, **params)

    def hk_pr(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(self.graph, seeds, "hk-pr", self.parallel, **params)

    def rand_hk_pr(self, seeds: int | np.ndarray, **params: Any) -> ClusterResult:
        return local_cluster(
            self.graph, seeds, "rand-hk-pr", self.parallel, rng=self._rng, **params
        )

    def all_methods(self, seeds: int | np.ndarray) -> dict[str, ClusterResult]:
        """Run all four diffusions from the same seed (the paper suggests
        analysts "use all of them to find slightly different clusters of
        similar size from the same seed set")."""
        return {name: getattr(self, name.replace("-", "_"))(seeds) for name in ALGORITHMS}
