"""The paper's contribution: parallel local clustering algorithms + sweep cut."""

from .api import (
    ALGORITHMS,
    LocalClusterer,
    async_local_cluster,
    cluster_many,
    local_cluster,
)
from .evolving_sets import EvolvingSetParams, EvolvingSetResult, evolving_set_process
from .hk_pr import HKPRParams, hk_pr, hk_pr_parallel, hk_pr_sequential, psi_coefficients
from .ncp import NCPResult, log_binned, ncp_profile
from .nibble import NibbleParams, nibble, nibble_parallel, nibble_sequential
from .options import (
    PRIORITIES,
    ClusterRequest,
    EngineOptions,
    RequestError,
    canonical_params,
    validate_params,
)
from .pr_nibble import (
    PRNibbleParams,
    pr_nibble,
    pr_nibble_parallel,
    pr_nibble_residual,
    pr_nibble_sequential,
    pr_nibble_update,
)
from .quality import ClusterStats, boundary_size, cluster_stats, conductance, volume
from .rand_hk_pr import (
    RandHKPRParams,
    aggregate_by_fetch_add,
    aggregate_by_sort,
    rand_hk_pr,
    rand_hk_pr_parallel,
    rand_hk_pr_sequential,
    sample_walk_lengths,
)
from .result import ClusterResult, DiffusionResult, SweepResult, vector_items
from .seeding import arbitrary_seed, best_seed_by_sampling, random_seeds
from .sweep import sweep_cut, sweep_cut_parallel, sweep_cut_sequential, sweep_order

__all__ = [
    "ALGORITHMS",
    "LocalClusterer",
    "cluster_many",
    "local_cluster",
    "async_local_cluster",
    "PRIORITIES",
    "ClusterRequest",
    "EngineOptions",
    "RequestError",
    "canonical_params",
    "validate_params",
    "EvolvingSetParams",
    "EvolvingSetResult",
    "evolving_set_process",
    "HKPRParams",
    "hk_pr",
    "hk_pr_parallel",
    "hk_pr_sequential",
    "psi_coefficients",
    "NCPResult",
    "log_binned",
    "ncp_profile",
    "NibbleParams",
    "nibble",
    "nibble_parallel",
    "nibble_sequential",
    "PRNibbleParams",
    "pr_nibble",
    "pr_nibble_parallel",
    "pr_nibble_residual",
    "pr_nibble_sequential",
    "pr_nibble_update",
    "ClusterStats",
    "boundary_size",
    "cluster_stats",
    "conductance",
    "volume",
    "RandHKPRParams",
    "aggregate_by_fetch_add",
    "aggregate_by_sort",
    "rand_hk_pr",
    "rand_hk_pr_parallel",
    "rand_hk_pr_sequential",
    "sample_walk_lengths",
    "ClusterResult",
    "DiffusionResult",
    "SweepResult",
    "vector_items",
    "arbitrary_seed",
    "best_seed_by_sampling",
    "random_seeds",
    "sweep_cut",
    "sweep_cut_parallel",
    "sweep_cut_sequential",
    "sweep_order",
]
