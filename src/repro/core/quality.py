"""Cluster quality metrics: volume, boundary, conductance (paper Section 2).

Definitions (for an undirected graph G with 2m = vol(V)):

* ``vol(S)``   — sum of degrees of the vertices of S;
* ``∂(S)``     — the set of edges with exactly one endpoint in S;
* ``φ(S)``     — ``|∂(S)| / min(vol(S), 2m − vol(S))``, *"a widely-used
  metric to measure cluster quality"*; lower is better.

Figure 1 of the paper works these out on an 8-vertex example
(:func:`repro.graph.generators.paper_figure1_graph`); the test suite checks
this module against those hand-computed values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["volume", "boundary_size", "conductance", "ClusterStats", "cluster_stats"]


def _as_vertex_array(cluster: np.ndarray) -> np.ndarray:
    array = np.unique(np.asarray(cluster, dtype=np.int64))
    if len(array) == 0:
        raise ValueError("cluster must be non-empty")
    return array


def volume(graph: CSRGraph, cluster: np.ndarray) -> int:
    """vol(S): total degree of the cluster."""
    return graph.volume(_as_vertex_array(cluster))


def boundary_size(graph: CSRGraph, cluster: np.ndarray) -> int:
    """|∂(S)|: number of edges leaving the cluster."""
    vertices = _as_vertex_array(cluster)
    _, targets = graph.gather_edges(vertices)
    if len(targets) == 0:
        return 0
    inside = np.isin(targets, vertices)
    return int((~inside).sum())


def conductance(graph: CSRGraph, cluster: np.ndarray) -> float:
    """φ(S) = |∂(S)| / min(vol(S), 2m − vol(S)).

    By convention a cluster whose complement has zero volume (S covers all
    edges) gets conductance 1.0 — the worst value — so sweeps never select
    the whole graph.
    """
    vertices = _as_vertex_array(cluster)
    vol = graph.volume(vertices)
    denominator = min(vol, graph.total_volume - vol)
    if denominator == 0:
        return 1.0
    return boundary_size(graph, vertices) / denominator


@dataclass(frozen=True)
class ClusterStats:
    """Summary of one cluster: the quantities the paper's tables report."""

    size: int
    volume: int
    boundary: int
    conductance: float

    def __str__(self) -> str:
        return (
            f"|S|={self.size} vol={self.volume} cut={self.boundary} "
            f"phi={self.conductance:.4g}"
        )


def cluster_stats(graph: CSRGraph, cluster: np.ndarray) -> ClusterStats:
    """Compute all quality metrics of a cluster in one pass."""
    vertices = _as_vertex_array(cluster)
    vol = graph.volume(vertices)
    cut = boundary_size(graph, vertices)
    denominator = min(vol, graph.total_volume - vol)
    phi = 1.0 if denominator == 0 else cut / denominator
    return ClusterStats(size=len(vertices), volume=vol, boundary=cut, conductance=phi)
