"""Randomized heat kernel PageRank of Chung & Simpson (paper Section 3.5).

Approximates the heat kernel PageRank by Monte Carlo: run ``N`` lazy-free
random walks from the seed, where a walk's length is ``k`` with probability
``e^{-t} t^k / k!`` (Poisson, truncated at ``K``); the returned vector is
``p / N`` with ``p[v]`` counting the walks that *ended* on ``v``.

* The **sequential** algorithm executes one walk at a time, incrementing a
  dict-backed sparse counter.
* The **parallel** algorithm runs all walks simultaneously (each walk is an
  independent lane of a vectorised step loop).  The paper found that
  aggregating destinations with fetch-and-adds "led to poor speed up since
  many random walks end up on the same vertex causing high memory
  contention"; instead it writes destination ``i`` of walk ``i`` into an
  array ``A``, **integer-sorts** ``A`` (after compressing vertex ids into
  ``[0, N)`` with a parallel hash table) and reads counts off the run
  boundaries with prefix sums and filter.  Both aggregation strategies are
  implemented; the sort-based one is the default, and the ablation
  benchmark compares them.

Work O(N K), depth O(K + log N) (Theorem 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels import csr_arrays, get_kernels, resolve_kernel
from ..prims.compact import pack_index
from ..prims.hashtable import IntFloatHashTable
from ..prims.sort import integer_sort_order
from ..prims.sparse import SparseDict, SparseVector
from ..runtime import log2ceil, record
from .result import DiffusionResult

__all__ = [
    "RandHKPRParams",
    "rand_hk_pr_sequential",
    "rand_hk_pr_parallel",
    "rand_hk_pr",
    "aggregate_by_sort",
    "aggregate_by_fetch_add",
]


@dataclass(frozen=True)
class RandHKPRParams:
    """Inputs of rand-HK-PR: temperature t, max walk length K, walk count N.

    The paper's Table 3 setting is ``t=10, K=10, N=1e8``; the walk count
    trades accuracy for time (Figure 8(g,h)) and scales down with graph
    size.
    """

    t: float = 10.0
    max_walk_length: int = 10
    num_walks: int = 100_000

    def __post_init__(self) -> None:
        if self.t <= 0.0:
            raise ValueError("t must be positive")
        if self.max_walk_length < 0:
            raise ValueError("max_walk_length must be >= 0")
        if self.num_walks < 1:
            raise ValueError("num_walks must be >= 1")


def _seed_array(seeds: int | np.ndarray) -> np.ndarray:
    array = np.unique(np.atleast_1d(np.asarray(seeds, dtype=np.int64)))
    if len(array) == 0:
        raise ValueError("at least one seed vertex is required")
    return array


def sample_walk_lengths(
    rng: np.random.Generator, params: RandHKPRParams
) -> np.ndarray:
    """Walk lengths: ``min(Poisson(t), K)`` per walk."""
    lengths = rng.poisson(params.t, size=params.num_walks)
    return np.minimum(lengths, params.max_walk_length).astype(np.int64)


def rand_hk_pr_sequential(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: RandHKPRParams,
    rng: np.random.Generator | int = 0,
) -> DiffusionResult:
    """One walk at a time, dict-backed counter (the paper's sequential code)."""
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    seed_list = _seed_array(seeds)
    p = SparseDict()
    steps = 0
    for _ in range(params.num_walks):
        length = min(rng.poisson(params.t), params.max_walk_length)
        vertex = int(seed_list[rng.integers(len(seed_list))])
        for _ in range(length):
            adjacency = graph.neighbors_of(vertex)
            if len(adjacency) == 0:
                break
            vertex = int(adjacency[rng.integers(len(adjacency))])
            steps += 1
        p.add(vertex, 1.0 / params.num_walks)
    record(work=float(steps + params.num_walks), depth=0.0, category="sequential")
    return DiffusionResult(
        vector=p, iterations=params.num_walks, pushes=params.num_walks, touched_edges=steps
    )


def aggregate_by_sort(destinations: np.ndarray, num_walks: int) -> SparseVector:
    """The paper's contention-free aggregation: hash-compress, sort, count.

    1. insert all destinations into a parallel hash table, mapping each
       distinct vertex to an index in ``[0, U)`` with ``U <= N``;
    2. integer-sort the mapped array (keys bounded by N);
    3. mark run boundaries (the ``B[i] = i`` / ``-1`` + filter construction)
       and difference consecutive offsets for the counts.
    """
    table = IntFloatHashTable(capacity_hint=len(destinations))
    table.accumulate(destinations, 0.0)  # materialise the distinct key set
    distinct, _ = table.items()
    table.assign(distinct, np.arange(len(distinct), dtype=np.float64))
    mapped = table.lookup(destinations).astype(np.int64)
    order = integer_sort_order(mapped, max_key=max(len(distinct) - 1, 0))
    sorted_mapped = mapped[order]
    boundary = np.concatenate([sorted_mapped[1:] != sorted_mapped[:-1], np.asarray([True])])
    ends = pack_index(boundary)
    counts = np.diff(np.concatenate([np.asarray([-1]), ends]))
    record(work=len(destinations), depth=log2ceil(len(destinations)), category="scan")
    vertices = destinations[order[ends]]
    return SparseVector.from_pairs(vertices, counts.astype(np.float64) / num_walks)


def aggregate_by_fetch_add(destinations: np.ndarray, num_walks: int) -> SparseVector:
    """Naive aggregation: a round of fetch-and-adds into the sparse set.

    This is the variant the paper rejects for its memory contention; it is
    kept for the ablation benchmark.  (In bulk-synchronous form the
    contention shows up as the duplicate-heavy combine inside
    ``SparseVector.add``.)
    """
    p = SparseVector(capacity_hint=len(destinations))
    p.add(destinations, 1.0 / num_walks)
    return p


def rand_hk_pr_parallel(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: RandHKPRParams,
    rng: np.random.Generator | int = 0,
    aggregation: str = "sort",
    kernel: str | None = None,
) -> DiffusionResult:
    """All walks in parallel; destination aggregation per ``aggregation``.

    Each vectorised step advances every still-active walk by one uniformly
    random neighbor (walks at dead-end vertices stop early).  Depth is
    O(K + log N): the step loop plus the aggregation.

    ``kernel`` selects the per-step filter/advance implementation
    (:mod:`repro.kernels`): compiled kernels fuse the degree filter and
    the ``neighbor_at`` gather.  The uniform draws stay in this wrapper —
    between the filter (which fixes how many are drawn) and the advance —
    so the rng stream, and therefore every walk, is bit-identical to the
    numpy path.  Graphs without whole-CSR arrays (shard views) take the
    numpy path.
    """
    if aggregation not in ("sort", "fetch_add"):
        raise ValueError("aggregation must be 'sort' or 'fetch_add'")
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    seed_list = _seed_array(seeds)
    kernel_name = resolve_kernel(kernel)
    arrays = csr_arrays(graph) if kernel_name != "python" else None
    kernels = get_kernels(kernel_name) if arrays is not None else None
    lengths = sample_walk_lengths(rng, params)
    current = seed_list[rng.integers(len(seed_list), size=params.num_walks)].copy()
    steps = 0
    for step in range(params.max_walk_length):
        active = np.flatnonzero(lengths > step)
        if len(active) == 0:
            break
        if kernels is not None:
            offsets, neighbors = arrays
            active, vertices = kernels.walk_filter(offsets, current, active)
            if len(active) == 0:
                break
            uniforms = rng.random(len(active))
            kernels.walk_advance(offsets, neighbors, current, active, vertices, uniforms)
        else:
            vertices = current[active]
            degrees = graph.degrees(vertices)
            walkable = degrees > 0
            active = active[walkable]
            if len(active) == 0:
                break
            vertices = vertices[walkable]
            degrees = degrees[walkable]
            pick = (rng.random(len(active)) * degrees).astype(np.int64)
            current[active] = graph.neighbor_at(vertices, pick)
        steps += len(active)
        record(work=len(active), depth=1.0, category="walk")
    record(work=params.num_walks, depth=log2ceil(params.num_walks), category="walk")

    if aggregation == "sort":
        vector = aggregate_by_sort(current, params.num_walks)
    else:
        vector = aggregate_by_fetch_add(current, params.num_walks)
    return DiffusionResult(
        vector=vector,
        iterations=params.max_walk_length,
        pushes=params.num_walks,
        touched_edges=steps,
        extras={"aggregation": aggregation},
    )


def rand_hk_pr(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: RandHKPRParams | None = None,
    parallel: bool = True,
    rng: np.random.Generator | int = 0,
    kernel: str | None = None,
) -> DiffusionResult:
    """Run rand-HK-PR with default or supplied parameters.

    ``kernel`` accelerates the parallel step loop (:mod:`repro.kernels`).
    The sequential variant draws from the rng once per individual step,
    an interleaving no batched kernel can reproduce bit-identically, so
    it always runs the reference loop (the knob is still validated).
    """
    params = params or RandHKPRParams()
    if parallel:
        return rand_hk_pr_parallel(graph, seeds, params, rng=rng, kernel=kernel)
    resolve_kernel(kernel)
    return rand_hk_pr_sequential(graph, seeds, params, rng=rng)
