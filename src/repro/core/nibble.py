"""Nibble — truncated lazy random walk diffusion (paper Section 3.2).

Spielman and Teng's first local clustering algorithm: starting from unit
mass on the seed, repeatedly apply one step of the lazy random walk, but
truncate entries below ``eps * d(v)`` to zero so the support (and hence the
work) stays proportional to the cluster, not the graph.  After at most T
steps the mass vector is handed to the sweep cut.

Per the paper's modification, no per-iteration sweep is performed: the
algorithm runs for T iterations and returns ``p_T``, unless some iteration
leaves no vertex above threshold, in which case ``p_{i-1}`` is returned.

Both implementations follow the pseudocode of Figure 3 exactly:

* ``UpdateSelf`` (vertexMap): ``p'[v] = p[v] / 2``;
* ``UpdateNgh`` (edgeMap):   ``p'[w] += p[v] / (2 d(v))`` via fetch-and-add;
* new frontier: ``{v | p'[v] >= eps * d(v)}`` via filter — checking only
  the old frontier and its neighbors (the keys of ``p'``), which is what
  keeps each iteration's work local (Theorem 2: O(T / eps) work,
  O(T log(1 / eps)) depth).

The parallel algorithm applies the *same* updates as the sequential one, so
both return the same vector (up to floating-point summation order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..ligra import VertexSubset, edge_map, expand_by_degree, vertex_map
from ..prims.sparse import SparseDict, SparseVector
from ..runtime import log2ceil, record
from .result import DiffusionResult

__all__ = ["NibbleParams", "nibble_sequential", "nibble_parallel", "nibble"]


@dataclass(frozen=True)
class NibbleParams:
    """Inputs of Nibble: iteration cap T and truncation threshold eps.

    The paper's Table 3 setting is ``T=20, eps=1e-8`` on billion-edge
    graphs; on smaller graphs eps should scale up correspondingly (the
    threshold is per unit of degree).
    """

    max_iterations: int = 20
    eps: float = 1e-6

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 < self.eps < 1.0:
            raise ValueError("eps must be in (0, 1)")


def _seed_array(seeds: int | np.ndarray) -> np.ndarray:
    array = np.unique(np.atleast_1d(np.asarray(seeds, dtype=np.int64)))
    if len(array) == 0:
        raise ValueError("at least one seed vertex is required")
    return array


def nibble_sequential(
    graph: CSRGraph, seeds: int | np.ndarray, params: NibbleParams
) -> DiffusionResult:
    """Reference sequential Nibble over dict-backed sparse sets."""
    seed_list = _seed_array(seeds)
    initial = 1.0 / len(seed_list)
    p = SparseDict({int(s): initial for s in seed_list})
    frontier = [int(s) for s in seed_list]
    iterations = 0
    pushes = 0
    touched_edges = 0

    for _ in range(params.max_iterations):
        p_next = SparseDict()
        for vertex in frontier:
            mass = p[vertex]
            degree = graph.degree(vertex)
            p_next.add(vertex, mass / 2.0)
            if degree > 0:
                share = mass / (2.0 * degree)
                for neighbor in graph.neighbors_of(vertex).tolist():
                    p_next.add(neighbor, share)
            pushes += 1
            touched_edges += degree
        iterations += 1
        new_frontier = [
            vertex
            for vertex, value in p_next.items()
            if value >= params.eps * graph.degree(vertex)
        ]
        if not new_frontier:
            break  # return the previous vector p_{i-1} (Figure 3, line 15)
        p = p_next
        frontier = new_frontier
    record(work=float(touched_edges + 2 * pushes), depth=0.0, category="sequential")
    return DiffusionResult(
        vector=p, iterations=iterations, pushes=pushes, touched_edges=touched_edges
    )


def nibble_parallel(
    graph: CSRGraph, seeds: int | np.ndarray, params: NibbleParams
) -> DiffusionResult:
    """Parallel Nibble (Figure 3): one vertexMap + edgeMap + filter per step."""
    seed_list = _seed_array(seeds)
    p = SparseVector.from_pairs(seed_list, 1.0 / len(seed_list))
    frontier = VertexSubset(seed_list)
    iterations = 0
    pushes = 0
    touched_edges = 0
    frontier_sizes: list[int] = []

    for _ in range(params.max_iterations):
        p_next = SparseVector(capacity_hint=p.nnz)
        frontier_values = p.get(frontier.vertices)
        frontier_degrees = graph.degrees(frontier.vertices)

        def update_self(vertices: np.ndarray) -> None:
            p_next.set(vertices, frontier_values / 2.0)

        vertex_map(frontier, update_self)

        per_edge_share = expand_by_degree(
            graph, frontier, frontier_values / (2.0 * np.maximum(frontier_degrees, 1))
        )

        def update_ngh(sources: np.ndarray, targets: np.ndarray) -> None:
            p_next.add(targets, per_edge_share)

        edge_map(graph, frontier, update_ngh)

        iterations += 1
        pushes += len(frontier)
        touched_edges += int(frontier_degrees.sum())
        frontier_sizes.append(len(frontier))

        candidates = p_next.keys()
        above = p_next.get(candidates) >= params.eps * graph.degrees(candidates)
        record(work=len(candidates), depth=log2ceil(len(candidates)), category="filter")
        survivors = candidates[above]
        if len(survivors) == 0:
            break  # keep p = p_{i-1}
        p = p_next
        frontier = VertexSubset(survivors)

    return DiffusionResult(
        vector=p,
        iterations=iterations,
        pushes=pushes,
        touched_edges=touched_edges,
        extras={"frontier_sizes": frontier_sizes},
    )


def nibble(
    graph: CSRGraph,
    seeds: int | np.ndarray,
    params: NibbleParams | None = None,
    parallel: bool = True,
    kernel: str | None = None,
) -> DiffusionResult:
    """Run Nibble with default or supplied parameters.

    ``kernel`` is accepted for API uniformity with the other methods and
    validated (:func:`repro.kernels.resolve_kernel`); Nibble's truncated
    power iteration is dominated by whole-frontier array operations, so
    it has no compiled twin and both values run the reference code.
    """
    from ..kernels import resolve_kernel

    resolve_kernel(kernel)
    params = params or NibbleParams()
    if parallel:
        return nibble_parallel(graph, seeds, params)
    return nibble_sequential(graph, seeds, params)
