"""Sweep cut: rounding a diffusion vector into a cluster (paper Section 3.1).

The sweep cut sorts the vertices with positive mass by non-increasing
degree-normalised mass ``p[v]/d(v)`` and returns the prefix set with the
lowest conductance.  Two implementations:

* :func:`sweep_cut_sequential` — the standard incremental algorithm: insert
  vertices one by one, maintaining ``vol(S)`` and ``∂(S)`` with a membership
  set; O(N log N + vol(S_N)) work.
* :func:`sweep_cut_parallel` — the work-efficient parallel algorithm of
  **Theorem 1**: build the signed pair array ``Z`` of size ``2 vol(S_N)``
  (case (a): ``(1, rank(v)), (-1, rank(w))`` for edges pointing forward in
  the ordering; case (b): ``(0, ·), (0, ·)`` for their mirror images), sort
  ``Z`` by rank with an integer sort, prefix-sum the signs, and read off
  ``∂(S_i)`` as the running sum at the end of each rank's run.  Work
  O(N log N + vol(S_N)), depth O(log vol(S_N)) w.h.p.

Both return the identical :class:`~repro.core.result.SweepResult` profile
(the tests check this on random inputs); ties in ``p[v]/d(v)`` break
towards the smaller vertex id in both.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels import csr_arrays, get_kernels, resolve_kernel
from ..prims.compact import pack_index
from ..prims.hashtable import IntFloatHashTable
from ..prims.scan import argmin_via_scan, prefix_sum
from ..prims.sort import integer_sort_order
from ..runtime import log2ceil, record
from .result import SweepResult, vector_items

__all__ = ["sweep_cut", "sweep_cut_sequential", "sweep_cut_parallel", "sweep_order"]


def sweep_order(
    graph: CSRGraph, vector, category: str = "sort"
) -> tuple[np.ndarray, np.ndarray]:
    """Vertices with positive mass sorted by non-increasing ``p[v]/d(v)``.

    Returns ``(ordered_vertices, their_degrees)``.  Zero-degree vertices
    cannot affect any cut and are excluded.  Ties break towards the smaller
    vertex id so that the sequential and parallel sweeps scan prefixes in
    the same order.  ``category`` controls cost accounting: the sequential
    sweep records its sort as non-parallelisable work.
    """
    keys, values = vector_items(vector)
    degrees = graph.degrees(keys)
    positive = (values > 0.0) & (degrees > 0)
    keys = keys[positive]
    values = values[positive]
    degrees = degrees[positive]
    n = len(keys)
    record(work=n * max(log2ceil(n), 1.0), depth=log2ceil(n), category=category)
    # lexsort: last key is primary.  Negated score => non-increasing order;
    # vertex id ascending breaks ties deterministically.
    order = np.lexsort((keys, -values / degrees))
    return keys[order], degrees[order]


def _guarded_conductance(cuts: np.ndarray, volumes: np.ndarray, total_volume: int) -> np.ndarray:
    """φ per prefix with the 0/0 = 1.0 convention for full-volume prefixes."""
    denominator = np.minimum(volumes, total_volume - volumes)
    phi = np.ones(len(cuts), dtype=np.float64)
    valid = denominator > 0
    phi[valid] = cuts[valid] / denominator[valid]
    return phi


def sweep_cut_sequential(graph: CSRGraph, vector, kernel: str | None = None) -> SweepResult:
    """Reference sequential sweep: incremental volume/boundary bookkeeping.

    For each arriving vertex ``v_i``: ``vol += d(v_i)`` and for each edge
    ``(v_i, w)``, decrement the cut if ``w`` is already a member (the edge
    stops crossing) else increment it — exactly the update rule described
    in Section 3.1.  ``kernel`` selects the scan implementation
    (:mod:`repro.kernels`); the scan is all-integer, so compiled kernels
    are bit-identical by construction.
    """
    ordered, degrees = sweep_order(graph, vector, category="sequential")
    n = len(ordered)
    if n == 0:
        raise ValueError("sweep cut needs at least one vertex with positive mass")
    total_volume = graph.total_volume
    kernel_name = resolve_kernel(kernel)
    arrays = csr_arrays(graph) if kernel_name != "python" else None
    if arrays is not None:
        volumes, cuts = get_kernels(kernel_name).sweep_scan(
            arrays[0], arrays[1], ordered, degrees
        )
        vol = int(volumes[-1])
    else:
        members: set[int] = set()
        vol = 0
        cut = 0
        volumes = np.empty(n, dtype=np.int64)
        cuts = np.empty(n, dtype=np.int64)
        for i, (vertex, degree) in enumerate(zip(ordered.tolist(), degrees.tolist())):
            vol += degree
            for neighbor in graph.neighbors_of(vertex).tolist():
                if neighbor in members:
                    cut -= 1
                else:
                    cut += 1
            members.add(vertex)
            volumes[i] = vol
            cuts[i] = cut
    record(work=float(vol + n), depth=0.0, category="sequential")
    conductances = _guarded_conductance(cuts, volumes, total_volume)
    best = int(np.argmin(conductances))
    return SweepResult(
        order=ordered, conductances=conductances, volumes=volumes, cuts=cuts, best_index=best
    )


def sweep_cut_parallel(graph: CSRGraph, vector) -> SweepResult:
    """Work-efficient parallel sweep cut (Theorem 1).

    Follows the construction in the paper's proof and worked example:

    1. sort candidates by ``p[v]/d(v)`` (comparison sort);
    2. build the ``rank`` sparse set mapping vertex -> 1-based rank, with
       non-members implicitly at rank N+1;
    3. prefix-sum the degrees in rank order -> ``vol(S_i)`` for every i;
    4. emit two pairs per gathered edge into ``Z``: ``(1, rank(v))`` and
       ``(-1, rank(w))`` when ``rank(w) > rank(v)`` (case a), two zero
       pairs otherwise (case b);
    5. integer-sort ``Z`` by rank, prefix-sum the signs; the running sum at
       the last entry of rank i's run is ``|∂(S_i)|``;
    6. a min-scan over the N conductances selects the best prefix.
    """
    ordered, degrees = sweep_order(graph, vector)
    n = len(ordered)
    if n == 0:
        raise ValueError("sweep cut needs at least one vertex with positive mass")
    total_volume = graph.total_volume

    # Step 2: rank sparse set (hash table), ranks are 1-based.
    rank_table = IntFloatHashTable(capacity_hint=n)
    ranks = np.arange(1, n + 1, dtype=np.int64)
    rank_table.assign(ordered, ranks.astype(np.float64))

    # Step 3: volumes of all prefixes via prefix sum over sorted degrees.
    volumes = prefix_sum(degrees)

    # Step 4: gather the edges of S_N in rank order and build Z.
    sources, targets = graph.gather_edges(ordered)
    source_rank = np.repeat(ranks, degrees)
    target_rank = rank_table.lookup(targets, default=float(n + 1)).astype(np.int64)
    forward = target_rank > source_rank  # case (a)

    num_edges = len(sources)
    z_sign = np.zeros(2 * num_edges, dtype=np.int64)
    z_rank = np.empty(2 * num_edges, dtype=np.int64)
    z_sign[0::2] = np.where(forward, 1, 0)
    z_rank[0::2] = source_rank
    z_sign[1::2] = np.where(forward, -1, 0)
    z_rank[1::2] = target_rank
    record(work=2.0 * num_edges, depth=log2ceil(max(num_edges, 1)), category="misc")

    # Step 5: integer sort by rank (max key N+1 = O(vol)), prefix sum signs.
    z_order = integer_sort_order(z_rank, max_key=n + 1)
    sorted_rank = z_rank[z_order]
    running = prefix_sum(z_sign[z_order])

    # Every rank 1..N appears in Z (each member vertex has degree >= 1 and
    # contributes a pair with its own rank per incident edge); the last
    # entry of each rank's run carries |∂(S_i)|.
    run_end = pack_index(
        np.concatenate([sorted_rank[1:] != sorted_rank[:-1], np.asarray([True])])
    )
    run_rank = sorted_rank[run_end]
    member_runs = run_rank <= n
    cuts = np.zeros(n, dtype=np.int64)
    cuts[run_rank[member_runs] - 1] = running[run_end[member_runs]]

    conductances = _guarded_conductance(cuts, volumes, total_volume)
    best = argmin_via_scan(conductances)
    return SweepResult(
        order=ordered, conductances=conductances, volumes=volumes, cuts=cuts, best_index=best
    )


def sweep_cut(
    graph: CSRGraph, vector, parallel: bool = True, kernel: str | None = None
) -> SweepResult:
    """Dispatch to the parallel (default) or sequential sweep cut.

    ``kernel`` selects the membership-scan implementation for the
    sequential path (:mod:`repro.kernels`); the parallel sweep is already
    array-vectorised and ignores it (the knob is still validated).
    """
    if parallel:
        resolve_kernel(kernel)
        return sweep_cut_parallel(graph, vector)
    return sweep_cut_sequential(graph, vector, kernel=kernel)
