"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``graphs``
    List the Table-2 proxy registry (paper sizes vs proxy sizes).
``generate``
    Build a graph (proxy or named generator) and write it to disk.
``cluster``
    Run one local clustering query — the paper's interactive use case —
    against a proxy or a graph file, printing the cluster and, optionally,
    the work-depth profile with simulated paper-machine times.
``ncp``
    Generate a network community profile (Figure-12 style) as CSV.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .core import ALGORITHMS, cluster_stats, local_cluster, ncp_profile
from .graph import (
    PROXIES,
    grid_3d,
    load_npz,
    load_proxy,
    proxy_names,
    rand_local,
    read_adjacency_graph,
    read_edge_list,
    rmat,
    save_npz,
    write_adjacency_graph,
    write_edge_list,
)
from .runtime import PAPER_MACHINE, track

__all__ = ["main", "build_parser"]


def _load_graph(spec: str):
    """A graph from a proxy name or a file path (by extension)."""
    if spec in PROXIES:
        return load_proxy(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"error: {spec!r} is neither a proxy name nor a file")
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix == ".adj":
        return read_adjacency_graph(path)
    return read_edge_list(path)


def _cmd_graphs(args: argparse.Namespace) -> int:
    print(f"{'name':<16} {'paper n':>15} {'paper m':>15} {'proxy family'}")
    for name in proxy_names():
        spec = PROXIES[name]
        print(f"{name:<16} {spec.paper_vertices:>15,} {spec.paper_edges:>15,} {spec.kind}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "proxy":
        graph = load_proxy(args.name, scale=args.scale, seed=args.seed)
    elif args.kind == "rand-local":
        graph = rand_local(args.n, seed=args.seed)
    elif args.kind == "3d-grid":
        graph = grid_3d(max(2, round(args.n ** (1 / 3))))
    elif args.kind == "rmat":
        graph = rmat(max(3, int(np.ceil(np.log2(max(args.n, 8))))), seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown kind {args.kind!r}")
    out = Path(args.output)
    if out.suffix == ".npz":
        save_npz(graph, out)
    elif out.suffix == ".adj":
        write_adjacency_graph(graph, out)
    else:
        write_edge_list(graph, out)
    print(f"wrote {graph!r} to {out}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    overrides = {}
    for setting in args.param:
        if "=" not in setting:
            raise SystemExit(f"error: --param expects key=value, got {setting!r}")
        key, _, raw = setting.partition("=")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        overrides[key] = value
    seed = args.seed if args.seed is not None else int(np.argmax(graph.degrees()))

    if args.profile:
        with track() as tracker:
            result = local_cluster(graph, seed, method=args.method, rng=args.rng, **overrides)
    else:
        result = local_cluster(graph, seed, method=args.method, rng=args.rng, **overrides)

    stats = cluster_stats(graph, result.cluster)
    print(f"graph: {graph!r}   seed: {seed}   method: {args.method}")
    print(f"cluster: |S|={stats.size} vol={stats.volume} cut={stats.boundary} "
          f"phi={stats.conductance:.5f}")
    print(f"diffusion: support={result.diffusion.support_size()} "
          f"iterations={result.diffusion.iterations} pushes={result.diffusion.pushes}")
    shown = ", ".join(map(str, result.cluster[: args.show].tolist()))
    more = ", ..." if result.size > args.show else ""
    print(f"members: [{shown}{more}]")
    if args.profile:
        t1 = PAPER_MACHINE.simulated_time(tracker, 1)
        t40 = PAPER_MACHINE.simulated_time_on_cores(tracker, 40)
        print(f"profile: work={tracker.work:.3g} depth={tracker.depth:.3g} "
              f"simT1={t1:.4g}s simT40={t40:.4g}s speedup={t1 / t40:.1f}x")
    return 0


def _cmd_ncp(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    profile = ncp_profile(
        graph,
        num_seeds=args.seeds,
        alphas=tuple(args.alpha),
        eps_values=tuple(args.eps),
        rng=args.rng,
    )
    sizes, phis = profile.series()
    out = Path(args.output)
    with out.open("w", encoding="ascii") as handle:
        handle.write("size,conductance\n")
        for size, phi in zip(sizes.tolist(), phis.tolist()):
            handle.write(f"{size},{phi}\n")
    best = sizes[np.argmin(phis)]
    print(f"{profile.runs} runs; best cluster: size {best}, phi {phis.min():.4f}")
    print(f"wrote {len(sizes)} points to {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel local graph clustering (Shun et al., VLDB 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("graphs", help="list the Table-2 proxy registry").set_defaults(
        run=_cmd_graphs
    )

    generate = commands.add_parser("generate", help="generate a graph and write it to disk")
    generate.add_argument("kind", choices=["proxy", "rand-local", "3d-grid", "rmat"])
    generate.add_argument("output", help="output path (.npz, .adj, or edge list)")
    generate.add_argument("--name", default="soc-LJ", help="proxy name (kind=proxy)")
    generate.add_argument("--n", type=int, default=10_000, help="vertex count (generators)")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(run=_cmd_generate)

    cluster = commands.add_parser("cluster", help="run one local clustering query")
    cluster.add_argument("graph", help="proxy name or graph file")
    cluster.add_argument("--method", choices=sorted(ALGORITHMS), default="pr-nibble")
    cluster.add_argument("--seed", type=int, default=None, help="seed vertex (default: max degree)")
    cluster.add_argument("--rng", type=int, default=0, help="randomness for rand-hk-pr")
    cluster.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter override (repeatable), e.g. --param eps=1e-5",
    )
    cluster.add_argument("--show", type=int, default=10, help="members to print")
    cluster.add_argument(
        "--profile",
        action="store_true",
        help="print the work-depth profile and simulated paper-machine times",
    )
    cluster.set_defaults(run=_cmd_cluster)

    ncp = commands.add_parser("ncp", help="generate a network community profile CSV")
    ncp.add_argument("graph", help="proxy name or graph file")
    ncp.add_argument("output", help="output CSV path")
    ncp.add_argument("--seeds", type=int, default=25)
    ncp.add_argument("--alpha", type=float, action="append", default=None)
    ncp.add_argument("--eps", type=float, action="append", default=None)
    ncp.add_argument("--rng", type=int, default=0)
    ncp.set_defaults(run=_cmd_ncp)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "ncp":
        if args.alpha is None:
            args.alpha = [0.05, 0.01]
        if args.eps is None:
            args.eps = [1e-4, 1e-5]
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
