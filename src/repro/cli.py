"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``graphs``
    List the Table-2 proxy registry (paper sizes vs proxy sizes).
``generate``
    Build a graph (proxy or named generator) and write it to disk.
``update``
    Apply batched edge insertions/deletions to a graph (the evolving
    plane, :mod:`repro.graph.evolving`) and write the resulting version;
    prints each version's content fingerprint and touched-vertex count.
``cluster``
    Run one local clustering query — the paper's interactive use case —
    against a proxy or a graph file, printing the cluster and, optionally,
    the work-depth profile with simulated paper-machine times.
``ncp``
    Generate a network community profile (Figure-12 style) as CSV.
``batch``
    Run a whole stream of diffusion jobs (seeds x parameter grid) through
    the batch engine — optionally across a process pool — writing one CSV
    row per job plus a throughput summary.
``cache``
    Inspect (``stats``) or empty (``clear``) an on-disk result cache
    directory, as populated by ``ncp``/``batch`` with ``--cache-dir``.
``serve``
    Run the async serving plane.  Default: a stdin/stdout JSON loop —
    one request object per input line (``{"seeds": 5, "method":
    "pr-nibble", "params": {"eps": 1e-5}}``), one reply object per
    output line, in request order.  With ``--listen HOST:PORT`` the same
    codec is served over TCP (NDJSON lines and HTTP/1.1 POST on one
    port) with per-client round-robin fairness, ``--rate``/``--burst``
    token-bucket limiting, ``--max-inflight``/``--max-pending`` caps and
    structured 429 backpressure — see ``docs/serving.md`` for wire
    schema v1.  Either way requests micro-batch onto one long-lived
    worker pool; ``"priority": "bulk"`` queues behind interactive
    requests, and a ``"kernel"`` field overrides the loop implementation
    per request.  Malformed requests get a structured ``{"error":
    {"message", "code", "field"}}`` reply naming the offending field.
``kernels``
    Show which loop implementations (:mod:`repro.kernels`) are available
    in this environment and what ``--kernel auto`` resolves to.

``ncp`` and ``batch`` accept ``--cache`` (memoise job outcomes in memory
for the run — overlapping grids coalesce) and ``--cache-dir DIR``
(persist outcomes on disk so repeated invocations replay instead of
re-diffusing).

``batch`` and ``serve`` accept ``--shards K`` (execute through the
sharded graph plane: the CSR is partitioned into K vertex-range shards,
each job routes to the shard(s) owning its seeds, and shards attach
lazily as diffusions cross boundaries) plus ``--max-resident-shards``
(bound resident graph memory), ``--spill-shards`` (whole-graph fallback
threshold) and ``--halo-bytes`` (budget of the boundary-row cache that
serves hot cross-shard reads without attaching the neighbour shard).

``cluster`` and ``serve`` accept ``--updates FILE`` (replay an
edge-update file into a version chain before running) and
``--at-version K`` (select which version to run against); ``serve``
additionally honours a per-request ``"graph_version"`` wire field, so
clients can keep querying a superseded version.

``cluster``, ``ncp``, ``batch`` and ``serve`` accept ``--kernel``
(``auto``/``python``/``numba``/``c``): the loop implementation for the
hot diffusion paths.  Results are bit-identical across kernels — the
flag only changes speed; ``auto`` picks the fastest available and
silently falls back to Python.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from .cache import DiskStore, resolve_cache
from .core import ALGORITHMS, cluster_stats, local_cluster, ncp_profile, random_seeds
from .engine import BatchEngine, BestClusterReducer, StatsReducer, job_grid
from .graph import (
    PROXIES,
    grid_3d,
    load_npz,
    load_proxy,
    proxy_names,
    rand_local,
    read_adjacency_graph,
    read_edge_list,
    rmat,
    save_npz,
    write_adjacency_graph,
    write_edge_list,
)
from .runtime import PAPER_MACHINE, track

__all__ = ["main", "build_parser"]


def _load_graph(spec: str):
    """A graph from a proxy name or a file path (by extension)."""
    if spec in PROXIES:
        return load_proxy(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(f"error: {spec!r} is neither a proxy name nor a file")
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix == ".adj":
        return read_adjacency_graph(path)
    return read_edge_list(path)


def _cmd_graphs(args: argparse.Namespace) -> int:
    print(f"{'name':<16} {'paper n':>15} {'paper m':>15} {'proxy family'}")
    for name in proxy_names():
        spec = PROXIES[name]
        print(f"{name:<16} {spec.paper_vertices:>15,} {spec.paper_edges:>15,} {spec.kind}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "proxy":
        graph = load_proxy(args.name, scale=args.scale, seed=args.seed)
    elif args.kind == "rand-local":
        graph = rand_local(args.n, seed=args.seed)
    elif args.kind == "3d-grid":
        graph = grid_3d(max(2, round(args.n ** (1 / 3))))
    elif args.kind == "rmat":
        graph = rmat(max(3, int(np.ceil(np.log2(max(args.n, 8))))), seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown kind {args.kind!r}")
    out = Path(args.output)
    if out.suffix == ".npz":
        save_npz(graph, out)
    elif out.suffix == ".adj":
        write_adjacency_graph(graph, out)
    else:
        write_edge_list(graph, out)
    print(f"wrote {graph!r} to {out}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .graph import EvolvingGraph

    graph = _load_graph(args.graph)
    batches = _load_update_batches(args.updates) if args.updates else []
    loose_inserts = [tuple(edge) for edge in (args.insert or [])]
    loose_deletes = [tuple(edge) for edge in (args.delete or [])]
    if loose_inserts or loose_deletes:
        batches.append((loose_inserts, loose_deletes))
    if not batches:
        raise SystemExit(
            "error: nothing to apply; pass --insert/--delete or --updates FILE"
        )
    chain = (
        EvolvingGraph(graph)
        if args.rebuild_threshold is None
        else EvolvingGraph(graph, rebuild_threshold=args.rebuild_threshold)
    )
    print(f"version 0: fingerprint {chain.at(0).fingerprint()[:12]} ({graph!r})")
    for inserts, deletes in batches:
        try:
            version = chain.apply_updates(insertions=inserts, deletions=deletes)
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
        materialized = "rebuild" if version.rebuilt else "delta-splice"
        print(
            f"version {version.version}: fingerprint {version.fingerprint()[:12]} "
            f"+{len(inserts)}/-{len(deletes)} requested, "
            f"{len(version.touched)} vertices touched ({materialized})"
        )
    final = chain.latest.graph
    out = Path(args.output)
    if out.suffix == ".npz":
        save_npz(final, out)
    elif out.suffix == ".adj":
        write_adjacency_graph(final, out)
    else:
        write_edge_list(final, out)
    print(f"wrote {final!r} to {out}")
    return 0


def _parse_scalar(raw: str) -> object:
    """int, else float, else the raw string — the --param value grammar."""
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def _parse_params(pairs: list[str], flag: str = "--param") -> dict[str, object]:
    overrides: dict[str, object] = {}
    for setting in pairs:
        if "=" not in setting:
            raise SystemExit(f"error: {flag} expects key=value, got {setting!r}")
        key, _, raw = setting.partition("=")
        overrides[key] = _parse_scalar(raw)
    return overrides


def _load_update_batches(path: str) -> list[tuple[list[tuple[int, int]], list[tuple[int, int]]]]:
    """Parse an edge-update file into ``(insertions, deletions)`` batches.

    One update per line: ``+ u v`` inserts the undirected edge ``{u, v}``,
    ``- u v`` deletes it.  A line holding only ``--`` closes the current
    batch (each batch becomes one graph version); blank lines and ``#``
    comments are ignored.
    """
    batches: list[tuple[list[tuple[int, int]], list[tuple[int, int]]]] = []
    inserts: list[tuple[int, int]] = []
    deletes: list[tuple[int, int]] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "--":
            if inserts or deletes:
                batches.append((inserts, deletes))
                inserts, deletes = [], []
            continue
        parts = line.split()
        if len(parts) != 3 or parts[0] not in "+-":
            raise SystemExit(
                f"error: {path}:{lineno}: expected '+ u v', '- u v' or '--', "
                f"got {raw!r}"
            )
        try:
            edge = (int(parts[1]), int(parts[2]))
        except ValueError:
            raise SystemExit(
                f"error: {path}:{lineno}: vertex ids must be integers, got {raw!r}"
            ) from None
        (inserts if parts[0] == "+" else deletes).append(edge)
    if inserts or deletes:
        batches.append((inserts, deletes))
    return batches


def _evolving_from_args(graph, args: argparse.Namespace):
    """Lift a loaded graph into the version chain --updates/--at-version ask
    for; returns the graph unchanged when neither flag is set."""
    from .graph import EvolvingGraph

    if args.updates is None and args.at_version is None:
        return graph
    chain = EvolvingGraph(graph)
    if args.updates is not None:
        for inserts, deletes in _load_update_batches(args.updates):
            chain.apply_updates(insertions=inserts, deletions=deletes)
    if args.at_version is not None and args.at_version >= len(chain):
        raise SystemExit(
            f"error: --at-version {args.at_version} does not exist "
            f"(the chain has versions 0..{len(chain) - 1})"
        )
    return chain


def _cmd_cluster(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    loaded = _evolving_from_args(graph, args)
    if loaded is not graph:
        version = loaded.at(args.at_version)
        print(
            f"version {version.version}/{len(loaded) - 1}: "
            f"fingerprint {version.fingerprint()[:12]}"
        )
        graph = version.graph
    overrides = _parse_params(args.param)
    seed = args.seed if args.seed is not None else int(np.argmax(graph.degrees()))

    if args.profile:
        with track() as tracker:
            result = local_cluster(
                graph, seed, method=args.method, rng=args.rng, kernel=args.kernel, **overrides
            )
    else:
        result = local_cluster(
            graph, seed, method=args.method, rng=args.rng, kernel=args.kernel, **overrides
        )

    stats = cluster_stats(graph, result.cluster)
    print(f"graph: {graph!r}   seed: {seed}   method: {args.method}")
    print(f"cluster: |S|={stats.size} vol={stats.volume} cut={stats.boundary} "
          f"phi={stats.conductance:.5f}")
    print(f"diffusion: support={result.diffusion.support_size()} "
          f"iterations={result.diffusion.iterations} pushes={result.diffusion.pushes}")
    shown = ", ".join(map(str, result.cluster[: args.show].tolist()))
    more = ", ..." if result.size > args.show else ""
    print(f"members: [{shown}{more}]")
    if args.profile:
        t1 = PAPER_MACHINE.simulated_time(tracker, 1)
        t40 = PAPER_MACHINE.simulated_time_on_cores(tracker, 40)
        print(f"profile: work={tracker.work:.3g} depth={tracker.depth:.3g} "
              f"simT1={t1:.4g}s simT40={t40:.4g}s speedup={t1 / t40:.1f}x")
    return 0


def _cache_from_args(args: argparse.Namespace):
    """The run's ResultCache (or None) from --cache / --cache-dir."""
    return resolve_cache(args.cache_dir or (True if args.cache else None))


def _cmd_ncp(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    cache = _cache_from_args(args)
    profile = ncp_profile(
        graph,
        num_seeds=args.seeds,
        alphas=tuple(args.alpha),
        eps_values=tuple(args.eps),
        rng=args.rng,
        workers=args.workers,
        cache=cache,
        start_method=args.start_method,
        schedule=args.schedule,
        kernel=args.kernel,
    )
    sizes, phis = profile.series()
    out = Path(args.output)
    with out.open("w", encoding="ascii") as handle:
        handle.write("size,conductance\n")
        for size, phi in zip(sizes.tolist(), phis.tolist()):
            handle.write(f"{size},{phi}\n")
    best = sizes[np.argmin(phis)]
    print(f"{profile.runs} runs; best cluster: size {best}, phi {phis.min():.4f}")
    print(f"wrote {len(sizes)} points to {out}")
    if cache is not None:
        print(f"cache: {cache.stats.describe()}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    if args.seed:
        seeds = np.asarray(args.seed, dtype=np.int64)
        bad = seeds[(seeds < 0) | (seeds >= graph.num_vertices)]
        if len(bad):
            raise SystemExit(
                f"error: seed {bad[0]} out of range for {graph!r} "
                f"(vertex ids are 0..{graph.num_vertices - 1})"
            )
    else:
        seeds = random_seeds(graph, args.num_seeds, rng=args.rng)
    grid: dict[str, list[object]] = {}
    for setting in args.grid:
        if "=" not in setting:
            raise SystemExit(f"error: --grid expects key=v1,v2,..., got {setting!r}")
        key, _, raw = setting.partition("=")
        values = [_parse_scalar(item) for item in raw.split(",") if item]
        if not values:
            raise SystemExit(f"error: --grid axis {key!r} has no values")
        grid[key] = values
    fixed = _parse_params(args.param)
    jobs = list(job_grid(seeds, args.method, grid, params=fixed, rng=args.rng))

    workers = max(1, args.workers)
    cache = _cache_from_args(args)
    _check_shard_flags(args)
    if args.shards is not None:
        _check_shard_conflicts(args, workers)
        engine = BatchEngine(
            graph,
            backend="sharded",
            shards=args.shards,
            max_resident_shards=args.max_resident_shards,
            spill_shards=args.spill_shards,
            halo_bytes=args.halo_bytes,
            include_vectors=False,
            cache=cache,
            kernel=args.kernel,
        )
    else:
        engine = BatchEngine(
            graph,
            backend="process" if workers > 1 else "serial",
            workers=workers,
            include_vectors=False,
            cache=cache,
            start_method=args.start_method,
            schedule=args.schedule,
            kernel=args.kernel,
        )
    # Stream outcomes straight to CSV so a large batch never lives in memory.
    stats_reducer = StatsReducer(engine=engine)
    best_reducer = BestClusterReducer()
    out = Path(args.output)
    start = time.perf_counter()
    with out.open("w", encoding="ascii") as handle:
        handle.write("job,method,seed,params,support,size,conductance,pushes,iterations,seconds\n")
        for outcome in engine.map(jobs):
            stats_reducer.update(outcome)
            best_reducer.update(outcome)
            settings = ";".join(f"{k}={v}" for k, v in sorted(outcome.job.params.items()))
            phi = f"{outcome.conductance:.6g}" if outcome.sweep is not None else ""
            handle.write(
                f"{outcome.index},{outcome.job.method},"
                f"{' '.join(map(str, outcome.job.seeds))},{settings},"
                f"{outcome.support_size},{outcome.size},{phi},"
                f"{outcome.pushes},{outcome.iterations},{outcome.wall_seconds:.6f}\n"
            )
    wall = time.perf_counter() - start
    stats = stats_reducer.finalize()
    best = best_reducer.finalize()
    print(
        f"batch: {stats.jobs} jobs ({stats.completed} with support) on {graph!r} "
        f"via {workers} worker(s)"
    )
    print(
        f"throughput: {wall:.3f}s wall, {stats.jobs_per_second(wall):.1f} jobs/s, "
        f"{stats.total_pushes} pushes, {stats.total_touched_edges} edges touched"
    )
    if best is not None:
        print(
            f"best cluster: |S|={best.size} phi={best.conductance:.5f} "
            f"from job {best.index} ({best.job.describe()})"
        )
    print(f"wrote {stats.jobs} rows to {out}")
    if cache is not None:
        print(f"cache: {cache.stats.describe()}")
    if args.stats:
        _print_scheduler_stats(engine, stats)
    return 0


def _print_scheduler_stats(engine: BatchEngine, stats) -> None:
    """The --stats report: per-worker dispatch accounting + calibration."""
    dispatch = stats.dispatch
    if dispatch is None:
        print("scheduler: no pool dispatch (serial or sharded backend)")
    else:
        print(
            f"scheduler: {dispatch['units']} units, {dispatch['steals']} steals, "
            f"busy {dispatch['busy_seconds']:.3f}s, idle {dispatch['idle_seconds']:.3f}s "
            f"across {dispatch['workers_seen']} worker(s)"
        )
        per_worker = engine.dispatch_stats.per_worker
        for pid in sorted(per_worker):
            worker = per_worker[pid]
            print(
                f"  worker {pid}: units={worker.units} jobs={worker.jobs} "
                f"busy={worker.busy_seconds:.3f}s idle={worker.idle_seconds:.3f}s "
                f"steals={worker.steals}"
            )
    if stats.cost_calibration:
        print("calibration (seconds per work unit):")
        for key, entry in stats.cost_calibration.items():
            print(
                f"  {key}: spu={entry['seconds_per_unit']:.3g} "
                f"samples={int(entry['samples'])}"
            )


def _serve_options(args: argparse.Namespace, cache) -> "object":
    """The serving engine's knobs as one canonical EngineOptions record."""
    from .core.options import EngineOptions

    workers = max(1, args.workers)
    if args.shards is not None:
        return EngineOptions(
            backend="sharded",
            shards=args.shards,
            max_resident_shards=args.max_resident_shards,
            spill_shards=args.spill_shards,
            halo_bytes=args.halo_bytes,
            include_vectors=False,
            cache=cache,
            kernel=args.kernel,
            graph_version=args.at_version,
        )
    return EngineOptions(
        workers=workers if workers > 1 else None,
        include_vectors=False,
        cache=cache,
        start_method=args.start_method,
        schedule=args.schedule,
        kernel=args.kernel,
        graph_version=args.at_version,
    )


def _parse_listen(spec: str) -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(
            f"error: --listen expects HOST:PORT (PORT may be 0), got {spec!r}"
        )
    return (host or "127.0.0.1", int(port))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .core.options import RequestError
    from .serve import DiffusionService
    from .serve.protocol import error_reply, outcome_reply, parse_request_line

    graph = _evolving_from_args(_load_graph(args.graph), args)
    cache = _cache_from_args(args)
    workers = max(1, args.workers)
    _check_shard_flags(args)
    if args.shards is not None:
        _check_shard_conflicts(args, workers)
    elif workers == 1 and args.start_method is not None:
        raise SystemExit(
            "error: --start-method configures the worker pool; pass --workers > 1"
        )
    service = DiffusionService(
        graph,
        options=_serve_options(args, cache),
        max_batch=args.max_batch,
        max_linger=args.max_linger / 1000.0,
        max_batch_cost=args.max_batch_cost,
    )
    stream_in = sys.stdin
    stream_out = sys.stdout

    def _ingest(loop, text: str, default_id: int):
        """One raw request line -> a future reply object (shared codec)."""
        reply = loop.create_future()
        request_id: object = default_id
        try:
            request = parse_request_line(text, default_method=args.method)
            if request.id is not None:
                request_id = request.id
            future = service.submit(
                request.job(),
                priority=request.priority,
                graph_version=request.graph_version,
            )
        except Exception as error:
            # A malformed line answers with a structured error object
            # (RequestError carries the offending field); the service —
            # and every other pending request — keeps going.
            reply.set_result(error_reply(error, request_id))
            return reply

        def _resolve(done) -> None:
            if done.cancelled() or done.exception() is not None:
                error = done.exception() if not done.cancelled() else (
                    RequestError(None, "request dropped during shutdown", code=503)
                )
                reply.set_result(error_reply(error, request_id))
            else:
                reply.set_result(
                    outcome_reply(request_id, done.result(), request.include_cluster)
                )

        future.add_done_callback(_resolve)
        return reply

    async def _stdin_loop() -> int:
        loop = asyncio.get_running_loop()
        results: asyncio.Queue = asyncio.Queue()

        async def printer() -> None:
            # Replies print in request order — each awaited future may
            # have resolved long ago while later requests streamed in.
            while True:
                item = await results.get()
                if item is None:
                    return
                print(json.dumps(await item), file=stream_out, flush=True)

        async with service:
            printer_task = asyncio.create_task(printer())
            counter = 0
            while True:
                line = await loop.run_in_executor(None, stream_in.readline)
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                counter += 1
                await results.put(_ingest(loop, line, counter))
            await results.put(None)
            await printer_task
        print(f"serve: {service.stats.describe()}", file=sys.stderr)
        if cache is not None:
            print(f"cache: {cache.stats.describe()}", file=sys.stderr)
        return 0

    async def _listen_loop(host: str, port: int) -> int:
        import signal
        import threading

        from .serve import DiffusionServer

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        async with service:
            server = DiffusionServer(
                service,
                host,
                port,
                max_pending=args.max_pending,
                max_inflight=args.max_inflight,
                rate=args.rate,
                burst=args.burst,
                default_method=args.method,
            )
            async with server:
                assert server.address is not None
                bound_host, bound_port = server.address
                print(
                    f"serve: listening on {bound_host}:{bound_port}",
                    file=sys.stderr,
                    flush=True,
                )
                for signum in (signal.SIGINT, signal.SIGTERM):
                    try:
                        loop.add_signal_handler(signum, stop.set)
                    except (NotImplementedError, RuntimeError):  # pragma: no cover
                        pass

                def _watch_stdin() -> None:
                    # A closed stdin also stops the server — the clean way
                    # for a supervisor (or a test) to ask for a drain.
                    try:
                        while stream_in.readline():
                            pass
                    except ValueError:  # stdin already closed
                        pass
                    loop.call_soon_threadsafe(stop.set)

                threading.Thread(target=_watch_stdin, daemon=True).start()
                await stop.wait()
            print(f"serve: {server.stats.describe()}", file=sys.stderr)
        print(f"serve: {service.stats.describe()}", file=sys.stderr)
        if cache is not None:
            print(f"cache: {cache.stats.describe()}", file=sys.stderr)
        return 0

    if args.listen is not None:
        host, port = _parse_listen(args.listen)
        return asyncio.run(_listen_loop(host, port))
    return asyncio.run(_stdin_loop())


def _cmd_kernels(args: argparse.Namespace) -> int:
    from .kernels import KERNELS, available_kernels, resolve_kernel

    ready = available_kernels()
    for name in KERNELS:
        status = "available" if name in ready else "unavailable"
        print(f"{name:<8} {status}")
    print(f"auto -> {resolve_kernel('auto')}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.cli import run

    return run(
        args.paths,
        as_json=args.as_json,
        select=args.select,
        list_rules=args.list_rules,
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    try:
        store = DiskStore(args.cache_dir, create=False)
    except FileNotFoundError as error:
        raise SystemExit(f"error: {error}") from None
    if args.action == "stats":
        entries = len(store)
        print(f"cache dir: {store.directory}")
        print(f"entries: {entries}   bytes: {store.nbytes:,}")
        return 0
    removed = store.clear()
    print(f"removed {removed} entries from {store.directory}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel local graph clustering (Shun et al., VLDB 2016 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("graphs", help="list the Table-2 proxy registry").set_defaults(
        run=_cmd_graphs
    )

    generate = commands.add_parser("generate", help="generate a graph and write it to disk")
    generate.add_argument("kind", choices=["proxy", "rand-local", "3d-grid", "rmat"])
    generate.add_argument("output", help="output path (.npz, .adj, or edge list)")
    generate.add_argument("--name", default="soc-LJ", help="proxy name (kind=proxy)")
    generate.add_argument("--n", type=int, default=10_000, help="vertex count (generators)")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(run=_cmd_generate)

    update = commands.add_parser(
        "update",
        help="apply batched edge updates to a graph and write the result",
    )
    update.add_argument("graph", help="proxy name or graph file")
    update.add_argument("output", help="output path (.npz, .adj, or edge list)")
    update.add_argument(
        "--insert",
        nargs=2,
        type=int,
        action="append",
        metavar=("U", "V"),
        help="insert the undirected edge {U, V} (repeatable)",
    )
    update.add_argument(
        "--delete",
        nargs=2,
        type=int,
        action="append",
        metavar=("U", "V"),
        help="delete the undirected edge {U, V} (repeatable)",
    )
    update.add_argument(
        "--updates",
        default=None,
        metavar="FILE",
        help="edge-update file: '+ u v' / '- u v' lines; a line holding "
        "'--' closes a batch (each batch becomes one version)",
    )
    update.add_argument(
        "--rebuild-threshold",
        type=float,
        default=None,
        help="delta fraction of the edge count above which a version is "
        "rebuilt from edge arrays instead of spliced (default 0.25)",
    )
    update.set_defaults(run=_cmd_update)

    cluster = commands.add_parser("cluster", help="run one local clustering query")
    cluster.add_argument("graph", help="proxy name or graph file")
    cluster.add_argument("--method", choices=sorted(ALGORITHMS), default="pr-nibble")
    cluster.add_argument("--seed", type=int, default=None, help="seed vertex (default: max degree)")
    cluster.add_argument("--rng", type=int, default=0, help="randomness for rand-hk-pr")
    cluster.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="algorithm parameter override (repeatable), e.g. --param eps=1e-5",
    )
    cluster.add_argument("--show", type=int, default=10, help="members to print")
    cluster.add_argument(
        "--profile",
        action="store_true",
        help="print the work-depth profile and simulated paper-machine times",
    )
    _add_kernel_flag(cluster)
    _add_version_flags(cluster)
    cluster.set_defaults(run=_cmd_cluster)

    ncp = commands.add_parser("ncp", help="generate a network community profile CSV")
    ncp.add_argument("graph", help="proxy name or graph file")
    ncp.add_argument("output", help="output CSV path")
    ncp.add_argument("--seeds", type=int, default=25)
    ncp.add_argument("--alpha", type=float, action="append", default=None)
    ncp.add_argument("--eps", type=float, action="append", default=None)
    ncp.add_argument("--rng", type=int, default=0)
    ncp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for the batch engine (1 = serial)",
    )
    _add_pool_flags(ncp)
    _add_kernel_flag(ncp)
    _add_cache_flags(ncp)
    ncp.set_defaults(run=_cmd_ncp)

    batch = commands.add_parser(
        "batch", help="run a stream of diffusion jobs through the batch engine"
    )
    batch.add_argument("graph", help="proxy name or graph file")
    batch.add_argument("output", help="output CSV path (one row per job)")
    batch.add_argument("--method", choices=sorted(ALGORITHMS), default="pr-nibble")
    batch.add_argument(
        "--num-seeds", type=int, default=25, help="random seeds to draw (ignored with --seed)"
    )
    batch.add_argument(
        "--seed",
        type=int,
        action="append",
        default=[],
        metavar="VERTEX",
        help="explicit seed vertex (repeatable; overrides --num-seeds)",
    )
    batch.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="parameter axis to sweep, e.g. --grid alpha=0.05,0.01 (repeatable)",
    )
    batch.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="fixed parameter override applied to every job (repeatable)",
    )
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool workers (1 = serial)"
    )
    batch.add_argument("--rng", type=int, default=0)
    batch.add_argument(
        "--stats",
        action="store_true",
        help="print scheduler diagnostics after the run: per-worker "
        "busy/idle seconds and steal counts, plus the online "
        "cost-calibration snapshot",
    )
    _add_pool_flags(batch)
    _add_shard_flags(batch)
    _add_kernel_flag(batch)
    _add_cache_flags(batch)
    batch.set_defaults(run=_cmd_batch)

    serve = commands.add_parser(
        "serve",
        help="serve queries over stdin/stdout JSON lines through the async "
        "serving plane (micro-batched onto one long-lived pool)",
    )
    serve.add_argument("graph", help="proxy name or graph file")
    serve.add_argument(
        "--method",
        choices=sorted(ALGORITHMS),
        default="pr-nibble",
        help="default method for requests that do not name one",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="process-pool workers (1 = in-process)"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="most jobs per micro-batch (smaller = lower interactive latency)",
    )
    serve.add_argument(
        "--max-linger",
        type=float,
        default=2.0,
        help="milliseconds a request may wait for batch-mates (default 2)",
    )
    serve.add_argument(
        "--max-batch-cost",
        type=float,
        default=None,
        metavar="COST",
        help="cap a batch's summed scheduler cost estimate, bounding how "
        "long an interactive request can wait behind bulk work",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve over TCP instead of stdin: NDJSON and HTTP/1.1 POST on "
        "one port (wire schema v1), per-client round-robin fairness, "
        "rate limiting and backpressure; PORT 0 binds an ephemeral port "
        "(the bound address is printed to stderr)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="with --listen: per-client token-bucket admission rate "
        "(requests/second; default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="with --listen: token-bucket depth (default: max(1, RATE))",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        metavar="N",
        help="with --listen: per-client cap on admitted-but-unanswered "
        "requests (default 8)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="with --listen: per-client admission-queue depth; beyond it "
        "requests get a structured 429 reply (default 64)",
    )
    _add_pool_flags(serve)
    _add_shard_flags(serve)
    _add_kernel_flag(serve)
    _add_cache_flags(serve)
    _add_version_flags(serve)
    serve.set_defaults(run=_cmd_serve)

    kernels = commands.add_parser(
        "kernels", help="show which loop implementations are available"
    )
    kernels.set_defaults(run=_cmd_kernels)

    cache = commands.add_parser(
        "cache", help="inspect or clear an on-disk result cache directory"
    )
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir", required=True, help="result cache directory (see --cache-dir)"
    )
    cache.set_defaults(run=_cmd_cache)

    analyze = commands.add_parser(
        "analyze",
        help="run the AST invariant checker (knob threading, resource "
        "lifecycle, determinism, error surface; see docs/invariants.md)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: the repro package)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report",
    )
    analyze.add_argument(
        "--select", metavar="RULES", help="comma-separated rule ids to run"
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and what they check, then exit",
    )
    analyze.set_defaults(run=_cmd_analyze)
    return parser


def _add_pool_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--start-method",
        default=None,
        metavar="METHOD",
        help="multiprocessing start method for the worker pool (fork, spawn, "
        "forkserver; default: $REPRO_START_METHOD or the platform's best). "
        "Every method fans out — non-fork ones attach the graph via shared "
        "memory",
    )
    parser.add_argument(
        "--schedule",
        choices=["cost", "fifo"],
        default="cost",
        help="dispatch policy: 'cost' feeds workers fine-grained units in "
        "heaviest-first order from the O(1/(eps*alpha))-style work bounds "
        "— workers steal the next unit as they finish (default); 'fifo' "
        "uses pre-planned contiguous count-based chunks",
    )


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=["auto", "python", "numba", "c"],
        default=None,
        metavar="KERNEL",
        help="loop implementation for the hot diffusion paths (auto, python, "
        "numba, c).  Results are bit-identical across kernels; 'auto' picks "
        "the fastest available and falls back to python (default: python)",
    )


def _add_version_flags(parser: argparse.ArgumentParser) -> None:
    """The evolving-graph flags (``cluster`` and ``serve``): build a
    version chain from an update file and select which version to run."""
    parser.add_argument(
        "--updates",
        default=None,
        metavar="FILE",
        help="edge-update file applied to the loaded graph before running: "
        "'+ u v' / '- u v' lines, '--' separates version batches "
        "(see `repro update`)",
    )
    parser.add_argument(
        "--at-version",
        type=int,
        default=None,
        dest="at_version",
        help="run against this version of the update chain "
        "(default: the latest; version 0 is the loaded graph)",
    )


def _check_shard_flags(args: argparse.Namespace) -> None:
    """Shard tuning flags are meaningless without --shards; reject them
    loudly rather than silently running unsharded."""
    if args.shards is not None:
        return
    for flag, value in (
        ("--max-resident-shards", args.max_resident_shards),
        ("--spill-shards", args.spill_shards),
        ("--halo-bytes", args.halo_bytes),
    ):
        if value is not None:
            raise SystemExit(f"error: {flag} requires --shards")


def _check_shard_conflicts(args: argparse.Namespace, workers: int) -> None:
    """--shards selects the in-process shard router; pool flags don't apply."""
    if workers > 1:
        raise SystemExit(
            "error: --shards routes jobs in-process; it is incompatible "
            "with --workers > 1"
        )
    if args.start_method is not None:
        raise SystemExit(
            "error: --start-method configures the worker pool; it does not "
            "apply with --shards"
        )
    if args.schedule != "cost":
        raise SystemExit(
            "error: --schedule packs process-pool chunks; it does not "
            "apply with --shards"
        )


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="partition the graph into K contiguous vertex-range shards and "
        "route each job to the shard(s) owning its seeds; shards attach "
        "lazily, so the whole graph need not stay resident (in-process; "
        "incompatible with --workers > 1)",
    )
    parser.add_argument(
        "--max-resident-shards",
        type=int,
        default=None,
        metavar="N",
        help="with --shards: keep at most N shards attached at once "
        "(least-recently-used detach) — bounds resident graph memory",
    )
    parser.add_argument(
        "--spill-shards",
        type=int,
        default=None,
        metavar="N",
        help="with --shards: a job touching more than N distinct shards "
        "falls back to whole-graph execution (results are identical "
        "either way)",
    )
    parser.add_argument(
        "--halo-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="with --shards: byte budget of the per-view halo cache — hot "
        "boundary-vertex rows served without attaching the neighbour "
        "shard (default 1 MiB; 0 disables)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        action="store_true",
        help="memoise job outcomes in memory for this run (overlapping "
        "grid entries and repeated seeds coalesce)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist job outcomes under DIR so repeated invocations "
        "replay cached results instead of re-diffusing (implies --cache)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) == "ncp":
        if args.alpha is None:
            args.alpha = [0.05, 0.01]
        if args.eps is None:
            args.eps = [1e-4, 1e-5]
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
