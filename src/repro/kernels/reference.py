"""Pure-Python array-level twins of the compiled kernels.

These functions define the *kernel contract*: flat CSR arrays in, flat
key/value arrays out, with every floating-point operation performed in
exactly the order the sequential reference algorithms in
:mod:`repro.core` perform it.  The numba (:mod:`repro.kernels._numba`)
and C (:mod:`repro.kernels._ckernels`) implementations are line-for-line
transliterations of these loops, which is what makes the differential
suite's bit-identity assertions meaningful: any divergence is a kernel
bug, never a tolerance question.

They are *not* the implementations the ``kernel="python"`` path runs —
that path is the original object-level code in :mod:`repro.core`
(``SparseDict`` + ``deque``), kept untouched as the behavioural anchor.
These twins exist so the always-available fallback and the compiled
kernels share one shape, and so the compiled kernels can be tested
against a second, independent Python rendering of the same loop.

Two ordering invariants matter beyond the numerics, because
:func:`repro.core.result.vector_items` serialises ``SparseDict`` entries
in dict **insertion** order (never sorted):

* ``p`` keys appear in first-push order;
* ``r`` keys appear seeds-first (ascending — the seed array is already
  ``np.unique``-sorted), then in first-touch order.

All kernels replicate both, so rebuilt sparse vectors — and therefore
cached payloads and cross-process outcomes — are bit-identical to the
reference including entry order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ppr_push", "sweep_scan", "walk_filter", "walk_advance"]


def ppr_push(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    seeds: np.ndarray,
    alpha: float,
    eps: float,
    optimized: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """The queue-based PR-Nibble push loop over raw CSR arrays.

    Mirrors :func:`repro.core.pr_nibble.pr_nibble_sequential` operation
    for operation.  Returns ``(p_keys, p_values, r_keys, r_values,
    pushes, touched_edges)`` with keys in dict-insertion order (see the
    module docstring).
    """
    n = len(offsets) - 1
    p = np.zeros(n, dtype=np.float64)
    r = np.zeros(n, dtype=np.float64)
    in_p = np.zeros(n, dtype=np.bool_)
    in_r = np.zeros(n, dtype=np.bool_)
    queued = np.zeros(n, dtype=np.bool_)
    p_order = np.empty(n, dtype=np.int64)
    r_order = np.empty(n, dtype=np.int64)
    num_p = 0
    num_r = 0

    num_seeds = len(seeds)
    r0 = 1.0 / num_seeds
    queue: list[int] = []
    for s in seeds.tolist():
        r[s] = r0
        in_r[s] = True
        r_order[num_r] = s
        num_r += 1
        queue.append(s)
        queued[s] = True

    pushes = 0
    touched_edges = 0
    head = 0
    while head < len(queue):
        vertex = queue[head]
        head += 1
        queued[vertex] = False
        degree = int(offsets[vertex + 1] - offsets[vertex])
        if degree == 0:
            continue
        threshold = eps * degree
        while r[vertex] >= threshold:
            residual = float(r[vertex])
            if optimized:
                gain = (2.0 * alpha / (1.0 + alpha)) * residual
                share = ((1.0 - alpha) / (1.0 + alpha)) * residual / degree
                r[vertex] = 0.0
            else:
                gain = alpha * residual
                share = (1.0 - alpha) * residual / (2.0 * degree)
                r[vertex] = (1.0 - alpha) * residual / 2.0
            if not in_p[vertex]:
                in_p[vertex] = True
                p_order[num_p] = vertex
                num_p += 1
            p[vertex] += gain
            pushes += 1
            touched_edges += degree
            for edge in range(int(offsets[vertex]), int(offsets[vertex + 1])):
                neighbor = int(neighbors[edge])
                if not in_r[neighbor]:
                    in_r[neighbor] = True
                    r_order[num_r] = neighbor
                    num_r += 1
                r[neighbor] += share
                if not queued[neighbor]:
                    nb_degree = int(offsets[neighbor + 1] - offsets[neighbor])
                    if r[neighbor] >= eps * nb_degree:
                        queue.append(neighbor)
                        queued[neighbor] = True
    p_keys = p_order[:num_p].copy()
    r_keys = r_order[:num_r].copy()
    return p_keys, p[p_keys], r_keys, r[r_keys], pushes, touched_edges


def sweep_scan(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    ordered: np.ndarray,
    degrees: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The incremental sweep-cut membership scan over raw CSR arrays.

    Mirrors the loop body of :func:`repro.core.sweep.sweep_cut_sequential`
    (all-integer arithmetic, so bit-identity is structural).  Returns the
    ``(volumes, cuts)`` prefix profiles.
    """
    n = len(ordered)
    members = np.zeros(len(offsets) - 1, dtype=np.bool_)
    volumes = np.empty(n, dtype=np.int64)
    cuts = np.empty(n, dtype=np.int64)
    vol = 0
    cut = 0
    for i in range(n):
        vertex = int(ordered[i])
        vol += int(degrees[i])
        for edge in range(int(offsets[vertex]), int(offsets[vertex + 1])):
            if members[neighbors[edge]]:
                cut -= 1
            else:
                cut += 1
        members[vertex] = True
        volumes[i] = vol
        cuts[i] = cut
    return volumes, cuts


def walk_filter(
    offsets: np.ndarray,
    current: np.ndarray,
    active: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Drop walks whose current vertex is a dead end.

    Returns ``(active_kept, vertices_kept)`` in input order — the lanes
    that will consume one uniform draw each this step, matching the
    ``degrees > 0`` filter in
    :func:`repro.core.rand_hk_pr.rand_hk_pr_parallel` exactly (integer
    comparisons only).
    """
    vertices = current[active]
    walkable = (offsets[vertices + 1] - offsets[vertices]) > 0
    return active[walkable], vertices[walkable]


def walk_advance(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    current: np.ndarray,
    active: np.ndarray,
    vertices: np.ndarray,
    uniforms: np.ndarray,
) -> None:
    """Advance each kept walk by one uniformly random neighbor, in place.

    ``pick = trunc(u * degree)`` reproduces numpy's
    ``(rng.random(k) * degrees).astype(np.int64)`` — one multiply and one
    truncation per lane, in the same order.
    """
    degrees = offsets[vertices + 1] - offsets[vertices]
    pick = (uniforms * degrees).astype(np.int64)
    current[active] = neighbors[offsets[vertices] + pick]
