"""Compiled kernel plane: the three hot loops, selectable at run time.

The paper's headline numbers come from tight shared-memory loops; this
package provides compiled implementations of the three hottest ones —
the PR-Nibble push loop, the sweep-cut membership scan, and random-walk
stepping — behind a single ``kernel=`` knob threaded through
:func:`repro.local_cluster`, :class:`repro.engine.DiffusionJob`/
:class:`~repro.engine.BatchEngine`, :class:`repro.serve.DiffusionService`
and the CLI.

Backends
--------
``"python"``
    The original object-level reference loops in :mod:`repro.core`,
    untouched.  Always available; the default (``kernel=None``).
``"numba"``
    JIT-compiled twins (:mod:`repro.kernels._numba`).  Requires the
    optional ``repro[kernels]`` extra; requesting it without numba
    installed raises :class:`KernelUnavailableError`.
``"c"``
    The same loops as C, compiled once with the system compiler and
    loaded via ctypes (:mod:`repro.kernels._ckernels`).  Available
    wherever ``cc``/``gcc``/``clang`` is on PATH — no new dependency.
``"auto"``
    Probe once per process and pick the best available
    (numba > c > python), degrading silently to ``"python"`` when no
    compiled backend works.

Every kernel operates on raw CSR arrays (``offsets``/``neighbors``), so
compiled execution composes with :class:`repro.graph.shared.SharedCSR`
zero-copy attach for free; :class:`repro.graph.sharded.ShardedGraphView`
exposes no whole-graph arrays (:func:`csr_arrays` returns ``None``), so
jobs running on shard views escalate to the Python path — bit-identical
either way.  Recorded work/depth profiles and cache keys are identical
across kernels, so :class:`repro.cache.ResultCache` entries are
kernel-agnostic: an outcome written under one kernel replays under any
other.

Runnable example — the compiled result is bit-identical to the
reference, including sparse-vector entry order:

>>> from repro.kernels import available_kernels, resolve_kernel
>>> resolve_kernel(None)
'python'
>>> best = resolve_kernel("auto")
>>> best in available_kernels()
True
>>> from repro.core import PRNibbleParams, pr_nibble
>>> from repro.graph import barbell_graph
>>> graph = barbell_graph(8)
>>> params = PRNibbleParams(alpha=0.1, eps=1e-5)
>>> reference = pr_nibble(graph, 0, params, parallel=False)
>>> compiled = pr_nibble(graph, 0, params, parallel=False, kernel="auto")
>>> compiled.vector.to_dict() == reference.vector.to_dict()
True
>>> compiled.pushes == reference.pushes
True
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from . import reference

__all__ = [
    "KERNELS",
    "KernelUnavailableError",
    "available_kernels",
    "resolve_kernel",
    "get_kernels",
    "csr_arrays",
    "ensure_warm",
]

#: every explicit value the ``kernel=`` knob accepts (``None`` means
#: ``"python"``; ``"auto"`` resolves to the best entry of this tuple).
KERNELS = ("python", "numba", "c")


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel backend cannot run here."""


class PythonKernels:
    """The always-available kernel set: the array-level reference twins."""

    name = "python"
    ppr_push = staticmethod(reference.ppr_push)
    sweep_scan = staticmethod(reference.sweep_scan)
    walk_filter = staticmethod(reference.walk_filter)
    walk_advance = staticmethod(reference.walk_advance)


#: per-process kernel-set cache: name -> kernel set (or the probe error).
_SETS: dict[str, Any] = {"python": PythonKernels()}
_ERRORS: dict[str, Exception] = {}
_AUTO: str | None = None
_WARMED: set[str] = set()


def _load(name: str) -> Any:
    """Build (memoised) the named kernel set, or raise why it cannot run."""
    if name in _SETS:
        return _SETS[name]
    if name in _ERRORS:
        raise _ERRORS[name]
    try:
        if name == "numba":
            from . import _numba

            kernels = _numba.build()
        elif name == "c":
            from . import _ckernels

            kernels = _ckernels.build()
        else:
            raise ValueError(f"unknown kernel {name!r}; choose from {KERNELS + ('auto',)}")
    except ValueError:
        raise
    except Exception as error:
        probe = KernelUnavailableError(_unavailable_message(name, error))
        probe.__cause__ = error
        _ERRORS[name] = probe
        raise probe from error
    _SETS[name] = kernels
    return kernels


def _unavailable_message(name: str, error: Exception) -> str:
    if name == "numba":
        return (
            "kernel='numba' requires the numba package, which is not "
            "installed; install the optional extra (pip install "
            "'repro[kernels]') or use kernel='auto' to fall back "
            f"gracefully [{error}]"
        )
    return (
        "kernel='c' requires a working system C compiler (cc/gcc/clang); "
        f"none produced a loadable library here [{error}]"
    )


def available_kernels() -> tuple[str, ...]:
    """The kernel names that can actually run in this process (probed once).

    ``"python"`` is always present; ``"numba"`` and ``"c"`` appear only
    when their probe — an import, respectively a compile-and-load —
    succeeds, so a broken toolchain reads as absent rather than as a
    runtime error later.
    """
    names = ["python"]
    for name in ("numba", "c"):
        try:
            _load(name)
        except KernelUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def resolve_kernel(kernel: str | None) -> str:
    """Normalise the ``kernel=`` knob to a concrete, runnable kernel name.

    ``None`` means ``"python"`` (the default behaviour of every API is
    unchanged; compiled kernels are strictly opt-in).  ``"auto"`` probes
    once per process and picks numba > c > python, silently using
    ``"python"`` when no compiled backend is available.  Explicitly
    requesting an unavailable backend raises
    :class:`KernelUnavailableError` with the reason; an unknown name
    raises ``ValueError``.
    """
    global _AUTO
    if kernel is None or kernel == "python":
        return "python"
    if kernel == "auto":
        if _AUTO is None:
            for name in ("numba", "c"):
                try:
                    _load(name)
                except KernelUnavailableError:
                    continue
                _AUTO = name
                break
            else:
                _AUTO = "python"
        return _AUTO
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {KERNELS + ('auto',)}"
        )
    _load(kernel)
    return kernel


def get_kernels(kernel: str | None) -> Any:
    """The kernel set (``ppr_push``/``sweep_scan``/``walk_filter``/
    ``walk_advance`` namespace) for a resolved kernel name."""
    return _load(resolve_kernel(kernel))


def csr_arrays(graph: Any) -> tuple[np.ndarray, np.ndarray] | None:
    """``(offsets, neighbors)`` when ``graph`` exposes whole-graph CSR
    arrays, else ``None``.

    Duck-typed on purpose: a :class:`repro.graph.CSRGraph` (including one
    attached zero-copy from shared memory) qualifies; a
    :class:`repro.graph.sharded.ShardedGraphView` does not — its shards
    may not be resident — so shard-routed jobs escalate to the Python
    path instead of faulting the whole CSR in.
    """
    offsets = getattr(graph, "offsets", None)
    neighbors = getattr(graph, "neighbors", None)
    if isinstance(offsets, np.ndarray) and isinstance(neighbors, np.ndarray):
        return offsets, neighbors
    return None


def ensure_warm(kernel: str | None) -> float:
    """Prepare the resolved kernel now; returns the seconds it took.

    For ``"c"`` that is compile-and-load (disk-cached, so usually only
    the first process ever pays the compile); for ``"numba"`` it triggers
    JIT compilation of all kernels on a tiny graph.  Memoised per
    process: the second call for a kernel returns ``0.0``.  The executor
    calls this *before* starting a job's wall clock, so
    ``JobOutcome.wall_seconds`` — and thus ``StatsReducer`` throughput —
    measures steady state, with the one-time cost reported separately as
    ``warmup_seconds`` (mirroring the cache-hit exclusion rule).
    """
    name = resolve_kernel(kernel)
    if name in _WARMED:
        return 0.0
    # Warm-up *accounting*, not a hot loop: the duration is reported as
    # warmup_seconds and never influences any diffusion result.
    start = time.perf_counter()  # repro: ignore[wall-clock]
    _load(name)
    if name == "numba":
        from . import _numba

        _numba.warm()
    _WARMED.add(name)
    return time.perf_counter() - start  # repro: ignore[wall-clock]
