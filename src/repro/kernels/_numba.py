"""Numba-jitted renderings of the kernels.

Importing this module requires numba (the optional ``repro[kernels]``
extra); :mod:`repro.kernels` only imports it after a successful probe, so
environments without numba never pay — or fail on — the import.

The jitted loops are transliterations of :mod:`repro.kernels.reference`.
``fastmath`` stays at its default (off), so LLVM performs neither FMA
contraction nor reassociation and every double operation rounds exactly
as CPython's — the same contract the C kernels' ``-ffp-contract=off``
establishes.  ``cache=True`` persists the compiled artifacts next to the
package so pool workers and repeat processes skip recompilation.
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["NumbaKernels", "build", "warm"]


@njit(cache=True)
def _ppr_push(offsets, neighbors, seeds, alpha, eps, optimized):  # pragma: no cover
    n = len(offsets) - 1
    p = np.zeros(n, dtype=np.float64)
    r = np.zeros(n, dtype=np.float64)
    in_p = np.zeros(n, dtype=np.uint8)
    in_r = np.zeros(n, dtype=np.uint8)
    queued = np.zeros(n, dtype=np.uint8)
    p_order = np.empty(n, dtype=np.int64)
    r_order = np.empty(n, dtype=np.int64)
    num_p = 0
    num_r = 0

    num_seeds = len(seeds)
    qcap = max(2 * num_seeds, 128)
    queue = np.empty(qcap, dtype=np.int64)
    head = 0
    tail = 0
    r0 = 1.0 / num_seeds
    for k in range(num_seeds):
        s = seeds[k]
        r[s] = r0
        in_r[s] = 1
        r_order[num_r] = s
        num_r += 1
        queue[tail] = s
        tail += 1
        queued[s] = 1

    pushes = 0
    touched = 0
    while head < tail:
        vertex = queue[head]
        head += 1
        queued[vertex] = 0
        degree = offsets[vertex + 1] - offsets[vertex]
        if degree == 0:
            continue
        threshold = eps * degree
        while r[vertex] >= threshold:
            residual = r[vertex]
            if optimized:
                gain = (2.0 * alpha / (1.0 + alpha)) * residual
                share = ((1.0 - alpha) / (1.0 + alpha)) * residual / degree
                r[vertex] = 0.0
            else:
                gain = alpha * residual
                share = (1.0 - alpha) * residual / (2.0 * degree)
                r[vertex] = (1.0 - alpha) * residual / 2.0
            if in_p[vertex] == 0:
                in_p[vertex] = 1
                p_order[num_p] = vertex
                num_p += 1
            p[vertex] += gain
            pushes += 1
            touched += degree
            for edge in range(offsets[vertex], offsets[vertex + 1]):
                neighbor = neighbors[edge]
                if in_r[neighbor] == 0:
                    in_r[neighbor] = 1
                    r_order[num_r] = neighbor
                    num_r += 1
                r[neighbor] += share
                if queued[neighbor] == 0:
                    nb_degree = offsets[neighbor + 1] - offsets[neighbor]
                    if r[neighbor] >= eps * nb_degree:
                        if tail == qcap:
                            qcap *= 2
                            grown = np.empty(qcap, dtype=np.int64)
                            grown[:tail] = queue[:tail]
                            queue = grown
                        queue[tail] = neighbor
                        tail += 1
                        queued[neighbor] = 1
    p_keys = p_order[:num_p].copy()
    r_keys = r_order[:num_r].copy()
    return p_keys, p[p_keys], r_keys, r[r_keys], pushes, touched


@njit(cache=True)
def _sweep_scan(offsets, neighbors, ordered, degrees):  # pragma: no cover
    n = len(ordered)
    members = np.zeros(len(offsets) - 1, dtype=np.uint8)
    volumes = np.empty(n, dtype=np.int64)
    cuts = np.empty(n, dtype=np.int64)
    vol = 0
    cut = 0
    for i in range(n):
        vertex = ordered[i]
        vol += degrees[i]
        for edge in range(offsets[vertex], offsets[vertex + 1]):
            if members[neighbors[edge]] != 0:
                cut -= 1
            else:
                cut += 1
        members[vertex] = 1
        volumes[i] = vol
        cuts[i] = cut
    return volumes, cuts


@njit(cache=True)
def _walk_filter(offsets, current, active):  # pragma: no cover
    active_out = np.empty(len(active), dtype=np.int64)
    vertices_out = np.empty(len(active), dtype=np.int64)
    kept = 0
    for i in range(len(active)):
        lane = active[i]
        vertex = current[lane]
        if offsets[vertex + 1] - offsets[vertex] > 0:
            active_out[kept] = lane
            vertices_out[kept] = vertex
            kept += 1
    return active_out[:kept].copy(), vertices_out[:kept].copy()


@njit(cache=True)
def _walk_advance(offsets, neighbors, current, active, vertices, uniforms):  # pragma: no cover
    for i in range(len(active)):
        vertex = vertices[i]
        degree = offsets[vertex + 1] - offsets[vertex]
        pick = np.int64(uniforms[i] * degree)
        current[active[i]] = neighbors[offsets[vertex] + pick]


class NumbaKernels:
    """The kernel set backed by the jitted functions."""

    name = "numba"
    ppr_push = staticmethod(_ppr_push)
    sweep_scan = staticmethod(_sweep_scan)
    walk_filter = staticmethod(_walk_filter)
    walk_advance = staticmethod(_walk_advance)


def build() -> NumbaKernels:
    return NumbaKernels()


def warm() -> None:
    """Force JIT compilation of every kernel on a 2-vertex graph."""
    offsets = np.array([0, 1, 2], dtype=np.int64)
    neighbors = np.array([1, 0], dtype=np.int64)
    seeds = np.array([0], dtype=np.int64)
    _ppr_push(offsets, neighbors, seeds, 0.1, 1e-2, True)
    ordered = np.array([0, 1], dtype=np.int64)
    degrees = np.array([1, 1], dtype=np.int64)
    _sweep_scan(offsets, neighbors, ordered, degrees)
    current = np.array([0, 1], dtype=np.int64)
    active = np.array([0, 1], dtype=np.int64)
    kept, vertices = _walk_filter(offsets, current, active)
    _walk_advance(offsets, neighbors, current, kept, vertices, np.array([0.5, 0.5]))
