"""C renderings of the kernels, compiled on first use and bound via ctypes.

No build step and no new Python dependency: the C source below is
compiled into a tiny shared library with whatever system compiler is
present (``cc``/``gcc``/``clang``) and loaded with :mod:`ctypes`.  The
library is cached on disk keyed by a hash of the source and the compiler
flags — ``$REPRO_KERNEL_CACHE`` if set, else a per-user directory under
the system temp dir — so pool workers (and repeat processes) ``dlopen``
the existing artifact instead of recompiling.  The build is atomic
(compile to a unique temp name, then ``os.replace``), so concurrent
workers racing on a cold cache cannot observe a half-written library.

Bit-identity with the Python reference rests on two properties:

* C ``double`` arithmetic is IEEE-754 binary64, the same as CPython's
  ``float``, provided the compiler neither contracts ``a*b+c`` into an
  FMA nor reassociates — hence ``-ffp-contract=off -fno-fast-math`` in
  :data:`CFLAGS`.  Every expression below copies the reference's
  source-level operation order, so each intermediate rounds identically.
* ``(int64_t)(u * (double)deg)`` truncates toward zero, matching numpy's
  ``.astype(np.int64)`` on non-negative values.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path
from shutil import which

import numpy as np

__all__ = ["build", "compiler", "KernelBuildError"]

#: environment override for the compiled-kernel cache directory.
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: extra build flags appended to :data:`CFLAGS` (shlex syntax) — the CI
#: sanitizer leg injects ``-fsanitize=address,undefined`` here.  Flags
#: land in the cache tag, so sanitized and plain builds never collide.
EXTRA_CFLAGS_ENV = "REPRO_KERNEL_CFLAGS"

#: strictly-IEEE optimisation flags: -O3 for the speed the kernels exist
#: for, contraction and fast-math explicitly off for bit-identity.
CFLAGS = ["-O3", "-shared", "-fPIC", "-ffp-contract=off", "-fno-fast-math"]

#: value-changing FP optimisations that would detach the C kernel from
#: its Python twin; rejected even when injected via the environment.
_FORBIDDEN_CFLAGS = ("-ffast-math", "-Ofast", "-funsafe-math-optimizations", "-fassociative-math", "-freciprocal-math", "-ffp-contract=fast")  # repro: ignore[fast-math]

SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

typedef int64_t i64;

/* Queue-based PR-Nibble push loop; mirrors repro.core.pr_nibble's
 * sequential reference including dict-insertion order (p: first push,
 * r: seeds then first touch).  Returns 0, or -1 on allocation failure.
 * counters: [num_p, num_r, pushes, touched_edges]. */
i64 ppr_push(const i64 *offsets, const i64 *neighbors, i64 n,
             const i64 *seeds, i64 num_seeds,
             double alpha, double eps, i64 optimized,
             double *p, double *r,
             uint8_t *in_p, uint8_t *in_r, uint8_t *queued,
             i64 *p_order, i64 *r_order, i64 *counters)
{
    i64 num_p = 0, num_r = 0, pushes = 0, touched = 0;
    i64 qcap = num_seeds * 2 > 128 ? num_seeds * 2 : 128;
    i64 *queue = (i64 *)malloc((size_t)qcap * sizeof(i64));
    if (!queue)
        return -1;
    i64 head = 0, tail = 0;
    double r0 = 1.0 / (double)num_seeds;
    for (i64 k = 0; k < num_seeds; k++) {
        i64 s = seeds[k];
        r[s] = r0;
        in_r[s] = 1;
        r_order[num_r++] = s;
        queue[tail++] = s;
        queued[s] = 1;
    }
    while (head < tail) {
        i64 vertex = queue[head++];
        queued[vertex] = 0;
        i64 degree = offsets[vertex + 1] - offsets[vertex];
        if (degree == 0)
            continue;
        double threshold = eps * (double)degree;
        while (r[vertex] >= threshold) {
            double residual = r[vertex];
            double gain, share;
            if (optimized) {
                gain = (2.0 * alpha / (1.0 + alpha)) * residual;
                share = ((1.0 - alpha) / (1.0 + alpha)) * residual / (double)degree;
                r[vertex] = 0.0;
            } else {
                gain = alpha * residual;
                share = (1.0 - alpha) * residual / (2.0 * (double)degree);
                r[vertex] = (1.0 - alpha) * residual / 2.0;
            }
            if (!in_p[vertex]) {
                in_p[vertex] = 1;
                p_order[num_p++] = vertex;
            }
            p[vertex] += gain;
            pushes++;
            touched += degree;
            for (i64 edge = offsets[vertex]; edge < offsets[vertex + 1]; edge++) {
                i64 neighbor = neighbors[edge];
                if (!in_r[neighbor]) {
                    in_r[neighbor] = 1;
                    r_order[num_r++] = neighbor;
                }
                r[neighbor] += share;
                if (!queued[neighbor]) {
                    i64 nb_degree = offsets[neighbor + 1] - offsets[neighbor];
                    if (r[neighbor] >= eps * (double)nb_degree) {
                        if (tail == qcap) {
                            qcap *= 2;
                            i64 *grown = (i64 *)realloc(queue, (size_t)qcap * sizeof(i64));
                            if (!grown) {
                                free(queue);
                                return -1;
                            }
                            queue = grown;
                        }
                        queue[tail++] = neighbor;
                        queued[neighbor] = 1;
                    }
                }
            }
        }
    }
    free(queue);
    counters[0] = num_p;
    counters[1] = num_r;
    counters[2] = pushes;
    counters[3] = touched;
    return 0;
}

/* Incremental sweep membership scan (all-integer). */
void sweep_scan(const i64 *offsets, const i64 *neighbors,
                const i64 *ordered, const i64 *degrees, i64 n_ordered,
                uint8_t *members, i64 *volumes, i64 *cuts)
{
    i64 vol = 0, cut = 0;
    for (i64 i = 0; i < n_ordered; i++) {
        i64 vertex = ordered[i];
        vol += degrees[i];
        for (i64 edge = offsets[vertex]; edge < offsets[vertex + 1]; edge++)
            cut += members[neighbors[edge]] ? -1 : 1;
        members[vertex] = 1;
        volumes[i] = vol;
        cuts[i] = cut;
    }
}

/* Keep the walk lanes whose current vertex has outgoing edges; returns
 * the kept count.  Integer-only, order-preserving. */
i64 walk_filter(const i64 *offsets, const i64 *current,
                const i64 *active, i64 n_active,
                i64 *active_out, i64 *vertices_out)
{
    i64 kept = 0;
    for (i64 i = 0; i < n_active; i++) {
        i64 lane = active[i];
        i64 vertex = current[lane];
        if (offsets[vertex + 1] - offsets[vertex] > 0) {
            active_out[kept] = lane;
            vertices_out[kept] = vertex;
            kept++;
        }
    }
    return kept;
}

/* Advance each kept walk: pick = trunc(u * degree), matching numpy's
 * (uniforms * degrees).astype(int64). */
void walk_advance(const i64 *offsets, const i64 *neighbors,
                  i64 *current, const i64 *active, const i64 *vertices,
                  const double *uniforms, i64 n)
{
    for (i64 i = 0; i < n; i++) {
        i64 vertex = vertices[i];
        i64 degree = offsets[vertex + 1] - offsets[vertex];
        i64 pick = (i64)(uniforms[i] * (double)degree);
        current[active[i]] = neighbors[offsets[vertex] + pick];
    }
}
"""


class KernelBuildError(RuntimeError):
    """The C kernels could not be compiled or loaded on this machine."""


def compiler() -> str | None:
    """Path of the first available system C compiler, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        found = which(name)
        if found:
            return found
    return None


def _cache_dir() -> Path:
    configured = os.environ.get(CACHE_ENV)
    if configured:
        return Path(configured)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _extra_cflags() -> list[str]:
    """Flags from :data:`EXTRA_CFLAGS_ENV`, with fast-math rejected.

    The determinism contract is not overridable from the environment: a
    sanitizer leg may add instrumentation, but any value-changing FP
    flag raises :class:`KernelBuildError` before a compiler ever runs.
    """
    flags = shlex.split(os.environ.get(EXTRA_CFLAGS_ENV, ""))
    for flag in flags:
        if flag in _FORBIDDEN_CFLAGS:
            raise KernelBuildError(
                f"{EXTRA_CFLAGS_ENV} contains {flag!r}, which breaks "
                "bit-identity with the Python twin kernels; strict "
                "IEEE-754 builds only"
            )
    return flags


def _build_library(cc: str) -> Path:
    """Compile (or reuse) the kernel library; returns its path."""
    cflags = CFLAGS + _extra_cflags()
    tag = hashlib.blake2b(
        (SOURCE + " ".join(cflags) + cc).encode("utf-8"), digest_size=10
    ).hexdigest()
    suffix = ".dll" if sys.platform == "win32" else ".so"
    directory = _cache_dir()
    library = directory / f"repro_kernels_{tag}{suffix}"
    if library.exists():
        return library
    directory.mkdir(parents=True, exist_ok=True)
    source = directory / f"repro_kernels_{tag}.c"
    scratch = directory / f".build-{tag}-{os.getpid()}{suffix}"
    source.write_text(SOURCE)
    try:
        proc = subprocess.run(
            [cc, *cflags, "-o", str(scratch), str(source)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise KernelBuildError(
                f"C kernel build failed ({cc}):\n{proc.stderr.strip()}"
            )
        os.replace(scratch, library)  # atomic under concurrent builders
    except (OSError, subprocess.SubprocessError) as error:
        raise KernelBuildError(f"C kernel build failed: {error}") from error
    finally:
        if scratch.exists():
            scratch.unlink()
    return library


_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_i64 = ctypes.c_int64
_f64 = ctypes.c_double


def _bind(library_path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(library_path))
    lib.ppr_push.restype = _i64
    lib.ppr_push.argtypes = [
        _I64P, _I64P, _i64,           # offsets, neighbors, n
        _I64P, _i64,                  # seeds, num_seeds
        _f64, _f64, _i64,             # alpha, eps, optimized
        _F64P, _F64P,                 # p, r
        _U8P, _U8P, _U8P,             # in_p, in_r, queued
        _I64P, _I64P, _I64P,          # p_order, r_order, counters
    ]
    lib.sweep_scan.restype = None
    lib.sweep_scan.argtypes = [_I64P, _I64P, _I64P, _I64P, _i64, _U8P, _I64P, _I64P]
    lib.walk_filter.restype = _i64
    lib.walk_filter.argtypes = [_I64P, _I64P, _I64P, _i64, _I64P, _I64P]
    lib.walk_advance.restype = None
    lib.walk_advance.argtypes = [_I64P, _I64P, _I64P, _I64P, _I64P, _F64P, _i64]
    return lib


def _as_i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


class CKernels:
    """The kernel set backed by the compiled library (one per process)."""

    name = "c"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib

    def ppr_push(self, offsets, neighbors, seeds, alpha, eps, optimized):
        offsets = _as_i64(offsets)
        neighbors = _as_i64(neighbors)
        seeds = _as_i64(seeds)
        n = len(offsets) - 1
        p = np.zeros(n, dtype=np.float64)
        r = np.zeros(n, dtype=np.float64)
        in_p = np.zeros(n, dtype=np.uint8)
        in_r = np.zeros(n, dtype=np.uint8)
        queued = np.zeros(n, dtype=np.uint8)
        p_order = np.empty(n, dtype=np.int64)
        r_order = np.empty(n, dtype=np.int64)
        counters = np.zeros(4, dtype=np.int64)
        status = self._lib.ppr_push(
            offsets, neighbors, n,
            seeds, len(seeds),
            float(alpha), float(eps), 1 if optimized else 0,
            p, r, in_p, in_r, queued, p_order, r_order, counters,
        )
        if status != 0:
            raise MemoryError("C ppr_push kernel could not grow its queue")
        num_p, num_r = int(counters[0]), int(counters[1])
        p_keys = p_order[:num_p].copy()
        r_keys = r_order[:num_r].copy()
        return p_keys, p[p_keys], r_keys, r[r_keys], int(counters[2]), int(counters[3])

    def sweep_scan(self, offsets, neighbors, ordered, degrees):
        offsets = _as_i64(offsets)
        neighbors = _as_i64(neighbors)
        ordered = _as_i64(ordered)
        degrees = _as_i64(degrees)
        n = len(ordered)
        members = np.zeros(len(offsets) - 1, dtype=np.uint8)
        volumes = np.empty(n, dtype=np.int64)
        cuts = np.empty(n, dtype=np.int64)
        self._lib.sweep_scan(offsets, neighbors, ordered, degrees, n, members, volumes, cuts)
        return volumes, cuts

    def walk_filter(self, offsets, current, active):
        offsets = _as_i64(offsets)
        current = _as_i64(current)
        active = _as_i64(active)
        active_out = np.empty(len(active), dtype=np.int64)
        vertices_out = np.empty(len(active), dtype=np.int64)
        kept = self._lib.walk_filter(
            offsets, current, active, len(active), active_out, vertices_out
        )
        return active_out[:kept], vertices_out[:kept]

    def walk_advance(self, offsets, neighbors, current, active, vertices, uniforms):
        self._lib.walk_advance(
            _as_i64(offsets),
            _as_i64(neighbors),
            current,
            _as_i64(active),
            _as_i64(vertices),
            np.ascontiguousarray(uniforms, dtype=np.float64),
            len(active),
        )


def build() -> CKernels:
    """Compile (or load from cache) and bind the C kernel set.

    Raises :class:`KernelBuildError` when no compiler is available or the
    build fails; callers treat that as "kernel unavailable".
    """
    cc = compiler()
    if cc is None:
        raise KernelBuildError(
            "no C compiler found (looked for cc, gcc, clang on PATH)"
        )
    try:
        return CKernels(_bind(_build_library(cc)))
    except OSError as error:  # dlopen failure on a stale/foreign artifact
        raise KernelBuildError(f"C kernel library failed to load: {error}") from error
