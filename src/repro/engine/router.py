"""Shard-routed execution: place each job on the shard(s) owning its seeds.

The scale axis this backend opens is *memory*, not cores: the paper's
locality argument (a diffusion's work is bounded by O(1/(eps*alpha))
pushes, independent of graph size) means most jobs read one small region
of the CSR — so an executor does not need the whole graph resident to
serve them.  :class:`ShardRouter` runs every batch against a
:class:`~repro.graph.sharded.ShardedCSR`:

* **Placement** — jobs are grouped by their *home*: the sorted tuple of
  shards owning their seed vertices (:meth:`ShardMap.shards_of`).  Groups
  execute heaviest-first by the scheduler plane's cost estimates
  (:func:`~repro.engine.scheduler.estimate_cost` — the same PR-3 cost
  model that balances process-pool chunks), so the expensive region of a
  batch is in flight first and shard attach/detach churn is paid once per
  group, not once per job.
* **Lazy attach** — each group runs on one
  :class:`~repro.graph.sharded.ShardedGraphView` that starts from nothing
  resident and faults shards in as pushes cross shard boundaries.
  ``max_resident_shards`` caps the view's mapped set (LRU detach), which
  is what bounds the process's resident graph memory.
* **Spill fallback** — ``spill_shards`` bounds how many distinct shards
  one diffusion may touch; a job that crosses it raises
  :class:`~repro.graph.sharded.ShardSpill` and is re-run against the
  whole graph.  Either path produces bit-identical outcomes (lazy attach
  never approximates; determinism lives in the job, not the placement),
  so spilling is purely a memory/latency trade.

Outcomes are re-emitted **in job order** regardless of group order — the
engine-wide deterministic stream contract — and the router participates
in the session protocol (:class:`RouterSession`: one sharded export
serving consecutive batches), so the serving plane and the result cache
compose with it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..graph.csr import CSRGraph
from ..graph.sharded import ShardedCSR, ShardSpill
from .executor import ExecutionSession, JobOutcome, PoolBackend, run_job
from .jobs import DiffusionJob
from .scheduler import estimate_cost

__all__ = ["ShardRouter", "RouterSession", "RouterStats", "plan_placement"]


@dataclass
class RouterStats:
    """Per-session routing counters (diagnostics; never affect results).

    ``spills`` counts jobs escalated to whole-graph execution; the partial
    work a spilled attempt recorded before escalating still folds into any
    active tracker, so cost profiles of heavily spilling batches read
    slightly high — by design, that work really happened.
    """

    jobs: int = 0
    groups: int = 0
    spills: int = 0
    lazy_attaches: int = 0
    detaches: int = 0
    halo_hits: int = 0
    halo_misses: int = 0
    halo_evictions: int = 0
    jobs_per_home: dict[tuple[int, ...], int] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"jobs={self.jobs} groups={self.groups} spills={self.spills} "
            f"attaches={self.lazy_attaches} detaches={self.detaches} "
            f"halo_hits={self.halo_hits} halo_misses={self.halo_misses}"
        )


def plan_placement(
    jobs: Sequence[DiffusionJob], sharded: ShardedCSR
) -> list[tuple[tuple[int, ...], list[tuple[int, DiffusionJob]]]]:
    """Group ``(index, job)`` pairs by home shard set, heaviest group first.

    The home of a job is the sorted distinct shards owning its seeds — a
    single shard for almost every query, several for a seed set spanning a
    cut.  Groups are ordered by summed :func:`estimate_cost` descending
    (ties broken by home tuple) so the batch's expensive region starts
    immediately, mirroring the scheduler plane's longest-first rule.
    """
    groups: dict[tuple[int, ...], list[tuple[int, DiffusionJob]]] = {}
    costs: dict[tuple[int, ...], float] = {}
    for index, job in enumerate(jobs):
        home = sharded.map.shards_of(job.seeds)
        groups.setdefault(home, []).append((index, job))
        costs[home] = costs.get(home, 0.0) + estimate_cost(job)
    return sorted(groups.items(), key=lambda item: (-costs[item[0]], item[0]))


class RouterSession(ExecutionSession):
    """One sharded export serving consecutive shard-routed batches.

    Created by :meth:`ShardRouter.open_session`: the graph is partitioned
    and exported into per-shard shared-memory segments exactly once;
    every ``run(jobs)`` plans placement and streams outcomes in job
    order.  ``close()`` unlinks all shard segments deterministically.
    """

    def __init__(
        self,
        backend: "ShardRouter",
        graph: CSRGraph,
        parallel: bool,
        include_vectors: bool,
    ) -> None:
        super().__init__(backend, graph, parallel, include_vectors)
        self.sharded = ShardedCSR.create(graph, shards=backend.shards)
        self.stats = RouterStats()

    def _run(self, jobs: Sequence[DiffusionJob]) -> Iterator[JobOutcome]:
        backend: "ShardRouter" = self.backend  # type: ignore[assignment]
        placement = plan_placement(jobs, self.sharded)
        pending: dict[int, JobOutcome] = {}
        next_index = 0
        for home, members in placement:
            self.stats.groups += 1
            self.stats.jobs_per_home[home] = (
                self.stats.jobs_per_home.get(home, 0) + len(members)
            )
            view = self.sharded.view(
                max_resident=backend.max_resident_shards,
                spill_shards=backend.spill_shards,
                halo_bytes=backend.halo_bytes,
            )
            try:
                for index, job in members:
                    view.reset_spill()
                    try:
                        outcome = run_job(
                            view,
                            job,
                            index=index,
                            parallel=self.parallel,
                            include_vector=self.include_vectors,
                        )
                    except ShardSpill:
                        # The job's support outgrew its spill threshold:
                        # re-run against the whole graph.  Same job, same
                        # rng, same algorithms — bit-identical outcome.
                        self.stats.spills += 1
                        outcome = run_job(
                            self.graph,
                            job,
                            index=index,
                            parallel=self.parallel,
                            include_vector=self.include_vectors,
                        )
                    self.stats.jobs += 1
                    pending[index] = outcome
            finally:
                self.stats.lazy_attaches += view.attaches
                self.stats.detaches += view.detaches
                self.stats.halo_hits += view.halo_hits
                self.stats.halo_misses += view.halo_misses
                self.stats.halo_evictions += view.halo_evictions
                view.close()
            while next_index in pending:
                yield pending.pop(next_index)
                next_index += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.sharded.unlink()


class ShardRouter(PoolBackend):
    """In-process backend executing every batch through the sharded plane.

    Parameters
    ----------
    shards:
        How many contiguous vertex-range shards to partition the graph
        into (volume-balanced; see
        :func:`repro.graph.sharded.plan_boundaries`).
    max_resident_shards:
        Cap on shards a view keeps mapped at once (LRU detach beyond it).
        ``None`` keeps every touched shard resident.  ``1`` is the
        strictest memory mode: peak resident graph memory is one shard.
    spill_shards:
        Distinct-shards-per-job threshold beyond which a diffusion is
        escalated to whole-graph execution.  ``None`` (default) never
        spills — every job is served purely by lazy attach.
    halo_bytes:
        Byte budget of each view's halo cache (hot boundary-vertex rows
        served without attaching the neighbour shard; see
        :class:`~repro.graph.sharded.ShardedGraphView`).  ``None``
        (default) keeps the view's default budget; ``0`` disables it.

    The router is deliberately serial in-process in this release (one
    worker, ``folds_into_tracker=True``): it scales *memory*, and
    composes with the result cache (``BatchEngine(cache=...)``) and the
    serving plane's sessions exactly like the other backends.  Fanning
    shard groups out across a pool is the ROADMAP follow-on.
    """

    folds_into_tracker = True
    workers = 1

    def __init__(
        self,
        shards: int = 4,
        max_resident_shards: int | None = None,
        spill_shards: int | None = None,
        halo_bytes: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_resident_shards is not None and max_resident_shards < 1:
            raise ValueError("max_resident_shards must be >= 1")
        if spill_shards is not None and spill_shards < 1:
            raise ValueError("spill_shards must be >= 1")
        if halo_bytes is not None and halo_bytes < 0:
            raise ValueError("halo_bytes must be >= 0")
        self.shards = shards
        self.max_resident_shards = max_resident_shards
        self.spill_shards = spill_shards
        self.halo_bytes = halo_bytes

    def open_session(
        self,
        graph: CSRGraph,
        parallel: bool = True,
        include_vectors: bool = True,
    ) -> RouterSession:
        """Partition + export the graph once; see :class:`RouterSession`."""
        return RouterSession(self, graph, parallel, include_vectors)

    def stream(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return
        # One-shot session use, teardown deterministic even for an
        # abandoned iterator (GeneratorExit lands in the finally).
        session = self.open_session(graph, parallel, include_vectors)
        try:
            yield from session.run(jobs)
        finally:
            session.close()
