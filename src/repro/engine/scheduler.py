"""Cost-aware job scheduling: estimate, order longest-first, pack balanced.

Job costs in a local-clustering batch vary by orders of magnitude: the
paper bounds PR-Nibble's work by O(1/(eps*alpha)) (Section 3), so one
``eps=1e-7`` query costs ~1000x an ``eps=1e-4`` one, and a mixed NCP grid
interleaves both.  The engine's historical count-based ``imap`` chunking
ignored that: a chunk that happened to collect the expensive corner of the
grid became a straggler holding the whole batch while every other worker
idled.

This module is the scheduler plane that replaces it.  It has two halves:

* :func:`estimate_cost` — a *method-aware* a-priori cost per job, from the
  closed-form work bounds in :mod:`repro.runtime.cost_model` (eps/alpha
  push bounds for the deterministic diffusions, N x walk-length for the
  Monte-Carlo one).  Estimates only need to *rank* jobs and get relative
  magnitudes roughly right; they are never reported as measurements.
* :func:`plan_chunks` — turns a job list into the chunks the process pool
  dispatches.  ``"fifo"`` reproduces the old contiguous count-based
  slicing.  ``"cost"`` (the default) sorts jobs longest-first and packs
  them greedily onto the currently-lightest chunk (LPT scheduling), with
  the chunk count capped so that no chunk can exceed twice the mean chunk
  cost under the estimate — the classic 2-approximation guarantee, which
  the property tests assert directly.

Chunks are emitted heaviest-first, so the most expensive work starts the
moment the pool does and the tail of the batch is made of cheap chunks
that cannot straggle.  Determinism is unaffected: chunk packing decides
only *where and when* a job runs; every outcome carries its original batch
index and the executor re-emits the stream in job order.

Runnable example — a tight ``eps`` costs orders of magnitude more than a
loose one, and a cost plan still covers the batch exactly once:

>>> from repro.engine import DiffusionJob
>>> cheap = DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-4})
>>> costly = DiffusionJob.make(1, params={"alpha": 0.05, "eps": 1e-6})
>>> round(estimate_cost(costly) / estimate_cost(cheap))
100
>>> chunks = plan_chunks([cheap, costly, cheap, costly], workers=2)
>>> sorted(index for chunk in chunks for index, _ in chunk)
[0, 1, 2, 3]
>>> costs = chunk_costs(chunks)
>>> costs == sorted(costs, reverse=True)    # heaviest chunk dispatches first
True
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

from ..core.api import ALGORITHMS
from ..kernels import KernelUnavailableError, resolve_kernel
from ..runtime.cost_model import (
    ppr_push_work_bound,
    random_walk_work_bound,
    truncated_iteration_work_bound,
)
from .jobs import DiffusionJob

__all__ = [
    "SCHEDULES",
    "KERNEL_COST_SCALE",
    "kernel_cost_scale",
    "resolved_kernel_name",
    "estimate_cost",
    "plan_chunks",
    "plan_units",
    "steal_unit_size",
    "observe_outcome",
    "chunk_costs",
    "fifo_chunk_size",
]

#: recognised values of the engine-facing ``schedule=`` knob.
SCHEDULES = ("cost", "fifo")

#: floor applied to every estimate so degenerate parameter corners can
#: never produce a zero-cost job (which would break load ratios).
_MIN_COST = 1.0

#: target chunks per worker.  Several chunks per worker lets the pool
#: rebalance when estimates are off; too many wastes IPC round-trips.
#: 8 matches the historical count-based chunking's sizing rule.
CHUNKS_PER_WORKER = 8

#: seconds-per-push scale relative to the Python loops.  The compiled
#: kernels measure 1-2 orders of magnitude faster (BENCH_kernels), so
#: without this a mixed batch's cost plan would weigh a compiled job as
#: heavily as a Python one and pack the true stragglers together.  Only
#: the *ratio* matters for LPT packing; 0.02 is a deliberately
#: conservative midpoint of the measured 10-100x range.
KERNEL_COST_SCALE = {"python": 1.0, "numba": 0.02, "c": 0.02}


def resolved_kernel_name(kernel: str | None) -> str:
    """The kernel a job would actually run under, as a calibration key.

    Never raises: unknown or unavailable kernels key like Python (the
    execution layer is where bad kernels must fail, loudly).
    """
    if kernel is None:
        return "python"
    try:
        return resolve_kernel(kernel)
    except (ValueError, KernelUnavailableError):
        return "python"


def kernel_cost_scale(kernel: str | None) -> float:
    """Relative seconds-per-unit-work of a job's kernel setting.

    Never raises: an unknown or unavailable kernel scales like Python
    (the execution layer is where bad kernels must fail, loudly —
    scheduling must never be the thing that aborts a batch).
    """
    return KERNEL_COST_SCALE.get(resolved_kernel_name(kernel), 1.0)


def _raw_work_bound(job: DiffusionJob) -> float | None:
    """The method's closed-form work bound, *without* any kernel scale.

    These are the "raw units" the online :class:`~repro.runtime.cost_model.
    CostModel` learns seconds-per-unit against.  Returns ``None`` for
    unknown methods or parameters that the method's dataclass rejects (a
    job that would fail at execution time anyway).
    """
    if job.method not in ALGORITHMS:
        return None
    params_cls, _, _ = ALGORITHMS[job.method]
    try:
        params = params_cls(**job.params)
    except (TypeError, ValueError):
        return None
    if job.method == "pr-nibble":
        return ppr_push_work_bound(params.alpha, params.eps)
    if job.method == "nibble":
        return truncated_iteration_work_bound(params.max_iterations, params.eps)
    if job.method == "hk-pr":
        # Kloster-Gleich style push bound: N Taylor terms, each thresholded
        # at eps — the same 1/eps locality with the degree N as the "1/alpha".
        return ppr_push_work_bound(1.0 / params.taylor_degree, params.eps)
    # rand-hk-pr
    return random_walk_work_bound(params.num_walks, params.max_walk_length)


def estimate_cost(job: DiffusionJob, model=None) -> float:
    """Cost estimate for one job, in (approximate) push units.

    Dispatches on the method to the closed-form bounds of
    :mod:`repro.runtime.cost_model`, instantiating the method's parameter
    dataclass so defaults are filled exactly as execution will fill them,
    then scales by the job's kernel (:func:`kernel_cost_scale`) — a
    compiled push costs a small fraction of a Python push in wall time,
    and cost plans balance *time*, not abstract work.  Unknown methods
    (a job that would fail at execution time anyway) get the floor cost
    rather than an exception — scheduling must never be the thing that
    aborts a batch.

    With a :class:`~repro.runtime.cost_model.CostModel` the static kernel
    scale is replaced by the model's learned correction for the job's
    ``(method, kernel)`` key — still expressed in static-estimate units, so
    thresholds like ``max_batch_cost`` keep their meaning.  Keys the model
    has not observed yet fall back to the static estimate.
    """
    raw = _raw_work_bound(job)
    if raw is None:
        return _MIN_COST
    if model is not None:
        factor = model.calibration_factor(job.method, resolved_kernel_name(job.kernel))
        if factor is not None:
            return max(raw * factor, _MIN_COST)
    return max(raw * kernel_cost_scale(job.kernel), _MIN_COST)


def observe_outcome(model, outcome) -> None:
    """Fold one completed :class:`JobOutcome` into a cost model.

    Cache hits carry no execution time and are skipped; so are jobs whose
    parameters yield no work bound.  Warm-up (JIT compilation) seconds are
    already excluded from ``wall_seconds`` by the executor.
    """
    if outcome.cached:
        return
    job = outcome.job
    raw = _raw_work_bound(job)
    if raw is None:
        return
    model.observe(
        job.method,
        resolved_kernel_name(job.kernel),
        raw,
        outcome.wall_seconds,
        static=max(raw * kernel_cost_scale(job.kernel), _MIN_COST),
    )


def chunk_costs(
    chunks: Sequence[Sequence[tuple[int, DiffusionJob]]],
    estimator: Callable[[DiffusionJob], float] = estimate_cost,
) -> list[float]:
    """Total estimated cost of each chunk (benchmark/diagnostic helper)."""
    return [sum(estimator(job) for _, job in chunk) for chunk in chunks]


def fifo_chunk_size(num_jobs: int, workers: int, chunk_size: int | None = None) -> int:
    """Jobs per chunk for count-based plans: ~8 chunks per worker, capped
    at 32 jobs, floored at 1 — the historical ``imap`` sizing rule.  The
    single implementation behind both :func:`plan_chunks` and
    ``ProcessPoolBackend._chunk_size``."""
    if chunk_size is not None:
        return max(1, chunk_size)
    return max(1, min(32, num_jobs // (max(1, workers) * CHUNKS_PER_WORKER) or 1))


def _fifo_chunks(
    jobs: Sequence[DiffusionJob], size: int
) -> list[list[tuple[int, DiffusionJob]]]:
    indexed = list(enumerate(jobs))
    return [indexed[start : start + size] for start in range(0, len(indexed), size)]


def _cost_chunks(
    jobs: Sequence[DiffusionJob],
    desired: int,
    estimator: Callable[[DiffusionJob], float],
) -> list[list[tuple[int, DiffusionJob]]]:
    costs = [max(estimator(job), _MIN_COST) for job in jobs]
    total = sum(costs)
    heaviest = max(costs)
    # Cap the chunk count so the per-chunk cost target total/k is at least
    # the heaviest single job.  Greedy least-loaded assignment then bounds
    # every chunk by target + heaviest <= 2 * total/k <= 2 * mean over the
    # chunks actually used — the balance guarantee the tests assert.
    k = max(1, min(desired, len(jobs), int(total // heaviest)))
    order = sorted(range(len(jobs)), key=lambda i: (-costs[i], i))
    members: list[list[int]] = [[] for _ in range(k)]
    # Least-loaded-first assignment via a heap: O(n log k), with the bin
    # index as deterministic tie-break on equal loads.
    heap = [(0.0, b) for b in range(k)]
    for i in order:
        load, lightest = heapq.heappop(heap)
        members[lightest].append(i)
        heapq.heappush(heap, (load + costs[i], lightest))
    loads = {b: load for load, b in heap}
    packed = [
        (loads[b], chunk) for b, chunk in enumerate(members) if chunk
    ]
    # Heaviest chunk first: stragglers start at t=0, cheap chunks fill the
    # tail.  Tie-break on first member for a deterministic plan.
    packed.sort(key=lambda item: (-item[0], item[1][0]))
    return [[(i, jobs[i]) for i in chunk] for _, chunk in packed]


def plan_chunks(
    jobs: Sequence[DiffusionJob],
    workers: int,
    schedule: str = "cost",
    chunk_size: int | None = None,
    estimator: Callable[[DiffusionJob], float] = estimate_cost,
) -> list[list[tuple[int, DiffusionJob]]]:
    """Partition ``jobs`` into the chunks the pool will dispatch.

    Every chunk entry is ``(original_index, job)``; the chunks always
    cover the batch exactly once (asserted by property tests).  With
    ``schedule="fifo"`` chunks are contiguous index ranges of the
    historical count-based size (or explicit ``chunk_size``); with
    ``schedule="cost"`` they are cost-balanced by the estimator, and
    ``chunk_size`` instead bounds how many chunks are formed
    (``len(jobs)/chunk_size``, so the flag keeps its "jobs per IPC
    round-trip" meaning under both schedules).
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    jobs = list(jobs)
    if not jobs:
        return []
    workers = max(1, workers)
    size = fifo_chunk_size(len(jobs), workers, chunk_size)
    if schedule == "fifo":
        return _fifo_chunks(jobs, size)
    if chunk_size is not None:
        desired = -(-len(jobs) // size)
    else:
        desired = workers * CHUNKS_PER_WORKER
    return _cost_chunks(jobs, desired, estimator)


#: steal-queue granularity: at most this many jobs per unit, so one unit
#: can never hide a straggler behind cheap neighbours for long.
MAX_UNIT_JOBS = 8

#: target units per worker under stealing.  Far finer than the chunk
#: plan's 8: each unit is one IPC round-trip, but the pool's shared queue
#: re-balances at unit boundaries, so more units = better balance.
UNITS_PER_WORKER = 16


def steal_unit_size(num_jobs: int, workers: int, chunk_size: int | None = None) -> int:
    """Jobs per steal unit: ~16 units per worker, capped at 8 jobs.

    Falls to 1 whenever jobs-per-worker is low — the auto-fine-granularity
    guard: with few jobs to go around, every job must be independently
    stealable or one unit starves the other workers (the smoke-scale
    regression this scheduler replaces).
    """
    if chunk_size is not None:
        return max(1, chunk_size)
    return max(1, min(MAX_UNIT_JOBS, num_jobs // (max(1, workers) * UNITS_PER_WORKER)))


def plan_units(
    jobs: Sequence[DiffusionJob],
    workers: int,
    schedule: str = "cost",
    chunk_size: int | None = None,
    estimator: Callable[[DiffusionJob], float] = estimate_cost,
) -> list[list[tuple[int, DiffusionJob]]]:
    """Order ``jobs`` into the fine-grained units a stealing pool dispatches.

    Unlike :func:`plan_chunks`, units are *not* pre-assigned to workers:
    the pool's shared task queue hands the next undispatched unit to
    whichever worker finishes first, so placement adapts to the measured
    durations instead of the estimates.  ``"cost"`` orders units
    heaviest-first (greedy pulls of a longest-first order are classic LPT
    list scheduling — near-optimal makespan on the *true* durations);
    ``"fifo"`` keeps the legacy contiguous count-based slicing.  Every
    entry is ``(original_index, job)`` and the units cover the batch
    exactly once; outcomes carry their index, so re-emission order and
    results are bit-identical to serial at any worker count.
    """
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    jobs = list(jobs)
    if not jobs:
        return []
    workers = max(1, workers)
    if schedule == "fifo":
        return _fifo_chunks(jobs, fifo_chunk_size(len(jobs), workers, chunk_size))
    size = steal_unit_size(len(jobs), workers, chunk_size)
    costs = [max(estimator(job), _MIN_COST) for job in jobs]
    order = sorted(range(len(jobs)), key=lambda i: (-costs[i], i))
    return [
        [(i, jobs[i]) for i in order[start : start + size]]
        for start in range(0, len(order), size)
    ]
