"""Batch diffusion engine — cross-query parallelism for local clustering.

The paper's algorithms parallelise *within* one query; its experiments
(Table 3, Figure 12) run *many* independent queries — up to 10^5 seeds
with varying alpha and eps.  This subsystem mechanises that outer loop:

* :mod:`repro.engine.jobs` — :class:`DiffusionJob` (one picklable unit of
  work) and :func:`job_grid` (seeds x parameter-grid streams).
* :mod:`repro.engine.executor` — :class:`BatchEngine` dispatching jobs to
  a :class:`SerialBackend` (deterministic default) or a
  :class:`ProcessPoolBackend` that shares the read-only CSR arrays with
  its workers under *any* start method (copy-on-write under ``fork``,
  shared-memory attach elsewhere), yielding :class:`JobOutcome` records
  in job order.
* :mod:`repro.engine.scheduler` — method-aware per-job cost estimates
  (the paper's O(1/(eps*alpha)) push bound and friends), refined online
  by an EWMA :class:`~repro.runtime.cost_model.CostModel`, ordered into
  fine-grained heaviest-first units that pool workers *steal* as they
  finish, so mixed-eps grids don't straggle.
* :mod:`repro.engine.reducers` — streaming aggregation of outcomes into
  NCP profiles, best clusters, or throughput statistics.

>>> from repro.graph import barbell_graph
>>> from repro.engine import BatchEngine, NCPReducer, job_grid
>>> graph = barbell_graph(8)
>>> jobs = job_grid(range(4), "pr-nibble", {"alpha": (0.1,), "eps": (1e-4,)})
>>> profile = BatchEngine(graph).run(jobs, NCPReducer(graph.num_vertices))
>>> profile.runs
4
"""

from .executor import (
    BatchEngine,
    DispatchStats,
    ExecutionSession,
    JobOutcome,
    KernelSession,
    PoolBackend,
    PoolSession,
    ProcessPoolBackend,
    SerialBackend,
    VersionGuardSession,
    WorkerStats,
    resolve_engine,
    run_job,
)
from .jobs import DiffusionJob, job_grid
from .router import RouterSession, RouterStats, ShardRouter, plan_placement
from .scheduler import (
    KERNEL_COST_SCALE,
    SCHEDULES,
    chunk_costs,
    estimate_cost,
    kernel_cost_scale,
    observe_outcome,
    plan_chunks,
    plan_units,
    resolved_kernel_name,
    steal_unit_size,
)
from .reducers import (
    BatchStats,
    BestClusterReducer,
    CollectReducer,
    NCPReducer,
    Reducer,
    StatsReducer,
)

__all__ = [
    "BatchEngine",
    "ExecutionSession",
    "JobOutcome",
    "KernelSession",
    "PoolBackend",
    "PoolSession",
    "ProcessPoolBackend",
    "SerialBackend",
    "VersionGuardSession",
    "resolve_engine",
    "run_job",
    "DiffusionJob",
    "job_grid",
    "RouterSession",
    "RouterStats",
    "ShardRouter",
    "plan_placement",
    "KERNEL_COST_SCALE",
    "SCHEDULES",
    "chunk_costs",
    "estimate_cost",
    "kernel_cost_scale",
    "observe_outcome",
    "plan_chunks",
    "plan_units",
    "resolved_kernel_name",
    "steal_unit_size",
    "DispatchStats",
    "WorkerStats",
    "BatchStats",
    "BestClusterReducer",
    "CollectReducer",
    "NCPReducer",
    "Reducer",
    "StatsReducer",
]
