"""Reducers: streaming aggregation of batch-engine outcomes.

A batch run produces one :class:`~repro.engine.executor.JobOutcome` per
job, in job order, regardless of backend.  Reducers fold that stream into
the quantity the caller actually wants — the full outcome list, an NCP
profile, the single best cluster, or throughput statistics — without ever
holding more than one outcome's worth of extra state (except the
deliberately-collecting :class:`CollectReducer`).  This is what lets a
10^5-job NCP run stream through a process pool in bounded memory.

Reducers run in the *parent* process and see outcomes in deterministic job
order, so any reducer whose fold is order-sensitive still produces
identical results at every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.ncp import NCPResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import JobOutcome

__all__ = [
    "Reducer",
    "CollectReducer",
    "NCPReducer",
    "BestClusterReducer",
    "BatchStats",
    "StatsReducer",
]


class Reducer:
    """Interface: ``update`` once per outcome (in job order), then ``finalize``."""

    def update(self, outcome: "JobOutcome") -> None:
        raise NotImplementedError

    def finalize(self) -> Any:
        raise NotImplementedError


class CollectReducer(Reducer):
    """Materialise every outcome — the default when no reducer is given."""

    def __init__(self) -> None:
        self.outcomes: list["JobOutcome"] = []

    def update(self, outcome: "JobOutcome") -> None:
        self.outcomes.append(outcome)

    def finalize(self) -> list["JobOutcome"]:
        return self.outcomes


class NCPReducer(Reducer):
    """Pointwise-minimum conductance per cluster size (Figure 12).

    Folds each job's sweep profile with exactly the rule of the historical
    serial loop in :func:`repro.core.ncp.ncp_profile`: every prefix of the
    sweep ordering contributes a (size, conductance) point, prefixes of
    conductance exactly 0 (whole connected components) are discarded, and
    jobs whose diffusion had empty support do not count as runs.
    """

    def __init__(self, max_size: int) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.max_size = max_size
        self.best = np.full(max_size, np.inf, dtype=np.float64)
        self.runs = 0

    def update(self, outcome: "JobOutcome") -> None:
        if outcome.support_size == 0 or outcome.sweep is None:
            return
        self.runs += 1
        count = min(len(outcome.sweep.order), self.max_size)
        phis = outcome.sweep.conductances[:count]
        valid = phis > 0.0
        np.minimum.at(self.best, np.flatnonzero(valid), phis[valid])

    def finalize(self) -> NCPResult:
        return NCPResult(max_size=self.max_size, conductance=self.best, runs=self.runs)


class BestClusterReducer(Reducer):
    """Keep the single lowest-conductance outcome across the whole batch.

    Ties break towards the earlier job, so the winner is deterministic.
    ``finalize`` returns the winning outcome (or ``None`` if every job had
    empty support).
    """

    def __init__(self) -> None:
        self.best: "JobOutcome | None" = None

    def update(self, outcome: "JobOutcome") -> None:
        if outcome.sweep is None:
            return
        if self.best is None or outcome.conductance < self.best.conductance:
            self.best = outcome

    def finalize(self) -> "JobOutcome | None":
        return self.best


@dataclass
class BatchStats:
    """Aggregate counters of one batch run (the throughput report).

    The work counters (``total_pushes``, ``total_touched_edges``,
    ``total_work``, ``max_depth``, ``job_seconds``) describe diffusion
    work performed *in this run*: outcomes replayed from the result cache
    are tallied in ``cache_hits`` but excluded from the work counters,
    because a replay carries the counters of the **original** execution
    and performed no diffusion here — the same exclusion rule
    :meth:`repro.engine.BatchEngine.run` applies to the recorded
    work-depth cost.

    ``warmup_seconds`` tallies one-time kernel preparation (a numba JIT
    compile, a C build probe) separately, by the same logic: ``run_job``
    starts its timer *after* :func:`repro.kernels.ensure_warm`, so
    ``job_seconds`` is a steady-state measurement and the compile cost is
    reported here instead of silently inflating the first job.

    ``dispatch`` and ``cost_calibration`` are attached when the reducer
    was built with ``engine=``: the backend's work-stealing accounting
    (per-worker busy/idle seconds and steal counts, as
    ``DispatchStats.describe()``) and the online cost model's per-key
    seconds-per-work-unit snapshot.  ``None`` for backends without a
    pool (serial, sharded).
    """

    jobs: int = 0
    completed: int = 0
    cache_hits: int = 0
    total_pushes: int = 0
    total_touched_edges: int = 0
    total_work: float = 0.0
    max_depth: float = 0.0
    job_seconds: float = 0.0
    warmup_seconds: float = 0.0
    by_method: dict[str, int] = field(default_factory=dict)
    dispatch: dict[str, float | int] | None = None
    cost_calibration: dict[str, dict[str, float]] | None = None

    def jobs_per_second(self, wall_seconds: float) -> float:
        """Batch throughput given the *wall* time of the run (not the sum
        of per-job times, which overcounts under a process pool)."""
        return self.jobs / wall_seconds if wall_seconds > 0 else float("inf")


class StatsReducer(Reducer):
    """Accumulate :class:`BatchStats` over the outcome stream.

    Pass ``engine=`` to also capture the engine's scheduler diagnostics at
    ``finalize`` time: work-stealing dispatch accounting and the online
    cost-calibration snapshot (both ``None`` for pool-less backends).
    """

    def __init__(self, engine: Any | None = None) -> None:
        self.stats = BatchStats()
        self._engine = engine

    def update(self, outcome: "JobOutcome") -> None:
        stats = self.stats
        stats.jobs += 1
        if outcome.support_size > 0:
            stats.completed += 1
        method = outcome.job.method
        stats.by_method[method] = stats.by_method.get(method, 0) + 1
        if outcome.cached:
            # A cache replay echoes the original run's counters; folding
            # them in would inflate this run's work totals.
            stats.cache_hits += 1
            return
        stats.total_pushes += outcome.pushes
        stats.total_touched_edges += outcome.touched_edges
        stats.total_work += outcome.work
        stats.max_depth = max(stats.max_depth, outcome.depth)
        stats.job_seconds += outcome.wall_seconds
        stats.warmup_seconds += outcome.warmup_seconds

    def finalize(self) -> BatchStats:
        if self._engine is not None:
            dispatch = getattr(self._engine, "dispatch_stats", None)
            if dispatch is not None:
                self.stats.dispatch = dispatch.describe()
            model = getattr(self._engine, "cost_model", None)
            if model is not None:
                self.stats.cost_calibration = model.snapshot()
        return self.stats
