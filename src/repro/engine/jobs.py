"""Job descriptions for the batch diffusion engine.

The paper's heavy experiments are *embarrassingly parallel across queries*:
Figure 12 runs PR-Nibble from 10^5 random seeds while varying alpha and
eps, and every (seed, parameter) combination is an independent local
computation touching a small neighbourhood of the graph.  A
:class:`DiffusionJob` captures one such unit of work — *which* diffusion to
run, from *which* seed set, with *which* parameters — in a small, picklable
record that can be shipped to a worker process.

:func:`job_grid` builds the canonical experiment stream: the cartesian
product of a seed list with a parameter grid, enumerated seeds-outermost in
the same order as the historical ``ncp_profile`` triple loop so batched
runs visit jobs in the exact sequence the serial code did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["DiffusionJob", "job_grid"]


@dataclass(frozen=True)
class DiffusionJob:
    """One independent unit of batch work: a diffusion + sweep query.

    Attributes
    ----------
    seeds:
        The seed vertex ids (all algorithms "extend to seed sets with
        multiple vertices", Section 3).  Stored as a tuple so jobs stay
        immutable and cheap to pickle.
    method:
        A key of :data:`repro.core.ALGORITHMS` (``"nibble"``,
        ``"pr-nibble"``, ``"hk-pr"`` or ``"rand-hk-pr"``).
    params:
        Overrides for the method's parameter dataclass, e.g.
        ``{"alpha": 0.01, "eps": 1e-5}``.
    rng:
        Integer seed for the randomized methods (``rand-hk-pr``).  Kept in
        the job — not in the engine — so results are reproducible no matter
        which worker executes the job, or in what order.
    tag:
        Free-form caller annotation carried through to the outcome
        (useful for joining batch output back to experiment metadata).
    kernel:
        Loop implementation for the job's hot paths
        (:mod:`repro.kernels`): ``None`` inherits the engine's default
        (ultimately ``"python"``), or ``"python"``/``"numba"``/``"c"``/
        ``"auto"`` explicitly.  Like ``tag`` it is excluded from the
        cache key — results are bit-identical across kernels, so entries
        written under one kernel replay under any other.
    """

    seeds: tuple[int, ...]
    method: str = "pr-nibble"
    params: dict[str, Any] = field(default_factory=dict)
    rng: int = 0
    tag: Any = None
    kernel: str | None = None

    @staticmethod
    def make(
        seeds: int | Sequence[int] | np.ndarray,
        method: str = "pr-nibble",
        params: Mapping[str, Any] | None = None,
        rng: int = 0,
        tag: Any = None,
        kernel: str | None = None,
    ) -> "DiffusionJob":
        """Normalise loose seed specs (scalar, list, array) into a job."""
        array = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        return DiffusionJob(
            seeds=tuple(int(s) for s in array.tolist()),
            method=method,
            params=dict(params or {}),
            rng=int(rng),
            tag=tag,
            kernel=kernel,
        )

    def describe(self) -> str:
        """Compact one-line rendering for tables and CSV output."""
        settings = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        seeds = ",".join(map(str, self.seeds))
        return f"{self.method}[{seeds}]{' ' + settings if settings else ''}"


def job_grid(
    seeds: Iterable[int] | np.ndarray,
    method: str = "pr-nibble",
    grid: Mapping[str, Sequence[Any]] | None = None,
    params: Mapping[str, Any] | None = None,
    rng: int = 0,
    kernel: str | None = None,
) -> Iterator[DiffusionJob]:
    """Yield the cartesian product of ``seeds`` x ``grid`` as jobs.

    ``grid`` maps parameter names to the values to sweep; ``params`` holds
    fixed overrides applied to every job.  Enumeration order is
    seeds-outermost, then the grid axes in insertion order — for
    ``grid={"alpha": A, "eps": E}`` this is exactly the
    ``for seed: for alpha: for eps`` order of the pre-engine NCP loop.
    Randomized methods get a distinct, deterministic per-job ``rng``
    derived from the base ``rng`` and the job's position.
    """
    grid = dict(grid or {})
    fixed = dict(params or {})
    names = list(grid.keys())
    # No grid at all -> one job per seed; a *present but empty* axis ->
    # an empty product, i.e. zero jobs, exactly like the nested loop.
    combos = list(product(*(grid[name] for name in names))) if names else [()]
    index = 0
    for seed in np.asarray(list(seeds), dtype=np.int64).tolist():
        for combo in combos:
            overrides = dict(fixed)
            overrides.update(zip(names, combo))
            yield DiffusionJob.make(
                seed, method=method, params=overrides, rng=rng + index, kernel=kernel
            )
            index += 1
