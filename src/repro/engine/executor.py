"""The batch executor: dispatch independent diffusion jobs across workers.

The engine exploits the scale-out axis the paper's experiments rely on but
its artifact never mechanised: *cross-query* parallelism.  Each
:class:`~repro.engine.jobs.DiffusionJob` is an independent local
computation (a diffusion plus a sweep cut), so a stream of jobs can be
fanned out across a process pool while each individual job still uses the
intra-query parallel (bulk-synchronous) implementations.

Two backends implement the same contract — outcomes are delivered **in job
order**, so every reducer sees a deterministic stream at any worker count:

* :class:`SerialBackend` — runs jobs in the calling process.  The default,
  the fallback, and the reference for determinism tests.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool.  Under the
  (default, where available) ``fork`` start method the workers *share* the
  parent's read-only CSR arrays through copy-on-write pages: the graph is
  placed in module state before the fork and is never pickled, copied or
  re-validated per job.  Under ``spawn``/``forkserver`` sharing is
  impossible, so the backend warns and falls back to in-process serial
  execution rather than silently shipping a full copy of the graph to
  every worker (``multiprocessing.shared_memory`` attach for those
  platforms is a ROADMAP item).

A third backend, :class:`repro.cache.CachingBackend`, wraps either of the
above so that only cache misses are dispatched; construct engines with
``cache=`` to enable it.

Workers return compact, picklable :class:`JobOutcome` records (sweep
profile + counters + optionally the diffusion vector as two arrays) rather
than the algorithms' live sparse-set objects, keeping inter-process
traffic proportional to each job's support size.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

from ..core.api import ALGORITHMS
from ..core.result import ClusterResult, DiffusionResult, SweepResult, vector_items
from ..core.sweep import sweep_cut
from ..graph.csr import CSRGraph
from ..prims.sparse import SparseDict
from ..runtime import record, track
from .jobs import DiffusionJob
from .reducers import CollectReducer, Reducer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import CachingBackend, ResultCache

__all__ = [
    "JobOutcome",
    "run_job",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchEngine",
    "resolve_engine",
]


@dataclass
class JobOutcome:
    """The picklable result of one executed job.

    Carries everything the reducers need: the job itself (echoed back),
    diffusion counters, the full sweep profile, the per-job work-depth
    totals and wall time, and — when the engine is configured with
    ``include_vectors`` — the diffusion vector flattened to parallel
    ``(keys, values)`` arrays.  ``cached`` marks outcomes replayed from
    the result cache (their counters describe the *original* execution;
    no diffusion work was performed for this job).
    """

    index: int
    job: DiffusionJob
    support_size: int
    iterations: int
    pushes: int
    touched_edges: int
    residual_mass: float
    work: float
    depth: float
    wall_seconds: float
    sweep: SweepResult | None
    vector_keys: np.ndarray | None = None
    vector_values: np.ndarray | None = None
    cached: bool = False

    @property
    def conductance(self) -> float:
        """Best sweep conductance (``inf`` when the sweep was skipped)."""
        return self.sweep.best_conductance if self.sweep is not None else float("inf")

    @property
    def cluster(self) -> np.ndarray:
        """The best cluster, sorted by vertex id (empty when skipped)."""
        if self.sweep is None:
            return np.empty(0, dtype=np.int64)
        return np.sort(self.sweep.best_cluster)

    @property
    def size(self) -> int:
        return len(self.cluster)

    def diffusion(self) -> DiffusionResult:
        """Rebuild a :class:`DiffusionResult` from the flattened vector."""
        if self.vector_keys is None or self.vector_values is None:
            raise ValueError(
                "diffusion vector was not retained; run the engine with "
                "include_vectors=True"
            )
        vector = SparseDict(
            dict(zip(self.vector_keys.tolist(), self.vector_values.tolist()))
        )
        return DiffusionResult(
            vector=vector,
            iterations=self.iterations,
            pushes=self.pushes,
            touched_edges=self.touched_edges,
            extras={"residual_mass": self.residual_mass},
        )

    def to_cluster_result(self) -> ClusterResult:
        """Rebuild the high-level API's :class:`ClusterResult`."""
        if self.sweep is None:
            raise ValueError(
                f"job {self.job.describe()} produced an empty diffusion; "
                "no cluster to report"
            )
        from dataclasses import asdict

        params_cls, _, _ = ALGORITHMS[self.job.method]
        return ClusterResult(
            cluster=self.cluster,
            conductance=self.sweep.best_conductance,
            algorithm=self.job.method,
            params=asdict(params_cls(**self.job.params)),
            diffusion=self.diffusion(),
            sweep=self.sweep,
        )


def run_job(
    graph: CSRGraph,
    job: DiffusionJob,
    index: int = 0,
    parallel: bool = True,
    include_vector: bool = True,
) -> JobOutcome:
    """Execute one job: diffusion, then sweep cut, then flatten the result.

    Mirrors :func:`repro.core.api.local_cluster` exactly — same dispatch
    through :data:`ALGORITHMS`, same sweep — except that a diffusion with
    empty support yields an outcome with ``sweep=None`` instead of raising,
    so one degenerate parameter combination cannot abort a large batch
    (the historical NCP loop skipped such runs the same way).
    """
    if job.method not in ALGORITHMS:
        raise ValueError(
            f"unknown method {job.method!r}; choose from {sorted(ALGORITHMS)}"
        )
    params_cls, runner, takes_rng = ALGORITHMS[job.method]
    params = params_cls(**job.params)
    seeds = np.asarray(job.seeds, dtype=np.int64)
    start = time.perf_counter()
    with track() as tracker:
        if takes_rng:
            diffusion = runner(
                graph, seeds, params, parallel=parallel, rng=np.random.default_rng(job.rng)
            )
        else:
            diffusion = runner(graph, seeds, params, parallel=parallel)
        sweep = (
            sweep_cut(graph, diffusion.vector, parallel=parallel)
            if diffusion.support_size() > 0
            else None
        )
    elapsed = time.perf_counter() - start
    keys = values = None
    if include_vector:
        keys, values = vector_items(diffusion.vector)
    return JobOutcome(
        index=index,
        job=job,
        support_size=diffusion.support_size(),
        iterations=diffusion.iterations,
        pushes=diffusion.pushes,
        touched_edges=diffusion.touched_edges,
        residual_mass=float(diffusion.extras.get("residual_mass", 0.0)),
        work=tracker.work,
        depth=tracker.depth,
        wall_seconds=elapsed,
        sweep=sweep,
        vector_keys=keys,
        vector_values=values,
    )


# ----------------------------------------------------------------------
# Worker-process state.  Populated once per worker by the pool
# initializer; under the fork start method the CSRGraph object (and its
# numpy arrays) is inherited from the parent via copy-on-write pages and
# is therefore genuinely shared, not serialised.
# ----------------------------------------------------------------------
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_PARALLEL: bool = True
_WORKER_INCLUDE_VECTORS: bool = True


def _worker_init(
    offsets: np.ndarray, neighbors: np.ndarray, parallel: bool, include_vectors: bool
) -> None:
    global _WORKER_GRAPH, _WORKER_PARALLEL, _WORKER_INCLUDE_VECTORS
    graph = CSRGraph.__new__(CSRGraph)  # arrays were validated in the parent
    graph.offsets = offsets
    graph.neighbors = neighbors
    _WORKER_GRAPH = graph
    _WORKER_PARALLEL = parallel
    _WORKER_INCLUDE_VECTORS = include_vectors


def _worker_run(item: tuple[int, DiffusionJob]) -> JobOutcome:
    index, job = item
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    return run_job(
        _WORKER_GRAPH,
        job,
        index=index,
        parallel=_WORKER_PARALLEL,
        include_vector=_WORKER_INCLUDE_VECTORS,
    )


class SerialBackend:
    """Run jobs in the calling process, one after another.

    Deterministic by construction and free of pool start-up cost — the
    right choice for small batches, for debugging, and as the reference
    implementation the process backend is tested against.  Per-job
    work-depth records fold into any active tracker automatically (nested
    ``track()`` regions merge outward).
    """

    #: per-job costs already reach the caller's tracker via nested track()
    folds_into_tracker = True
    workers = 1

    def stream(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        for index, job in enumerate(jobs):
            yield run_job(
                graph, job, index=index, parallel=parallel, include_vector=include_vectors
            )


class ProcessPoolBackend:
    """Fan jobs out across a ``multiprocessing`` pool.

    Outcomes are yielded with ``imap`` in submission order, so reducers in
    the parent observe the identical deterministic stream the serial
    backend produces.  ``chunk_size`` controls how many jobs travel per
    IPC round-trip (default: enough for ~8 chunks per worker, capped so
    stragglers cannot hold a whole quarter of the batch).

    The zero-copy graph sharing this backend is built around exists only
    under the ``fork`` start method.  On platforms (or with an explicit
    ``start_method``) where ``fork`` is not in play, :meth:`stream` warns
    and runs the batch in-process instead — results are identical (the
    engine's determinism contract holds at any worker count), only the
    fan-out is lost.  Shared-memory attach for ``spawn``/``forkserver``
    is tracked on the ROADMAP.
    """

    folds_into_tracker = False

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        chunk_size: int | None = None,
    ) -> None:
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        elif start_method not in available:
            raise ValueError(
                f"start method {start_method!r} unavailable; choose from {available}"
            )
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.start_method = start_method
        self.chunk_size = chunk_size
        # The non-fork fallback runs jobs in-process, where nested track()
        # regions already fold per-job costs outward (like SerialBackend).
        self.folds_into_tracker = start_method != "fork"

    def _chunk_size(self, num_jobs: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, min(32, num_jobs // (self.workers * 8) or 1))

    def stream(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return
        if self.start_method != "fork":
            warnings.warn(
                f"process-pool start method {self.start_method!r} cannot share "
                "the CSR arrays zero-copy; falling back to in-process serial "
                "execution (results are identical; see ROADMAP: shared-memory "
                "attach for spawn)",
                RuntimeWarning,
                stacklevel=2,
            )
            for index, job in enumerate(jobs):
                yield run_job(
                    graph,
                    job,
                    index=index,
                    parallel=parallel,
                    include_vector=include_vectors,
                )
            return
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(graph.offsets, graph.neighbors, parallel, include_vectors),
        ) as pool:
            yield from pool.imap(
                _worker_run, enumerate(jobs), chunksize=self._chunk_size(len(jobs))
            )


class BatchEngine:
    """Front door of the batch subsystem: jobs in, reduced results out.

    Parameters
    ----------
    graph:
        The (read-only) graph every job runs against.
    backend:
        ``"serial"``, ``"process"``, a backend instance, or ``None`` to
        pick ``"process"`` when ``workers`` asks for more than one worker
        and ``"serial"`` otherwise.
    workers:
        Worker count for the process backend (default: all cores).
    parallel:
        Use the intra-query parallel implementations inside each job
        (``False`` selects the sequential references).
    include_vectors:
        Retain each job's diffusion vector on its outcome.  Disable for
        pure profile/statistics batches (e.g. NCP) to keep inter-process
        traffic and reducer memory proportional to the sweep alone.
    cache:
        Memoise job outcomes keyed by (graph fingerprint, method,
        canonical params, seed set): ``True`` for a fresh in-memory
        :class:`repro.cache.ResultCache`, a directory path for a
        disk-backed one, or a ready ``ResultCache`` (shared across
        engines).  Only cache misses are dispatched to the backend;
        outcomes still stream back in job order.

    >>> from repro.graph import barbell_graph
    >>> from repro.engine import BatchEngine, DiffusionJob
    >>> engine = BatchEngine(barbell_graph(8))
    >>> [o.size for o in engine.run([DiffusionJob.make(0), DiffusionJob.make(15)])]
    [8, 8]
    """

    def __init__(
        self,
        graph: CSRGraph,
        backend: "str | SerialBackend | ProcessPoolBackend | CachingBackend | None" = None,
        workers: int | None = None,
        parallel: bool = True,
        include_vectors: bool = True,
        cache: "ResultCache | bool | str | None" = None,
    ) -> None:
        from ..cache import CachingBackend, resolve_cache

        self.graph = graph
        self.parallel = parallel
        self.include_vectors = include_vectors
        if backend is None:
            backend = "process" if workers is not None and workers > 1 else "serial"
        if backend == "serial":
            self.backend: "SerialBackend | ProcessPoolBackend | CachingBackend" = (
                SerialBackend()
            )
        elif backend == "process":
            self.backend = ProcessPoolBackend(workers=workers)
        elif isinstance(backend, (SerialBackend, ProcessPoolBackend, CachingBackend)):
            self.backend = backend
        else:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'serial', 'process' "
                "or a backend instance"
            )
        resolved_cache = resolve_cache(cache)
        if resolved_cache is not None and not isinstance(self.backend, CachingBackend):
            self.backend = CachingBackend(self.backend, resolved_cache)

    @property
    def workers(self) -> int:
        return self.backend.workers

    @property
    def cache(self) -> "ResultCache | None":
        """The engine's result cache, or ``None`` when caching is off."""
        return getattr(self.backend, "cache", None)

    def map(self, jobs: Iterable[DiffusionJob]) -> Iterator[JobOutcome]:
        """Stream outcomes in job order (lazy; see :meth:`run` to reduce)."""
        return self.backend.stream(
            self.graph, list(jobs), self.parallel, self.include_vectors
        )

    def run(
        self,
        jobs: Iterable[DiffusionJob],
        reducer: Reducer | Sequence[Reducer] | None = None,
    ) -> Any:
        """Execute ``jobs`` and fold outcomes through ``reducer``.

        With no reducer, returns the list of outcomes.  With a sequence of
        reducers, every outcome is offered to each and a tuple of finals
        is returned — one pass over the batch, several aggregates out.
        For non-serial backends the batch's aggregate cost profile (work
        summed over jobs, depth the max over jobs — the independent-jobs
        composition rule) is recorded against any active tracker; cache
        hits are excluded, since a replayed outcome performs no diffusion
        work in this run.
        """
        single = reducer is None or isinstance(reducer, Reducer)
        reducers: list[Reducer] = (
            [reducer if reducer is not None else CollectReducer()]
            if single
            else list(reducer)  # type: ignore[arg-type]
        )
        total_work = 0.0
        max_depth = 0.0
        for outcome in self.map(jobs):
            if not outcome.cached:
                total_work += outcome.work
                max_depth = max(max_depth, outcome.depth)
            for item in reducers:
                item.update(outcome)
        if not self.backend.folds_into_tracker:
            record(work=total_work, depth=max_depth, category="engine")
        finals = tuple(item.finalize() for item in reducers)
        return finals[0] if single else finals


def resolve_engine(
    graph: CSRGraph,
    engine: BatchEngine | str | None = None,
    workers: int | None = None,
    parallel: bool = True,
    include_vectors: bool = True,
    cache: "ResultCache | bool | str | None" = None,
) -> BatchEngine:
    """Normalise the ``engine=`` argument accepted by the high-level APIs.

    ``engine`` may be a ready :class:`BatchEngine` (returned as-is; it must
    target the same graph, and it keeps its own cache configuration), a
    backend name, or ``None`` to infer the backend from ``workers``
    exactly like the :class:`BatchEngine` constructor does.  ``cache``
    follows the constructor's spec (``True`` / directory path /
    :class:`repro.cache.ResultCache`).
    """
    if isinstance(engine, BatchEngine):
        if engine.graph is not graph:
            raise ValueError("engine was built for a different graph")
        return engine
    return BatchEngine(
        graph,
        backend=engine,
        workers=workers,
        parallel=parallel,
        include_vectors=include_vectors,
        cache=cache,
    )
