"""The batch executor: dispatch independent diffusion jobs across workers.

The engine exploits the scale-out axis the paper's experiments rely on but
its artifact never mechanised: *cross-query* parallelism.  Each
:class:`~repro.engine.jobs.DiffusionJob` is an independent local
computation (a diffusion plus a sweep cut), so a stream of jobs can be
fanned out across a process pool while each individual job still uses the
intra-query parallel (bulk-synchronous) implementations.

The execution layer is organised in three planes:

* **Graph plane** (:mod:`repro.graph.shared`) — every worker reads the one
  shared CSR graph.  Under the ``fork`` start method workers inherit the
  parent's arrays through copy-on-write pages; under ``spawn`` and
  ``forkserver`` the parent exports the arrays once into
  ``multiprocessing.shared_memory`` segments and workers attach zero-copy.
  Either way the graph is never pickled, copied per job, or re-validated.
* **Scheduler plane** (:mod:`repro.engine.scheduler`) — jobs are ordered
  into fine-grained steal units (heaviest-first, method-aware
  O(1/(eps*alpha)) style estimates calibrated online against measured
  seconds) that workers pull dynamically from a shared queue, so one
  expensive corner of a parameter grid cannot straggle the batch.
  ``schedule="fifo"`` restores plain count-based chunking.
* **Backend plane** (this module) — :class:`PoolBackend` owns the shared
  in-process execution loop; :class:`SerialBackend` is exactly that loop,
  and :class:`ProcessPoolBackend` adds the pool, the graph hand-off and
  the chunk dispatch.  Both deliver outcomes **in job order**, so every
  reducer sees a deterministic stream at any worker count, under any
  start method, with either schedule.

Pool lifecycle is separated from batch streaming: every backend can
``open_session()`` an :class:`ExecutionSession` whose ``run(jobs)`` may be
called for *consecutive batches* against one prepared execution
environment.  For the process backend that environment is a
:class:`PoolSession` — one long-lived worker pool plus one shared-memory
graph export reused across every batch, which is what lets the serving
plane (:mod:`repro.serve`) multiplex many clients onto one pool instead of
paying pool start-up per call.  ``stream()`` remains the one-shot
convenience: it opens a session, runs the single batch, and closes the
session deterministically — including when the caller abandons the
iterator via ``close()``.

A third backend, :class:`repro.cache.CachingBackend`, wraps either of the
above so that only cache misses are dispatched; construct engines with
``cache=`` to enable it.  It participates in the session protocol too
(its sessions replay hits and send misses to the inner session).

Workers return compact, picklable :class:`JobOutcome` records (sweep
profile + counters + optionally the diffusion vector as two arrays) rather
than the algorithms' live sparse-set objects, keeping inter-process
traffic proportional to each job's support size.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

from ..core.api import ALGORITHMS
from ..core.result import ClusterResult, DiffusionResult, SweepResult, vector_items
from ..core.sweep import sweep_cut
from ..graph.csr import CSRGraph
from ..kernels import ensure_warm, resolve_kernel
from ..prims.sparse import SparseDict
from ..runtime import record, track
from ..runtime.cost_model import CostModel
from .jobs import DiffusionJob
from .reducers import CollectReducer, Reducer
from .scheduler import (
    SCHEDULES,
    estimate_cost,
    fifo_chunk_size,
    observe_outcome,
    plan_units,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import CachingBackend, ResultCache
    from ..core.options import EngineOptions
    from ..graph.evolving import EvolvingGraph, GraphVersion
    from ..graph.shared import SharedCSR

__all__ = [
    "JobOutcome",
    "run_job",
    "ExecutionSession",
    "KernelSession",
    "VersionGuardSession",
    "PoolSession",
    "PoolBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "WorkerStats",
    "DispatchStats",
    "BatchEngine",
    "resolve_engine",
]

#: environment override for the default start method — CI forces
#: ``REPRO_START_METHOD=spawn`` to exercise the shared-memory graph plane
#: on platforms whose default is ``fork``.
START_METHOD_ENV = "REPRO_START_METHOD"


@dataclass
class JobOutcome:
    """The picklable result of one executed job.

    Carries everything the reducers need: the job itself (echoed back),
    diffusion counters, the full sweep profile, the per-job work-depth
    totals and wall time, and — when the engine is configured with
    ``include_vectors`` — the diffusion vector flattened to parallel
    ``(keys, values)`` arrays.  ``cached`` marks outcomes replayed from
    the result cache (their counters describe the *original* execution;
    no diffusion work was performed for this job).  ``warmup_seconds``
    is one-time kernel preparation (a JIT compile or a C build) paid
    before this job's clock started; it is *excluded* from
    ``wall_seconds`` so throughput numbers measure steady state, and
    reported separately (mirroring the cache-hit exclusion rule).
    """

    index: int
    job: DiffusionJob
    support_size: int
    iterations: int
    pushes: int
    touched_edges: int
    residual_mass: float
    work: float
    depth: float
    wall_seconds: float
    sweep: SweepResult | None
    vector_keys: np.ndarray | None = None
    vector_values: np.ndarray | None = None
    cached: bool = False
    warmup_seconds: float = 0.0

    @property
    def conductance(self) -> float:
        """Best sweep conductance (``inf`` when the sweep was skipped)."""
        return self.sweep.best_conductance if self.sweep is not None else float("inf")

    @property
    def cluster(self) -> np.ndarray:
        """The best cluster, sorted by vertex id (empty when skipped)."""
        if self.sweep is None:
            return np.empty(0, dtype=np.int64)
        return np.sort(self.sweep.best_cluster)

    @property
    def size(self) -> int:
        return len(self.cluster)

    def diffusion(self) -> DiffusionResult:
        """Rebuild a :class:`DiffusionResult` from the flattened vector."""
        if self.vector_keys is None or self.vector_values is None:
            raise ValueError(
                "diffusion vector was not retained; run the engine with "
                "include_vectors=True"
            )
        vector = SparseDict(
            dict(zip(self.vector_keys.tolist(), self.vector_values.tolist()))
        )
        return DiffusionResult(
            vector=vector,
            iterations=self.iterations,
            pushes=self.pushes,
            touched_edges=self.touched_edges,
            extras={"residual_mass": self.residual_mass},
        )

    def to_cluster_result(self) -> ClusterResult:
        """Rebuild the high-level API's :class:`ClusterResult`."""
        if self.sweep is None:
            raise ValueError(
                f"job {self.job.describe()} produced an empty diffusion; "
                "no cluster to report"
            )
        from dataclasses import asdict

        params_cls, _, _ = ALGORITHMS[self.job.method]
        return ClusterResult(
            cluster=self.cluster,
            conductance=self.sweep.best_conductance,
            algorithm=self.job.method,
            params=asdict(params_cls(**self.job.params)),
            diffusion=self.diffusion(),
            sweep=self.sweep,
        )


def run_job(
    graph: CSRGraph,
    job: DiffusionJob,
    index: int = 0,
    parallel: bool = True,
    include_vector: bool = True,
) -> JobOutcome:
    """Execute one job: diffusion, then sweep cut, then flatten the result.

    Mirrors :func:`repro.core.api.local_cluster` exactly — same dispatch
    through :data:`ALGORITHMS`, same sweep — except that a diffusion with
    empty support yields an outcome with ``sweep=None`` instead of raising,
    so one degenerate parameter combination cannot abort a large batch
    (the historical NCP loop skipped such runs the same way).
    """
    if job.method not in ALGORITHMS:
        raise ValueError(
            f"unknown method {job.method!r}; choose from {sorted(ALGORITHMS)}"
        )
    params_cls, runner, takes_rng = ALGORITHMS[job.method]
    params = params_cls(**job.params)
    seeds = np.asarray(job.seeds, dtype=np.int64)
    # Resolve the kernel and pay any one-time preparation (JIT compile /
    # C build) *before* starting the clock: wall_seconds measures steady
    # state; the warm-up is reported separately on the outcome.
    kernel = resolve_kernel(job.kernel)
    warmup = ensure_warm(kernel)
    start = time.perf_counter()
    with track() as tracker:
        if takes_rng:
            diffusion = runner(
                graph,
                seeds,
                params,
                parallel=parallel,
                rng=np.random.default_rng(job.rng),
                kernel=kernel,
            )
        else:
            diffusion = runner(graph, seeds, params, parallel=parallel, kernel=kernel)
        sweep = (
            sweep_cut(graph, diffusion.vector, parallel=parallel, kernel=kernel)
            if diffusion.support_size() > 0
            else None
        )
    elapsed = time.perf_counter() - start
    keys = values = None
    if include_vector:
        keys, values = vector_items(diffusion.vector)
    return JobOutcome(
        index=index,
        job=job,
        support_size=diffusion.support_size(),
        iterations=diffusion.iterations,
        pushes=diffusion.pushes,
        touched_edges=diffusion.touched_edges,
        residual_mass=float(diffusion.extras.get("residual_mass", 0.0)),
        work=tracker.work,
        depth=tracker.depth,
        wall_seconds=elapsed,
        sweep=sweep,
        vector_keys=keys,
        vector_values=values,
        warmup_seconds=warmup,
    )


# ----------------------------------------------------------------------
# Worker-process state, populated once per worker by the pool initializer.
# Under ``fork`` the CSR arrays arrive through copy-on-write inheritance;
# under ``spawn``/``forkserver`` the worker attaches to the parent's
# shared-memory segments.  Either way the graph is shared, not serialised.
# ----------------------------------------------------------------------
_WORKER_GRAPH: CSRGraph | None = None
_WORKER_SHARED: "SharedCSR | None" = None
_WORKER_PARALLEL: bool = True
_WORKER_INCLUDE_VECTORS: bool = True


def _worker_init(payload: tuple, parallel: bool, include_vectors: bool) -> None:
    global _WORKER_GRAPH, _WORKER_SHARED, _WORKER_PARALLEL, _WORKER_INCLUDE_VECTORS
    kind, *rest = payload
    if kind == "fork":
        offsets, neighbors = rest
        graph = CSRGraph.__new__(CSRGraph)  # arrays were validated in the parent
        graph.offsets = offsets
        graph.neighbors = neighbors
    else:  # "shared": attach zero-copy; keep the segments alive for the
        # worker's whole life (the attachment holds them).
        (handle,) = rest
        _WORKER_SHARED = CSRGraph.attach(handle)
        graph = _WORKER_SHARED.graph
    _WORKER_GRAPH = graph
    _WORKER_PARALLEL = parallel
    _WORKER_INCLUDE_VECTORS = include_vectors


def _worker_run_chunk(chunk: Sequence[tuple[int, DiffusionJob]]) -> list[JobOutcome]:
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    return [
        run_job(
            _WORKER_GRAPH,
            job,
            index=index,
            parallel=_WORKER_PARALLEL,
            include_vector=_WORKER_INCLUDE_VECTORS,
        )
        for index, job in chunk
    ]


def _worker_run_unit(
    unit: Sequence[tuple[int, DiffusionJob]],
) -> tuple[int, float, list[JobOutcome]]:
    """Run one steal unit; tag the result with the worker's identity.

    The pid and the unit's busy seconds let the parent attribute work to
    workers without any extra IPC — the dispatch stats (steals, idle,
    busy) fall out of the tagged stream.
    """
    start = time.perf_counter()
    outcomes = _worker_run_chunk(unit)
    return os.getpid(), time.perf_counter() - start, outcomes


@dataclass
class WorkerStats:
    """Per-worker dispatch accounting for one or more batches."""

    units: int = 0
    jobs: int = 0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    steals: int = 0


@dataclass
class DispatchStats:
    """Work-stealing dispatch accounting across a backend's batches.

    A worker's *steals* count the units it pulled from the shared queue
    beyond its first in a batch — every one is a dynamic rebalancing
    decision a pre-planned chunk assignment could not have made.  *Idle*
    is the gap between a worker's busy seconds and the batch span (the
    straggler tail the stealing loop exists to shrink).
    """

    batches: int = 0
    units: int = 0
    jobs: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    per_worker: dict[int, WorkerStats] = field(default_factory=dict)

    def record_batch(
        self,
        span: float,
        tallies: dict[int, tuple[int, int, float]],
        workers: int,
    ) -> None:
        """Fold one batch in: ``tallies`` maps pid -> (units, jobs, busy)."""
        self.batches += 1
        for pid, (units, jobs, busy) in tallies.items():
            stats = self.per_worker.get(pid)
            if stats is None:
                stats = self.per_worker[pid] = WorkerStats()
            idle = max(0.0, span - busy)
            steals = max(0, units - 1)
            stats.units += units
            stats.jobs += jobs
            stats.busy_seconds += busy
            stats.idle_seconds += idle
            stats.steals += steals
            self.units += units
            self.jobs += jobs
            self.steals += steals
            self.busy_seconds += busy
            self.idle_seconds += idle
        # Workers the queue never reached sat idle for the whole span.
        self.idle_seconds += span * max(0, workers - len(tallies))

    def describe(self) -> dict[str, float | int]:
        return {
            "batches": self.batches,
            "units": self.units,
            "jobs": self.jobs,
            "steals": self.steals,
            "busy_seconds": self.busy_seconds,
            "idle_seconds": self.idle_seconds,
            "workers_seen": len(self.per_worker),
        }


class ExecutionSession:
    """A prepared execution environment that serves consecutive batches.

    Sessions split a backend's *lifecycle* (expensive, once: start a pool,
    export the graph) from *batch streaming* (cheap, many times): after
    ``backend.open_session(graph, ...)``, every ``run(jobs)`` call streams
    one batch of outcomes in job order against the same prepared
    environment.  The base implementation has nothing to prepare — it is
    the in-process loop, so :class:`SerialBackend` sessions are just that
    loop with a close guard.  :class:`PoolSession` overrides ``_run`` to
    dispatch through a persistent worker pool.

    Batches are strictly sequential: drain (or close) one ``run`` iterator
    before starting the next.  Sessions are context managers; ``close()``
    is idempotent.
    """

    def __init__(
        self,
        backend: "PoolBackend",
        graph: CSRGraph,
        parallel: bool,
        include_vectors: bool,
    ) -> None:
        self.backend = backend
        self.graph = graph
        self.parallel = parallel
        self.include_vectors = include_vectors
        self.batches = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def run(self, jobs: Iterable[DiffusionJob]) -> Iterator[JobOutcome]:
        """Stream one batch of outcomes, in job order (lazy)."""
        if self._closed:
            raise RuntimeError("session is closed")
        jobs = list(jobs)
        self.batches += 1
        return self._run(jobs)

    def _run(self, jobs: Sequence[DiffusionJob]) -> Iterator[JobOutcome]:
        return self.backend._run_inline(
            self.graph, jobs, self.parallel, self.include_vectors
        )

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PoolSession(ExecutionSession):
    """A long-lived worker pool bound to one shared graph export.

    Created by :meth:`ProcessPoolBackend.open_session`: the graph crosses
    the process boundary exactly once (copy-on-write pages under ``fork``,
    one :class:`~repro.graph.shared.SharedCSR` export under
    ``spawn``/``forkserver``) and every subsequent ``run(jobs)`` reuses
    both the pool and the export — no per-batch pool start-up, no
    re-export.  ``close()`` terminates and joins the pool, then unlinks
    the shared segments, deterministically.
    """

    def __init__(
        self,
        backend: "ProcessPoolBackend",
        graph: CSRGraph,
        parallel: bool,
        include_vectors: bool,
    ) -> None:
        super().__init__(backend, graph, parallel, include_vectors)
        payload, self.shared = backend._graph_payload(graph)
        context = multiprocessing.get_context(backend.start_method)
        try:
            self._pool = context.Pool(
                processes=backend.workers,
                initializer=_worker_init,
                initargs=(payload, parallel, include_vectors),
            )
        except BaseException:
            if self.shared is not None:
                self.shared.unlink()
            raise

    def _run(self, jobs: Sequence[DiffusionJob]) -> Iterator[JobOutcome]:
        backend: "ProcessPoolBackend" = self.backend  # type: ignore[assignment]
        model = backend.cost_model
        units = plan_units(
            jobs,
            backend.workers,
            schedule=backend.schedule,
            chunk_size=backend.chunk_size,
            estimator=lambda job: estimate_cost(job, model),
        )
        # The pool's shared task queue *is* the steal queue: every worker
        # pulls the next undispatched unit the moment it finishes its
        # current one, so placement follows measured durations, not the
        # estimates.  Units complete in arbitrary order; outcomes carry
        # their original index and are re-emitted in job order, so the
        # deterministic stream contract holds at any worker count.
        pending: dict[int, JobOutcome] = {}
        next_index = 0
        tallies: dict[int, tuple[int, int, float]] = {}
        start = time.perf_counter()
        try:
            for pid, busy, outcomes in self._pool.imap_unordered(
                _worker_run_unit, units
            ):
                units_done, jobs_done, busy_total = tallies.get(pid, (0, 0, 0.0))
                tallies[pid] = (
                    units_done + 1,
                    jobs_done + len(outcomes),
                    busy_total + busy,
                )
                for outcome in outcomes:
                    observe_outcome(model, outcome)
                    pending[outcome.index] = outcome
                while next_index in pending:
                    yield pending.pop(next_index)
                    next_index += 1
        finally:
            # Covers abandoned iterators too: the batch's dispatch
            # accounting reflects whatever actually ran.
            backend.dispatch.record_batch(
                time.perf_counter() - start, tallies, backend.workers
            )

    def close(self) -> None:
        """Shut the pool down and unlink the graph export (idempotent).

        ``terminate()`` + ``join()`` rather than ``close()`` + ``join()``:
        an abandoned mid-batch iterator may have chunks still queued, and
        a deterministic shutdown must not wait for them.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.terminate()
        self._pool.join()
        if self.shared is not None:
            self.shared.unlink()


class PoolBackend:
    """Base of the execution backends: the shared in-process job loop.

    Subclasses override :meth:`stream` and :meth:`open_session`; the base
    implementation — one job after another in the calling process,
    outcomes in job order — is both :class:`SerialBackend`'s whole
    behaviour and the single place any in-process execution lives (the
    process backend used to duplicate this loop as its non-fork fallback;
    that path no longer exists).
    """

    #: per-job costs reach the caller's tracker via nested track() when
    #: jobs run in-process; pool subclasses record an aggregate instead.
    folds_into_tracker = True
    workers = 1

    def open_session(
        self,
        graph: CSRGraph,
        parallel: bool = True,
        include_vectors: bool = True,
    ) -> ExecutionSession:
        """A session serving consecutive batches (see :class:`ExecutionSession`)."""
        return ExecutionSession(self, graph, parallel, include_vectors)

    def stream(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        return self._run_inline(graph, jobs, parallel, include_vectors)

    def _run_inline(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        for index, job in enumerate(jobs):
            yield run_job(
                graph, job, index=index, parallel=parallel, include_vector=include_vectors
            )


class SerialBackend(PoolBackend):
    """Run jobs in the calling process, one after another.

    Deterministic by construction and free of pool start-up cost — the
    right choice for small batches, for debugging, and as the reference
    implementation the process backend is tested against.  Per-job
    work-depth records fold into any active tracker automatically (nested
    ``track()`` regions merge outward).
    """


class ProcessPoolBackend(PoolBackend):
    """Fan jobs out across a ``multiprocessing`` pool.

    The graph reaches the workers through the graph plane: copy-on-write
    inheritance under ``fork``, shared-memory attach
    (:class:`repro.graph.shared.SharedCSR`) under ``spawn`` and
    ``forkserver`` — every start method gets real multi-process fan-out
    with the same no-copy, no-per-job-pickling behaviour.  Segments are
    unlinked deterministically when the stream finishes (an ``atexit``
    guard covers abandoned streams).

    Dispatch is **work-stealing**: the scheduler plane
    (:mod:`repro.engine.scheduler`) orders jobs into fine-grained units
    and the pool's shared task queue hands the next undispatched unit to
    whichever worker finishes first, so placement adapts to measured
    durations instead of trusting the estimates.  ``schedule="cost"``
    (default) orders units heaviest-first (LPT list scheduling) using
    estimates calibrated online by the backend's
    :class:`~repro.runtime.cost_model.CostModel` (seconds-per-work-unit
    learned per method and kernel from completed outcomes, within and
    across batches in a session); ``schedule="fifo"`` keeps the legacy
    contiguous count-based slicing.  ``chunk_size`` keeps its historical
    "jobs per IPC round-trip" meaning under both schedules.  Per-worker
    busy/idle/steal accounting accumulates on ``backend.dispatch``.

    Units execute out of order across workers, but every outcome carries
    its original index and the stream re-emits them **in job order**, so
    reducers in the parent observe the identical deterministic stream the
    serial backend produces.  Re-ordering buffers completed outcomes
    until their index is next; under ``schedule="cost"`` (non-contiguous
    units) that buffer can, in the worst case, approach the batch size —
    prefer ``include_vectors=False`` for huge batches (outcomes shrink to
    counters + sweep), or ``schedule="fifo"`` to keep the buffer at the
    in-flight units.
    """

    folds_into_tracker = False

    def __init__(
        self,
        workers: int | None = None,
        start_method: str | None = None,
        chunk_size: int | None = None,
        schedule: str = "cost",
    ) -> None:
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = os.environ.get(START_METHOD_ENV) or None
        if start_method is None:
            start_method = "fork" if "fork" in available else available[0]
        if start_method not in available:
            raise ValueError(
                f"start method {start_method!r} unavailable; choose from {available}"
            )
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; choose from {SCHEDULES}"
            )
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.start_method = start_method
        self.chunk_size = chunk_size
        self.schedule = schedule
        # Session-scoped learning and accounting: the cost model calibrates
        # estimates from completed outcomes (within and across batches) and
        # the dispatch stats accumulate per-worker busy/idle/steal counts.
        self.cost_model = CostModel()
        self.dispatch = DispatchStats()

    def _chunk_size(self, num_jobs: int) -> int:
        """Jobs per chunk for count-based plans — delegates to the
        scheduler's single sizing rule (kept as the historical entry
        point callers and tests know)."""
        return fifo_chunk_size(num_jobs, self.workers, self.chunk_size)

    def _graph_payload(self, graph: CSRGraph) -> "tuple[tuple, SharedCSR | None]":
        """(initializer payload, owning SharedCSR to unlink — or None)."""
        if self.start_method == "fork":
            return ("fork", graph.offsets, graph.neighbors), None
        shared = graph.share()
        return ("shared", shared.handle()), shared

    def open_session(
        self,
        graph: CSRGraph,
        parallel: bool = True,
        include_vectors: bool = True,
    ) -> PoolSession:
        """Start the pool and export the graph once; see :class:`PoolSession`."""
        return PoolSession(self, graph, parallel, include_vectors)

    def stream(
        self,
        graph: CSRGraph,
        jobs: Sequence[DiffusionJob],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator[JobOutcome]:
        jobs = list(jobs)
        if not jobs:
            return
        # One-shot use of the session protocol.  The try/finally makes
        # teardown deterministic even for an abandoned iterator: closing
        # the generator raises GeneratorExit at the yield, and the session
        # close terminates + joins the pool and unlinks the graph export.
        session = self.open_session(graph, parallel, include_vectors)
        try:
            yield from session.run(jobs)
        finally:
            session.close()


class KernelSession:
    """A thin session wrapper applying an engine's default kernel.

    Delegates everything to the inner session; only ``run`` intervenes,
    stamping the engine-level ``kernel=`` onto jobs that do not carry
    their own.  Kept separate from :class:`ExecutionSession` so backend
    session classes (pool, router, caching) need no kernel awareness —
    ``job.kernel`` is the single source of truth crossing process
    boundaries.
    """

    def __init__(self, session: ExecutionSession, kernel: str) -> None:
        self._session = session
        self._kernel = kernel

    def run(self, jobs: Iterable[DiffusionJob]) -> Iterator[JobOutcome]:
        return self._session.run(_apply_kernel(jobs, self._kernel))

    def close(self) -> None:
        self._session.close()

    def __enter__(self) -> "KernelSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._session, name)


class VersionGuardSession:
    """Refuse batches once a *tracking* engine's evolving graph advances.

    Sessions pin real resources to one edge set — a shared-memory export,
    a sharded partition (:class:`~repro.engine.router.RouterSession`) —
    so after ``apply_updates`` a session opened by a tracking engine would
    silently keep answering against the superseded version.  This wrapper
    re-checks freshness at every ``run``; pinned engines
    (``graph_version=<int>``) never carry it, since answering against the
    pinned version is exactly what they promise.
    """

    def __init__(self, session: ExecutionSession, engine: "BatchEngine") -> None:
        self._session = session
        self._engine = engine

    def run(self, jobs: Iterable[DiffusionJob]) -> Iterator[JobOutcome]:
        sharded = getattr(self._session, "sharded", None)
        self._engine._check_fresh(
            handle_fingerprint=(
                sharded.handle().fingerprint if sharded is not None else None
            )
        )
        return self._session.run(jobs)

    def close(self) -> None:
        self._session.close()

    def __enter__(self) -> "VersionGuardSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._session, name)


def _apply_kernel(
    jobs: Iterable[DiffusionJob], kernel: str | None
) -> list[DiffusionJob]:
    """Stamp the engine default kernel onto jobs that carry none."""
    jobs = list(jobs)
    if kernel is None:
        return jobs
    return [
        job if job.kernel is not None else replace(job, kernel=kernel) for job in jobs
    ]


class BatchEngine:
    """Front door of the batch subsystem: jobs in, reduced results out.

    Parameters
    ----------
    graph:
        The (read-only) graph every job runs against — a plain
        :class:`~repro.graph.csr.CSRGraph`, or an
        :class:`~repro.graph.evolving.EvolvingGraph` version chain (see
        ``graph_version`` below for which version is executed).
    backend:
        ``"serial"``, ``"process"``, ``"sharded"``, a backend instance,
        or ``None`` to pick ``"sharded"`` when ``shards`` is given,
        ``"process"`` when ``workers`` asks for more than one worker,
        and ``"serial"`` otherwise.  Passing a backend *instance* together
        with ``workers``, ``start_method`` or ``schedule`` raises
        ``ValueError`` — those knobs configure a backend built by name and
        would otherwise be silently ignored.
    workers:
        Worker count for the process backend (default: all cores).  Only
        consulted when the backend is built by name.
    parallel:
        Use the intra-query parallel implementations inside each job
        (``False`` selects the sequential references).
    include_vectors:
        Retain each job's diffusion vector on its outcome.  Disable for
        pure profile/statistics batches (e.g. NCP) to keep inter-process
        traffic and reducer memory proportional to the sweep alone.
    start_method:
        ``multiprocessing`` start method for the process backend
        (``"fork"``, ``"spawn"``, ``"forkserver"``).  Any of them fans
        out for real — non-fork methods attach the graph through shared
        memory.  Default: ``$REPRO_START_METHOD``, else ``fork`` where
        available.  Only consulted when the backend is built by name.
    schedule:
        Chunking policy for the process backend: ``"cost"`` (default,
        cost-balanced longest-first chunks) or ``"fifo"`` (contiguous
        count-based chunks).  Only consulted when the backend is built by
        name.
    shards:
        Partition the graph into this many contiguous vertex-range shards
        and execute through the shard-routed backend
        (:class:`repro.engine.router.ShardRouter`): each job runs on a
        lazy view over the shard(s) owning its seeds, so the whole CSR
        need not be resident.  Implies ``backend="sharded"``; incompatible
        with ``workers``/``start_method``/``schedule`` (the router is
        in-process in this release).
    max_resident_shards:
        With ``shards``: cap on shards mapped at once per executing view
        (LRU detach beyond it) — the resident-graph-memory bound.
    spill_shards:
        With ``shards``: distinct-shards-per-job threshold beyond which a
        diffusion falls back to whole-graph execution (results are
        bit-identical either way).
    halo_bytes:
        With ``shards``: byte budget of each view's halo cache (hot
        boundary-vertex adjacency rows served without attaching the
        neighbour shard).  ``None`` keeps the default budget, ``0``
        disables the cache.
    cache:
        Memoise job outcomes keyed by (graph fingerprint, method,
        canonical params, seed set): ``True`` for a fresh in-memory
        :class:`repro.cache.ResultCache`, a directory path for a
        disk-backed one, or a ready ``ResultCache`` (shared across
        engines).  Only cache misses are dispatched to the backend;
        outcomes still stream back in job order.
    kernel:
        Default loop implementation for jobs that do not carry their own
        ``DiffusionJob.kernel`` (:mod:`repro.kernels`): ``None`` (keep
        the jobs' setting, ultimately ``"python"``), ``"python"``,
        ``"numba"``, ``"c"``, or ``"auto"``.  Validated here so an
        unavailable explicit request fails at construction, not in a
        worker.  Outcomes are bit-identical across kernels, and the
        kernel is excluded from cache keys.
    graph_version:
        Which version of an :class:`~repro.graph.evolving.EvolvingGraph`
        to execute against (requires ``graph`` to be one).  An integer
        **pins** the engine: it answers against that exact version
        forever, even after the chain advances — correct by construction,
        since cache keys embed the version's fingerprint.  ``None``
        (default) **tracks**: the engine binds to the latest version at
        construction and every subsequent dispatch re-checks the chain —
        if it has advanced, the dispatch raises a
        :class:`~repro.core.options.RequestError` (code 409) naming both
        versions instead of silently answering against stale edges.
        Recover with :meth:`at_version` (shares this engine's backend and
        cache).
    options:
        The same knob surface as one frozen, pre-validated record
        (:class:`repro.core.options.EngineOptions`) — the canonical
        spelling shared with the CLI and the wire schema.  Passing
        ``options=`` together with any of the loose kwargs above raises
        ``ValueError`` (they would be silently ignored otherwise).

    >>> from repro.graph import barbell_graph
    >>> from repro.engine import BatchEngine, DiffusionJob
    >>> engine = BatchEngine(barbell_graph(8))
    >>> [o.size for o in engine.run([DiffusionJob.make(0), DiffusionJob.make(15)])]
    [8, 8]
    """

    def __init__(
        self,
        graph: "CSRGraph | EvolvingGraph",
        backend: "str | PoolBackend | CachingBackend | None" = None,
        workers: int | None = None,
        parallel: bool | None = None,
        include_vectors: bool | None = None,
        cache: "ResultCache | bool | str | None" = None,
        start_method: str | None = None,
        schedule: str | None = None,
        shards: int | None = None,
        max_resident_shards: int | None = None,
        spill_shards: int | None = None,
        halo_bytes: int | None = None,
        kernel: str | None = None,
        graph_version: int | None = None,
        options: "EngineOptions | None" = None,
    ) -> None:
        from ..cache import CachingBackend, resolve_cache
        from ..graph.evolving import EvolvingGraph

        if options is not None:
            options.reject_loose(
                "engine",
                backend=backend,
                workers=workers,
                parallel=parallel,
                include_vectors=include_vectors,
                cache=cache,
                start_method=start_method,
                schedule=schedule,
                shards=shards,
                max_resident_shards=max_resident_shards,
                spill_shards=spill_shards,
                halo_bytes=halo_bytes,
                kernel=kernel,
                graph_version=graph_version,
            )
            options.validate()
            backend = options.backend
            workers = options.workers
            parallel = options.parallel
            include_vectors = options.include_vectors
            cache = options.cache
            start_method = options.start_method
            schedule = options.schedule
            shards = options.shards
            max_resident_shards = options.max_resident_shards
            spill_shards = options.spill_shards
            halo_bytes = options.halo_bytes
            kernel = options.kernel
            graph_version = options.graph_version
        if isinstance(graph, EvolvingGraph):
            self.evolving: "EvolvingGraph | None" = graph
            self.graph_version = None if graph_version is None else int(graph_version)
            self.version: "GraphVersion | None" = graph.at(self.graph_version)
            self.graph = self.version.graph
        else:
            if graph_version is not None:
                raise ValueError(
                    "graph_version= selects a version of an EvolvingGraph; "
                    "this engine was given a plain CSRGraph"
                )
            self.evolving = None
            self.graph_version = None
            self.version = None
            self.graph = graph
        # None is the "engine default" sentinel (it lets the options path
        # detect explicitly-set loose kwargs); the defaults stay True.
        self.parallel = True if parallel is None else parallel
        self.include_vectors = True if include_vectors is None else include_vectors
        if kernel is not None:
            resolve_kernel(kernel)  # fail fast on unknown/unavailable kernels
        self.kernel = kernel
        if backend is None:
            if shards is not None:
                backend = "sharded"
            else:
                backend = "process" if workers is not None and workers > 1 else "serial"
        shard_knobs = [
            name
            for name, value in (
                ("shards", shards),
                ("max_resident_shards", max_resident_shards),
                ("spill_shards", spill_shards),
                ("halo_bytes", halo_bytes),
            )
            if value is not None
        ]
        if backend in ("serial", "process") and shard_knobs:
            raise ValueError(
                f"{', '.join(shard_knobs)} only apply to the sharded backend "
                f"(pass shards= or backend='sharded'), not backend={backend!r}"
            )
        if backend == "sharded":
            from .router import ShardRouter

            conflicts = [
                name
                for name, value in (
                    ("workers", workers),
                    ("start_method", start_method),
                    ("schedule", schedule),
                )
                if value is not None
            ]
            if conflicts:
                raise ValueError(
                    f"the sharded backend is in-process; {', '.join(conflicts)} "
                    "would configure a process pool and be silently ignored"
                )
            self.backend: "PoolBackend | CachingBackend" = ShardRouter(
                shards=shards if shards is not None else 4,
                max_resident_shards=max_resident_shards,
                spill_shards=spill_shards,
                halo_bytes=halo_bytes,
            )
        elif backend == "serial":
            self.backend = SerialBackend()
        elif backend == "process":
            self.backend = ProcessPoolBackend(
                workers=workers,
                start_method=start_method,
                schedule=schedule if schedule is not None else "cost",
            )
        elif isinstance(backend, (PoolBackend, CachingBackend)):
            conflicts = [
                *shard_knobs,
                *(
                    name
                    for name, value in (
                        ("workers", workers),
                        ("start_method", start_method),
                        ("schedule", schedule),
                    )
                    if value is not None
                ),
            ]
            if conflicts:
                raise ValueError(
                    f"backend is already constructed; {', '.join(conflicts)} "
                    "would be silently ignored — configure them on the "
                    "backend instance (or pass the backend by name)"
                )
            self.backend = backend
        else:
            raise ValueError(
                f"unknown backend {backend!r}; expected 'serial', 'process', "
                "'sharded' or a backend instance"
            )
        resolved_cache = resolve_cache(cache)
        if resolved_cache is not None and not isinstance(self.backend, CachingBackend):
            self.backend = CachingBackend(self.backend, resolved_cache)

    @property
    def workers(self) -> int:
        return self.backend.workers

    @property
    def cache(self) -> "ResultCache | None":
        """The engine's result cache, or ``None`` when caching is off."""
        return getattr(self.backend, "cache", None)

    @property
    def _inner_backend(self) -> "PoolBackend":
        """The execution backend under any caching wrapper."""
        return getattr(self.backend, "inner", self.backend)

    @property
    def dispatch_stats(self) -> "DispatchStats | None":
        """Work-stealing dispatch accounting, or ``None`` for in-process
        backends (which have no workers to account for)."""
        return getattr(self._inner_backend, "dispatch", None)

    @property
    def cost_model(self) -> "CostModel | None":
        """The backend's online cost calibration, or ``None`` for
        backends that do not own one (serial, sharded)."""
        return getattr(self._inner_backend, "cost_model", None)

    def _check_fresh(self, handle_fingerprint: str | None = None) -> None:
        """Raise when a *tracking* engine's evolving graph has advanced.

        Pinned engines (explicit ``graph_version=``) and plain-graph
        engines never raise.  The error is a
        :class:`~repro.core.options.RequestError` with code 409
        ("conflict": the request was well-formed but the bound state
        moved) naming both versions — and, for sharded execution, the
        fingerprint stamped on the stale
        :class:`~repro.graph.sharded.ShardedCSRHandle` — so callers can
        tell *which* superseded edge set they were about to read.
        """
        if self.evolving is None or self.graph_version is not None:
            return
        assert self.version is not None
        latest = self.evolving.latest
        if latest.version == self.version.version:
            return
        from ..core.options import RequestError

        detail = (
            f"engine tracks the evolving graph but is bound to version "
            f"{self.version.version} (fingerprint {self.version.fingerprint()[:12]}); "
            f"the chain has advanced to version {latest.version} "
            f"(fingerprint {latest.fingerprint()[:12]})"
        )
        if handle_fingerprint is not None:
            detail += (
                f"; the sharded export's handle is stamped {handle_fingerprint[:12]}"
            )
        raise RequestError(
            "graph_version",
            detail
            + ". Rebuild with engine.at_version(...) or pin graph_version= "
            "to keep answering against the old edges.",
            code=409,
        )

    def at_version(self, version: int | None = None) -> "BatchEngine":
        """A sibling engine pinned to ``version`` of the same evolving graph.

        The sibling *shares this engine's backend instance* — and
        therefore its cache, cost model and dispatch accounting — so
        switching versions costs one constructor call, not a pool
        restart.  ``version=None`` pins to the chain's current latest.
        This is how the serving plane follows updates: one engine per
        admitted version, all over one backend.
        """
        if self.evolving is None:
            raise ValueError(
                "at_version() requires an engine built on an EvolvingGraph"
            )
        if version is None:
            version = self.evolving.latest.version
        return BatchEngine(
            self.evolving,
            backend=self.backend,
            parallel=self.parallel,
            include_vectors=self.include_vectors,
            kernel=self.kernel,
            graph_version=version,
        )

    def open_session(self) -> ExecutionSession:
        """A session serving *consecutive batches* on one prepared backend.

        For the process backend this starts the pool and exports the graph
        exactly once; every ``session.run(jobs)`` after that reuses both.
        This is the primitive the serving plane
        (:class:`repro.serve.DiffusionService`) multiplexes clients onto.
        Close the session (it is a context manager) to tear the pool down.
        An engine-level ``kernel=`` default is applied by a transparent
        :class:`KernelSession` wrapper; a tracking evolving engine adds a
        :class:`VersionGuardSession` so a session outliving an
        ``apply_updates`` refuses to answer against the superseded edges.
        """
        self._check_fresh()
        session: Any = self.backend.open_session(
            self.graph, self.parallel, self.include_vectors
        )
        if self.kernel is not None:
            session = KernelSession(session, self.kernel)
        if self.evolving is not None and self.graph_version is None:
            session = VersionGuardSession(session, self)
        return session  # type: ignore[return-value]

    def map(self, jobs: Iterable[DiffusionJob]) -> Iterator[JobOutcome]:
        """Stream outcomes in job order (lazy; see :meth:`run` to reduce)."""
        self._check_fresh()
        return self.backend.stream(
            self.graph, _apply_kernel(jobs, self.kernel), self.parallel, self.include_vectors
        )

    def run(
        self,
        jobs: Iterable[DiffusionJob],
        reducer: Reducer | Sequence[Reducer] | None = None,
    ) -> Any:
        """Execute ``jobs`` and fold outcomes through ``reducer``.

        With no reducer, returns the list of outcomes.  With a sequence of
        reducers, every outcome is offered to each and a tuple of finals
        is returned — one pass over the batch, several aggregates out.
        For non-serial backends the batch's aggregate cost profile (work
        summed over jobs, depth the max over jobs — the independent-jobs
        composition rule) is recorded against any active tracker; cache
        hits are excluded, since a replayed outcome performs no diffusion
        work in this run.
        """
        single = reducer is None or isinstance(reducer, Reducer)
        reducers: list[Reducer] = (
            [reducer if reducer is not None else CollectReducer()]
            if single
            else list(reducer)  # type: ignore[arg-type]
        )
        total_work = 0.0
        max_depth = 0.0
        for outcome in self.map(jobs):
            if not outcome.cached:
                total_work += outcome.work
                max_depth = max(max_depth, outcome.depth)
            for item in reducers:
                item.update(outcome)
        if not self.backend.folds_into_tracker:
            record(work=total_work, depth=max_depth, category="engine")
        finals = tuple(item.finalize() for item in reducers)
        return finals[0] if single else finals


def resolve_engine(
    graph: "CSRGraph | EvolvingGraph",
    engine: BatchEngine | str | None = None,
    workers: int | None = None,
    parallel: bool | None = None,
    include_vectors: bool | None = None,
    cache: "ResultCache | bool | str | None" = None,
    start_method: str | None = None,
    schedule: str | None = None,
    shards: int | None = None,
    max_resident_shards: int | None = None,
    spill_shards: int | None = None,
    halo_bytes: int | None = None,
    kernel: str | None = None,
    graph_version: int | None = None,
    options: "EngineOptions | None" = None,
) -> BatchEngine:
    """Normalise the ``engine=`` argument accepted by the high-level APIs.

    ``engine`` may be a ready :class:`BatchEngine` (returned as-is; it
    keeps its own backend, scheduling and cache configuration — combining
    it with ``workers``, ``cache``, ``start_method`` or ``schedule``
    raises ``ValueError``, since those knobs would be silently ignored),
    a backend name, or ``None`` to infer the backend from ``workers``
    exactly like the :class:`BatchEngine` constructor does.  A ready
    engine must target a graph whose *content* matches ``graph``: the
    fast path accepts the identical object, otherwise the CSR
    fingerprints are compared, so an engine built for a content-identical
    copy (say, the same graph reloaded from disk) is accepted rather than
    rejected on object identity.  ``cache``, ``start_method`` and
    ``schedule`` follow the constructor's spec, and ``options=`` carries
    the whole knob surface as one :class:`repro.core.options.EngineOptions`
    record (mutually exclusive with the loose kwargs *and* with a
    prebuilt engine, for the same no-silently-ignored-knob reason).
    """
    from ..graph.evolving import EvolvingGraph

    if isinstance(engine, BatchEngine):
        if isinstance(graph, EvolvingGraph):
            # Version chains are mutable containers, so identity is the
            # only safe match — two chains with equal snapshots diverge
            # the moment either applies an update.
            if engine.evolving is not graph:
                raise ValueError("engine was built for a different graph")
        elif engine.graph is not graph and engine.graph.fingerprint() != graph.fingerprint():
            raise ValueError("engine was built for a different graph")
        ignored = [
            name
            for name, value in (
                ("workers", workers),
                ("cache", cache),
                ("start_method", start_method),
                ("schedule", schedule),
                ("shards", shards),
                ("max_resident_shards", max_resident_shards),
                ("spill_shards", spill_shards),
                ("halo_bytes", halo_bytes),
                ("kernel", kernel),
                ("graph_version", graph_version),
                ("options", options),
            )
            if value is not None and value is not False
        ]
        if ignored:
            raise ValueError(
                f"engine is already constructed; {', '.join(ignored)} would "
                "be silently ignored — configure them on the engine instead"
            )
        return engine
    return BatchEngine(
        graph,
        backend=engine,
        workers=workers,
        parallel=parallel,
        include_vectors=include_vectors,
        cache=cache,
        start_method=start_method,
        schedule=schedule,
        shards=shards,
        max_resident_shards=max_resident_shards,
        spill_shards=spill_shards,
        halo_bytes=halo_bytes,
        kernel=kernel,
        graph_version=graph_version,
        options=options,
    )
