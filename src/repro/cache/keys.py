"""Cache keys: the canonical identity of one diffusion query.

Two jobs must share a cache entry exactly when the engine is guaranteed to
produce bit-identical :class:`~repro.engine.executor.JobOutcome`s for them.
:func:`cache_key_for` normalises everything that can vary without changing
the result:

* **Graph** — identified by :meth:`repro.graph.CSRGraph.fingerprint`, a
  content hash of the CSR arrays, so reloading the same graph from disk
  (or rebuilding the same proxy) still hits.
* **Parameters** — the method's parameter dataclass is instantiated, so
  defaults are filled in (``{}`` and an explicit ``{"alpha": 0.01}`` at
  the default value collide, as they must) and every numeric value is
  normalised to a plain ``int``/``float`` (``alpha=1`` and ``alpha=1.0``
  collide; ``1e-4`` and ``0.0001`` are the same double already).
* **Seeds** — sorted and deduplicated.  Safe because every diffusion
  normalises its seed set with ``np.unique`` before touching the graph.
* **RNG** — kept verbatim for the randomized methods, forced to zero for
  the deterministic ones (where it is dead weight that would fragment the
  cache).
* **Tag** — deliberately excluded: a job's free-form ``tag`` annotates the
  outcome but never influences it, and the caching backend re-attaches
  the requesting job's own tag on every hit.
* **Kernel** — deliberately excluded, like ``tag``: the compiled kernels
  (:mod:`repro.kernels`) replicate the Python loops' floating-point
  operation order exactly, so outcomes are bit-identical across
  ``kernel`` settings and an entry written under one kernel must replay
  under any other (asserted by the cross-kernel differential suite).

``parallel`` and the vector-retention flag *are* part of the key: the
sequential and bulk-synchronous implementations may order float reductions
differently, and an outcome stored without its diffusion vector cannot
serve a caller who needs one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..core.api import ALGORITHMS

# The canonicaliser moved to the unified options layer (PR 7) so the
# cache key, the request validator and the wire schema share one notion
# of "the same query"; re-exported here for the historical import path.
from ..core.options import _canonical_value as _canonical_value
from ..core.options import canonical_params
from ..engine.jobs import DiffusionJob

__all__ = ["CacheKey", "canonical_params", "cache_key_for"]


@dataclass(frozen=True)
class CacheKey:
    """Hashable identity of one (graph, method, params, seeds) query."""

    graph: str
    method: str
    seeds: tuple[int, ...]
    params: tuple[tuple[str, Any], ...]
    rng: int
    parallel: bool
    vectors: bool

    def digest(self) -> str:
        """Stable hex digest — the on-disk filename of this key's entry."""
        payload = json.dumps(
            {
                "graph": self.graph,
                "method": self.method,
                "seeds": list(self.seeds),
                "params": [[name, repr(value)] for name, value in self.params],
                "rng": self.rng,
                "parallel": self.parallel,
                "vectors": self.vectors,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("ascii")
        return hashlib.blake2b(payload, digest_size=20).hexdigest()

    def describe(self) -> str:
        settings = " ".join(f"{k}={v}" for k, v in self.params)
        return (
            f"{self.method}[{','.join(map(str, self.seeds))}] {settings} "
            f"rng={self.rng} graph={self.graph[:12]}"
        )


def cache_key_for(
    fingerprint: str,
    job: DiffusionJob,
    parallel: bool,
    include_vector: bool,
) -> CacheKey:
    """The :class:`CacheKey` under which ``job``'s outcome is stored."""
    takes_rng = ALGORITHMS[job.method][2] if job.method in ALGORITHMS else True
    return CacheKey(
        graph=fingerprint,
        method=job.method,
        seeds=tuple(sorted(set(job.seeds))),
        params=canonical_params(job.method, job.params),
        rng=int(job.rng) if takes_rng else 0,
        parallel=bool(parallel),
        vectors=bool(include_vector),
    )
