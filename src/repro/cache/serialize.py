"""On-disk payloads for cached outcomes: one ``.npz`` file per entry.

A :class:`~repro.engine.executor.JobOutcome` is arrays plus scalars.  Each
entry is written as a single compressed ``.npz`` holding the sweep-profile
and (optional) diffusion-vector arrays verbatim, with the scalars — and
the job that produced them — embedded as a JSON document in a ``uint8``
member.  One file per entry keeps eviction (delete the file) and ``cache
clear`` trivial, and numpy round-trips the arrays bit-exactly, which is
what lets a disk hit honour the engine's bit-identical-results contract.

The job's free-form ``tag`` is *not* persisted (it may not be
serialisable, and it never influences the result); the caching backend
re-attaches the requesting job — tag included — on every hit.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.result import SweepResult
from ..engine.executor import JobOutcome
from ..engine.jobs import DiffusionJob
from .keys import _canonical_value

__all__ = ["PAYLOAD_VERSION", "save_outcome", "load_outcome", "outcome_nbytes"]

PAYLOAD_VERSION = 1


def _json_scalar(value):
    """Backstop for numpy scalars _canonical_value leaves alone (np.bool_)."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"cache payload value {value!r} is not JSON-serialisable")


def outcome_nbytes(outcome: JobOutcome) -> int:
    """Approximate in-memory footprint of one outcome (for byte budgets)."""
    total = 256  # object + scalar overhead
    if outcome.sweep is not None:
        sweep = outcome.sweep
        total += int(
            sweep.order.nbytes
            + sweep.conductances.nbytes
            + sweep.volumes.nbytes
            + sweep.cuts.nbytes
        )
    if outcome.vector_keys is not None:
        total += int(outcome.vector_keys.nbytes)
    if outcome.vector_values is not None:
        total += int(outcome.vector_values.nbytes)
    return total


def save_outcome(path: str | Path, outcome: JobOutcome) -> None:
    """Write ``outcome`` as a self-contained ``.npz`` payload."""
    meta = {
        "version": PAYLOAD_VERSION,
        "job": {
            "method": outcome.job.method,
            "seeds": list(outcome.job.seeds),
            # Normalised exactly like the cache key: numpy scalars (e.g. a
            # num_walks passed as np.int64) are not JSON-serialisable raw.
            "params": {
                name: _canonical_value(value)
                for name, value in outcome.job.params.items()
            },
            "rng": outcome.job.rng,
        },
        "support_size": outcome.support_size,
        "iterations": outcome.iterations,
        "pushes": outcome.pushes,
        "touched_edges": outcome.touched_edges,
        "residual_mass": outcome.residual_mass,
        "work": outcome.work,
        "depth": outcome.depth,
        "wall_seconds": outcome.wall_seconds,
        "best_index": None if outcome.sweep is None else int(outcome.sweep.best_index),
        "has_vector": outcome.vector_keys is not None,
    }
    arrays: dict[str, np.ndarray] = {
        "meta": np.frombuffer(
            json.dumps(meta, sort_keys=True, default=_json_scalar).encode("utf-8"),
            dtype=np.uint8,
        )
    }
    if outcome.sweep is not None:
        arrays["order"] = outcome.sweep.order
        arrays["conductances"] = outcome.sweep.conductances
        arrays["volumes"] = outcome.sweep.volumes
        arrays["cuts"] = outcome.sweep.cuts
    if outcome.vector_keys is not None and outcome.vector_values is not None:
        arrays["vector_keys"] = outcome.vector_keys
        arrays["vector_values"] = outcome.vector_values
    # Write through a handle: numpy then honours the exact path instead of
    # appending ``.npz``, which matters for the store's temp-file renames.
    with Path(path).open("wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_outcome(path: str | Path) -> JobOutcome:
    """Rebuild a :class:`JobOutcome` from a :func:`save_outcome` payload.

    Raises on malformed payloads; callers treat any exception as a cache
    miss (a corrupt or truncated file must never poison a run).
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != PAYLOAD_VERSION:
            raise ValueError(f"unsupported cache payload version {meta.get('version')!r}")
        sweep = None
        if meta["best_index"] is not None:
            sweep = SweepResult(
                order=data["order"],
                conductances=data["conductances"],
                volumes=data["volumes"],
                cuts=data["cuts"],
                best_index=int(meta["best_index"]),
            )
        vector_keys = data["vector_keys"] if meta["has_vector"] else None
        vector_values = data["vector_values"] if meta["has_vector"] else None
    job_meta = meta["job"]
    job = DiffusionJob(
        seeds=tuple(int(s) for s in job_meta["seeds"]),
        method=job_meta["method"],
        params=dict(job_meta["params"]),
        rng=int(job_meta["rng"]),
    )
    return JobOutcome(
        index=-1,
        job=job,
        support_size=int(meta["support_size"]),
        iterations=int(meta["iterations"]),
        pushes=int(meta["pushes"]),
        touched_edges=int(meta["touched_edges"]),
        residual_mass=float(meta["residual_mass"]),
        work=float(meta["work"]),
        depth=float(meta["depth"]),
        wall_seconds=float(meta["wall_seconds"]),
        sweep=sweep,
        vector_keys=vector_keys,
        vector_values=vector_values,
    )
