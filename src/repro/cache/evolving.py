"""Region-aware cross-version cache migration.

Cache keys embed the graph's content fingerprint, so a version advance
(:mod:`repro.graph.evolving`) never *corrupts* the cache — an entry can
only ever answer queries against the exact edge set it was computed on.
What an advance would naively do is strand every entry: the new version's
fingerprint misses everything.  This module carries the survivors forward.

The rule rests on what a diffusion actually reads.  The push/walk
algorithms read adjacency lists only at vertices that end up carrying
mass (for the monotone-support methods, every pushed/visited vertex is in
the final vector support) and degrees at most one hop beyond them; the
sweep cut reads adjacency only inside the support.  So if the entry's
recorded profile — its seed set plus its persisted vector support
(``JobOutcome.vector_keys``) — is disjoint from the **delta region**
(touched vertices plus their neighborhoods in *both* versions), a cold
run on the new version would perform the bit-identical execution.  Such
entries are re-keyed to the new fingerprint without recompute; entries
whose profile intersects the region are left behind (their old-version
key remains valid for pinned-version queries).

Two deliberate exclusions keep the rule sound:

* ``nibble`` truncates vector entries to zero mid-run, so its final
  support does not dominate what it read; its entries never migrate.
* When an update changes the total edge volume, sweep conductances use a
  different ``min(vol, total - vol)`` denominator; an entry migrates only
  if every prefix of its sweep profile stays on the ``vol`` branch under
  both totals (``2 * max_prefix_vol <= min(old_total, new_total)``).

>>> from repro.cache import ResultCache, advance_version
>>> from repro.engine import BatchEngine, DiffusionJob
>>> from repro.graph import EvolvingGraph, barbell_graph
>>> chain = EvolvingGraph(barbell_graph(6))
>>> cache = ResultCache()
>>> engine = BatchEngine(chain.at(0).graph, cache=cache)
>>> _ = engine.run([DiffusionJob.make(0)])
>>> v1 = chain.apply_updates(insertions=[(8, 10)])  # far from vertex 0's cluster
>>> advance_version(cache, v1).survived
1
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..graph.evolving import GraphVersion
from .store import ResultCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.csr import CSRGraph

__all__ = ["MigrationStats", "advance_version", "delta_region"]

#: Methods whose final vector support contains every vertex whose adjacency
#: the run read.  ``nibble`` truncates support mid-run and is excluded.
MONOTONE_SUPPORT_METHODS = frozenset({"pr-nibble", "hk-pr", "rand-hk-pr"})


@dataclass
class MigrationStats:
    """What one :func:`advance_version` pass did to the hot cache layer.

    ``examined`` counts old-fingerprint entries scanned; ``survived`` were
    re-keyed to the new fingerprint, ``invalidated`` intersected the delta
    region (or failed the volume guard), and ``skipped`` carried no usable
    profile (no persisted vector, or a non-monotone-support method).
    """

    examined: int = 0
    survived: int = 0
    invalidated: int = 0
    skipped: int = 0

    @property
    def survival_rate(self) -> float:
        return self.survived / self.examined if self.examined else 0.0

    def describe(self) -> str:
        return (
            f"{self.survived}/{self.examined} entries migrated "
            f"({self.survival_rate:.0%}), {self.invalidated} invalidated, "
            f"{self.skipped} without a profile"
        )


def delta_region(
    old_graph: "CSRGraph", new_graph: "CSRGraph", touched: np.ndarray
) -> np.ndarray:
    """Touched vertices plus their neighborhoods in both versions, sorted.

    One hop of slack covers the degree reads the push algorithms make on
    residual-carrying frontier vertices: a run whose support avoids this
    region never observed any changed adjacency list *or* changed degree.
    """
    touched = np.asarray(touched, dtype=np.int64)
    if len(touched) == 0:
        return touched
    pieces = [touched]
    for graph in (old_graph, new_graph):
        for vertex in touched.tolist():
            pieces.append(graph.neighbors_of(int(vertex)))
    return np.unique(np.concatenate(pieces))


def _sweep_volume_safe(outcome, old_total: int, new_total: int) -> bool:
    """Would the entry's sweep conductances be identical under ``new_total``?"""
    if old_total == new_total:
        return True
    sweep = outcome.sweep
    if sweep is None or len(sweep.volumes) == 0:
        return True
    return 2 * int(sweep.volumes.max()) <= min(old_total, new_total)


def advance_version(cache: ResultCache, version: GraphVersion) -> MigrationStats:
    """Carry the parent version's unaffected cache entries to ``version``.

    Scans the in-memory layer for entries keyed by the parent fingerprint
    and re-keys every entry whose recorded profile avoids the delta region
    (see module docstring).  Old-fingerprint entries are retained — they
    remain the correct answers for queries pinned to the old version —
    and the write-through ``put`` persists survivors to disk under the
    new fingerprint as well.
    """
    parent = version.parent
    if parent is None:
        raise ValueError("version has no parent; nothing to migrate from")
    old_graph = parent.graph
    new_graph = version.graph
    old_fingerprint = old_graph.fingerprint()
    new_fingerprint = new_graph.fingerprint()
    stats = MigrationStats()
    if old_fingerprint == new_fingerprint:
        return stats
    region = set(delta_region(old_graph, new_graph, version.touched).tolist())
    old_total = len(old_graph.neighbors)
    new_total = len(new_graph.neighbors)
    for key, outcome in cache.memory_items():
        if key.graph != old_fingerprint:
            continue
        stats.examined += 1
        if key.method not in MONOTONE_SUPPORT_METHODS:
            stats.skipped += 1
            continue
        if outcome.vector_keys is None and outcome.support_size > 0:
            # No persisted support: the profile is unknown, so the entry
            # cannot prove it avoided the delta.
            stats.skipped += 1
            continue
        profile = set(key.seeds)
        if outcome.vector_keys is not None:
            profile.update(outcome.vector_keys.tolist())
        if profile & region or not _sweep_volume_safe(outcome, old_total, new_total):
            stats.invalidated += 1
            continue
        cache.put(dataclasses.replace(key, graph=new_fingerprint), outcome)
        stats.survived += 1
    return stats
