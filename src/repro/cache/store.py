"""Cache stores: an in-memory LRU, an on-disk layer, and their facade.

The workloads the paper's experiments generate — NCP sweeps over a
(seed x alpha x eps) grid, interactive exploration re-querying the same
neighbourhoods — repeat (graph, method, params, seeds) combinations
heavily.  :class:`ResultCache` memoises the engine's
:class:`~repro.engine.executor.JobOutcome`s for them:

* :class:`LRUStore` — the hot layer.  An ordered dict keyed by
  :class:`~repro.cache.keys.CacheKey`, bounded by entry count *and* an
  approximate byte budget; least-recently-used entries are evicted first.
* :class:`DiskStore` — the optional persistent layer.  One compressed
  ``.npz`` payload per entry under a cache directory (filename = the
  key's digest), so entries survive the process and are shared between
  CLI invocations.  Bounded the same two ways; eviction removes the
  oldest files.  Corrupt or truncated payloads read as misses.
* :class:`ResultCache` — composes the two (memory in front, disk behind,
  hits promoted forward) and owns the :class:`CacheStats` counters.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

from .keys import CacheKey
from .serialize import load_outcome, outcome_nbytes, save_outcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.executor import JobOutcome

__all__ = ["CacheStats", "LRUStore", "DiskStore", "ResultCache", "resolve_cache"]


@dataclass
class CacheStats:
    """Counters of one cache's lifetime (a snapshot; see ``ResultCache.stats``).

    ``coalesced`` counts jobs served by merging with an identical job
    earlier in the *same* batch — no cache entry existed at lookup time,
    but no second diffusion ran either.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    coalesced: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses ({self.hit_rate:.0%}), "
            f"{self.coalesced} coalesced, {self.stores} stores, "
            f"{self.evictions} evictions"
        )


class LRUStore:
    """Bounded in-memory store with least-recently-used eviction.

    ``max_bytes`` budgets the *approximate* footprint of the stored
    outcomes (their arrays plus a fixed per-entry overhead).  The most
    recent entry is always retained, even when it alone exceeds the byte
    budget — a cache that cannot hold the query it just answered would
    never hit.
    """

    def __init__(self, max_entries: int = 4096, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self._entries: "OrderedDict[CacheKey, tuple[JobOutcome, int]]" = OrderedDict()
        self._nbytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes currently held."""
        return self._nbytes

    def get(self, key: CacheKey) -> "JobOutcome | None":
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def put(self, key: CacheKey, outcome: "JobOutcome") -> None:
        size = outcome_nbytes(outcome)
        old = self._entries.pop(key, None)
        if old is not None:
            self._nbytes -= old[1]
        self._entries[key] = (outcome, size)
        self._nbytes += size
        while len(self._entries) > self.max_entries or (
            self._nbytes > self.max_bytes and len(self._entries) > 1
        ):
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._nbytes -= evicted_size
            self.evictions += 1

    def items(self) -> "list[tuple[CacheKey, JobOutcome]]":
        """Snapshot of the resident entries, oldest first (no LRU touch).

        The cross-version migration pass (:func:`repro.cache.evolving.
        advance_version`) scans this to re-key survivors; a list copy keeps
        the scan safe against concurrent ``put`` calls re-ordering the dict.
        """
        return [(key, outcome) for key, (outcome, _) in self._entries.items()]

    def clear(self) -> int:
        removed = len(self._entries)
        self._entries.clear()
        self._nbytes = 0
        return removed


class DiskStore:
    """Persistent store: one ``.npz`` payload per entry under a directory."""

    SUFFIX = ".npz"

    def __init__(
        self,
        directory: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        create: bool = True,
    ) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            # Inspection paths (``cache stats``/``clear``) must not invent
            # a directory and mask a mistyped --cache-dir.
            raise FileNotFoundError(f"cache directory {self.directory} does not exist")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0

    def _path(self, key: CacheKey) -> Path:
        return self.directory / f"{key.digest()}{self.SUFFIX}"

    def _entry_paths(self) -> list[Path]:
        return sorted(self.directory.glob(f"*{self.SUFFIX}"))

    def __len__(self) -> int:
        return len(self._entry_paths())

    @property
    def nbytes(self) -> int:
        """Total bytes of payload files currently on disk."""
        return sum(path.stat().st_size for path in self._entry_paths())

    def get(self, key: CacheKey) -> "JobOutcome | None":
        path = self._path(key)
        if not path.exists():
            return None
        try:
            return load_outcome(path)
        except Exception:
            # A corrupt payload must read as a miss, never poison a run;
            # drop it so the slot is rewritten with a fresh outcome.
            path.unlink(missing_ok=True)
            return None

    def put(self, key: CacheKey, outcome: "JobOutcome") -> None:
        path = self._path(key)
        temp = path.with_suffix(".tmp")  # atomic publish: write, then rename
        save_outcome(temp, outcome)
        temp.replace(path)
        self._evict(keep=path)

    def _evict(self, keep: Path) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        paths = self._entry_paths()
        by_age = sorted(paths, key=lambda p: (p.stat().st_mtime, p.name))
        total = sum(p.stat().st_size for p in by_age)
        count = len(by_age)
        for path in by_age:
            over_entries = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if path == keep:  # never evict the entry just written
                continue
            total -= path.stat().st_size
            count -= 1
            path.unlink(missing_ok=True)
            self.evictions += 1

    def clear(self) -> int:
        removed = 0
        for path in self._entry_paths():
            path.unlink(missing_ok=True)
            removed += 1
        return removed


class ResultCache:
    """Two-layer result cache: in-memory LRU in front, optional disk behind.

    ``get`` consults memory first, then disk; a disk hit is promoted into
    memory so repeated interactive queries pay the deserialisation once.
    ``put`` writes through to both layers.  All hit/miss accounting lives
    here (the layers only count their own evictions); ``stats`` returns a
    consistent snapshot.
    """

    def __init__(
        self,
        memory: LRUStore | None = None,
        disk: DiskStore | None = None,
    ) -> None:
        self.memory = memory if memory is not None else LRUStore()
        self.disk = disk
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._coalesced = 0

    @classmethod
    def with_dir(cls, directory: str | Path, **disk_options: int) -> "ResultCache":
        """A cache persisted under ``directory`` (plus the in-memory layer)."""
        return cls(disk=DiskStore(directory, **disk_options))

    @property
    def stats(self) -> CacheStats:
        evictions = self.memory.evictions + (self.disk.evictions if self.disk else 0)
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            evictions=evictions,
            coalesced=self._coalesced,
        )

    def __len__(self) -> int:
        return max(len(self.memory), len(self.disk) if self.disk else 0)

    def get(self, key: CacheKey) -> "JobOutcome | None":
        outcome = self.peek(key)
        if outcome is None:
            self._misses += 1
        else:
            self._hits += 1
        return outcome

    def peek(self, key: CacheKey) -> "JobOutcome | None":
        """Lookup without touching the hit/miss counters."""
        outcome = self.memory.get(key)
        if outcome is not None:
            return outcome
        if self.disk is not None:
            outcome = self.disk.get(key)
            if outcome is not None:
                self.memory.put(key, outcome)
                return outcome
        return None

    def put(self, key: CacheKey, outcome: "JobOutcome") -> None:
        self.memory.put(key, outcome)
        if self.disk is not None:
            self.disk.put(key, outcome)
        self._stores += 1

    def count_coalesced(self) -> None:
        """Record one job served by an identical in-flight job (same batch)."""
        self._coalesced += 1

    def memory_items(self) -> "list[tuple[CacheKey, JobOutcome]]":
        """Snapshot of the in-memory layer's entries (for version migration).

        Disk entries are keyed by one-way digests, so they cannot be
        enumerated back into :class:`~repro.cache.keys.CacheKey`\\ s; the
        migration pass therefore re-keys only the hot layer.  Disk entries
        stay correct regardless — their keys embed the fingerprint of the
        version they were computed on, so they can never serve a different
        version's query — they just aren't carried forward.
        """
        return self.memory.items()

    def clear(self) -> int:
        removed = self.memory.clear()
        if self.disk is not None:
            removed = max(removed, self.disk.clear())
        return removed


CacheSpec = Union["ResultCache", bool, str, Path, None]


def resolve_cache(cache: CacheSpec) -> "ResultCache | None":
    """Normalise the ``cache=`` argument accepted by the high-level APIs.

    ``None``/``False`` — no caching.  ``True`` — a fresh in-memory
    :class:`ResultCache`.  A path — a disk-backed cache under that
    directory.  A ready :class:`ResultCache` is returned as-is.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache.with_dir(cache)
    if isinstance(cache, ResultCache):
        return cache
    raise ValueError(
        f"unknown cache spec {cache!r}; expected None, True, a directory "
        "path, or a ResultCache"
    )
