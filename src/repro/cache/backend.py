"""The caching execution backend: dispatch misses, replay hits, in order.

:class:`CachingBackend` wraps any engine backend (serial or process pool)
behind the same ``stream()`` contract the
:class:`~repro.engine.executor.BatchEngine` consumes.  For each batch it

1. computes every job's :class:`~repro.cache.keys.CacheKey` against the
   graph's content fingerprint,
2. answers hits straight from the :class:`~repro.cache.store.ResultCache`,
3. coalesces jobs whose key matches an identical job *earlier in the same
   batch* (overlapping grids issue these constantly) so each distinct
   query diffuses at most once, and
4. sends only the remaining misses to the wrapped backend — as one
   sub-batch, so a process pool still amortises its start-up over all of
   them — storing each outcome as it streams back.

Outcomes are yielded strictly in job order, with the requesting job (tag
included) and its batch index re-attached, so every reducer observes the
exact stream an uncached run would have produced and the engine's
bit-identical determinism contract survives caching.  Replayed outcomes
carry ``cached=True``; the engine excludes them from the batch's recorded
work-depth cost, because a hit performs no diffusion work.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from .keys import CacheKey, cache_key_for
from .store import ResultCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.executor import JobOutcome
    from ..engine.jobs import DiffusionJob
    from ..graph.csr import CSRGraph

__all__ = ["CachingBackend", "CachingSession"]

_MISS = object()
_COALESCED = object()


def _cached_batch(
    cache: ResultCache,
    fingerprint: str,
    jobs: Sequence["DiffusionJob"],
    parallel: bool,
    include_vectors: bool,
    dispatch: Callable[[list["DiffusionJob"]], Iterable["JobOutcome"]],
) -> Iterator["JobOutcome"]:
    """Serve one batch: replay hits, coalesce duplicates, dispatch misses.

    The single implementation behind both :meth:`CachingBackend.stream`
    (one-shot) and :meth:`CachingSession.run` (persistent inner session):
    ``dispatch`` receives the de-duplicated miss list and returns their
    outcomes in miss order.
    """
    keys = [cache_key_for(fingerprint, job, parallel, include_vectors) for job in jobs]

    # Plan the batch up front so the misses can be dispatched to the
    # wrapped backend as one sub-batch (one pool round-trip, full
    # chunking) while hits and coalesced duplicates replay locally.
    plan: list[object] = []
    first_miss: dict[CacheKey, int] = {}
    pending_uses: dict[CacheKey, int] = {}
    miss_jobs: list["DiffusionJob"] = []
    for index, key in enumerate(keys):
        hit = cache.get(key)
        if hit is not None:
            plan.append(hit)
        elif key in first_miss:
            cache.count_coalesced()
            pending_uses[key] += 1
            plan.append(_COALESCED)
        else:
            first_miss[key] = index
            pending_uses[key] = 0
            miss_jobs.append(jobs[index])
            plan.append(_MISS)

    miss_stream = iter(dispatch(miss_jobs) if miss_jobs else ())
    # Outcomes of misses that identical later jobs are waiting on are
    # pinned here until their last duplicate is served, so coalescing
    # survives even an eviction racing the batch.
    pinned: dict[CacheKey, "JobOutcome"] = {}
    for index, (job, key) in enumerate(zip(jobs, keys)):
        step = plan[index]
        if step is _MISS:
            outcome = replace(next(miss_stream), index=index, job=job, cached=False)
            cache.put(key, outcome)
            if pending_uses[key] > 0:
                pinned[key] = outcome
        elif step is _COALESCED:
            outcome = replace(pinned[key], index=index, job=job, cached=True)
            pending_uses[key] -= 1
            if pending_uses[key] == 0:
                del pinned[key]
        else:  # a cache hit, replayed with the requesting job attached
            outcome = replace(step, index=index, job=job, cached=True)
        yield outcome


class CachingSession:
    """Session protocol over a cached backend: hits replay, misses reuse
    one inner session (and therefore one pool + one graph export) across
    consecutive batches.  This is what lets the serving plane answer hot
    interactive queries without touching the pool at all."""

    def __init__(
        self,
        backend: "CachingBackend",
        graph: "CSRGraph",
        parallel: bool,
        include_vectors: bool,
    ) -> None:
        self.cache = backend.cache
        self.parallel = parallel
        self.include_vectors = include_vectors
        self._fingerprint = graph.fingerprint()
        self.inner = backend.inner.open_session(graph, parallel, include_vectors)

    @property
    def batches(self) -> int:
        return self.inner.batches

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def run(self, jobs: Iterable["DiffusionJob"]) -> Iterator["JobOutcome"]:
        """Stream one batch in job order; only misses reach the inner session."""
        if self.inner.closed:
            raise RuntimeError("session is closed")
        return _cached_batch(
            self.cache,
            self._fingerprint,
            list(jobs),
            self.parallel,
            self.include_vectors,
            self.inner.run,
        )

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "CachingSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CachingBackend:
    """Wrap an engine backend so only cache misses reach its workers."""

    def __init__(self, inner, cache: ResultCache | None = None) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else ResultCache()

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def folds_into_tracker(self) -> bool:
        return self.inner.folds_into_tracker

    def open_session(
        self,
        graph: "CSRGraph",
        parallel: bool = True,
        include_vectors: bool = True,
    ) -> CachingSession:
        """A session whose misses share one inner (pool) session."""
        return CachingSession(self, graph, parallel, include_vectors)

    def stream(
        self,
        graph: "CSRGraph",
        jobs: Sequence["DiffusionJob"],
        parallel: bool,
        include_vectors: bool,
    ) -> Iterator["JobOutcome"]:
        jobs = list(jobs)
        if not jobs:
            return
        yield from _cached_batch(
            self.cache,
            graph.fingerprint(),
            jobs,
            parallel,
            include_vectors,
            lambda miss_jobs: self.inner.stream(
                graph, miss_jobs, parallel, include_vectors
            ),
        )
