"""Content-addressed result cache for the batch diffusion engine.

The paper's experiments (and the interactive serving workload the ROADMAP
targets) hammer one graph with thousands of overlapping (seed, alpha, eps)
diffusion queries.  This subsystem memoises the engine's
:class:`~repro.engine.executor.JobOutcome`s so repeated and overlapping
workloads hit a store instead of re-diffusing:

* :mod:`repro.cache.keys` — :class:`CacheKey`: graph content fingerprint +
  method + canonicalised params + normalised seed set (+ rng for the
  randomized methods).
* :mod:`repro.cache.store` — :class:`LRUStore` (bounded in-memory),
  :class:`DiskStore` (``.npz`` payloads under a cache directory),
  :class:`ResultCache` (the two composed, with :class:`CacheStats`).
* :mod:`repro.cache.backend` — :class:`CachingBackend`, wrapping either
  engine backend so only misses are dispatched while outcomes still
  stream back in job order.

>>> from repro.graph import barbell_graph
>>> from repro.engine import BatchEngine, DiffusionJob
>>> engine = BatchEngine(barbell_graph(8), cache=True)
>>> jobs = [DiffusionJob.make(0), DiffusionJob.make(0)]
>>> [o.cached for o in engine.run(jobs) + engine.run(jobs)]
[False, True, True, True]
"""

from .backend import CachingBackend, CachingSession
from .evolving import MigrationStats, advance_version, delta_region
from .keys import CacheKey, cache_key_for, canonical_params
from .serialize import load_outcome, outcome_nbytes, save_outcome
from .store import CacheStats, DiskStore, LRUStore, ResultCache, resolve_cache

__all__ = [
    "MigrationStats",
    "advance_version",
    "delta_region",
    "CacheKey",
    "cache_key_for",
    "canonical_params",
    "CachingBackend",
    "CachingSession",
    "CacheStats",
    "DiskStore",
    "LRUStore",
    "ResultCache",
    "resolve_cache",
    "load_outcome",
    "outcome_nbytes",
    "save_outcome",
]
