"""Parallel sorting primitives: comparison sort and integer (radix) sort.

Section 2: *parallel comparison sorting takes O(N log N) work and O(log N)
depth; parallel integer sorting takes O(N) work and O(log N) depth w.h.p.
for keys in a polynomial range* [Rajasekaran–Reif].  The paper uses the
comparison sort for the initial degree-normalised ordering in the sweep cut
and the integer sort for sorting the ``Z`` pair array by rank (Theorem 1)
and for aggregating random-walk destinations in rand-HK-PR (Section 3.5).

``integer_sort`` here is a least-significant-digit radix sort: a sequence of
stable per-digit counting passes over 11-bit digits, the classic
linear-work / logarithmic-depth construction.  Each pass is realised with a
vectorised stable partition.  Costs recorded against the tracker charge the
paper's bounds (O(N + range) work per pass, O(log N) depth).
"""

from __future__ import annotations

import numpy as np

from ..runtime import log2ceil, record

__all__ = ["comparison_sort", "comparison_sort_order", "integer_sort", "integer_sort_order"]

_RADIX_BITS = 11
_RADIX = 1 << _RADIX_BITS


def comparison_sort(values: np.ndarray) -> np.ndarray:
    """Sort ``values`` ascending; O(N log N) work, O(log N) depth."""
    values = np.asarray(values)
    n = len(values)
    record(work=n * max(log2ceil(n), 1.0), depth=log2ceil(n), category="sort")
    return np.sort(values, kind="stable")


def comparison_sort_order(keys: np.ndarray) -> np.ndarray:
    """Stable permutation that sorts ``keys`` ascending.

    The sweep cut sorts vertices by *non-increasing* ``p[v]/d(v)``; callers
    negate the key (and add an id tiebreak) to express that ordering.
    """
    keys = np.asarray(keys)
    n = len(keys)
    record(work=n * max(log2ceil(n), 1.0), depth=log2ceil(n), category="sort")
    return np.argsort(keys, kind="stable")


def _digit_passes(max_key: int) -> int:
    """Number of radix passes needed for keys in ``[0, max_key]``."""
    passes = 1
    limit = _RADIX
    while max_key >= limit:
        passes += 1
        limit <<= _RADIX_BITS
    return passes


def integer_sort_order(keys: np.ndarray, max_key: int | None = None) -> np.ndarray:
    """Stable permutation sorting non-negative integer ``keys`` ascending.

    LSD radix sort: for each 11-bit digit (least significant first) perform
    a stable counting pass.  Total work is O(passes * N) with
    O(passes * log N) depth — the integer-sort bounds the paper's Theorem 1
    relies on, since ranks are bounded by N + 1.
    """
    keys = np.asarray(keys)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError("integer_sort requires integer keys")
    if keys.min() < 0:
        raise ValueError("integer_sort requires non-negative keys")
    if max_key is None:
        max_key = int(keys.max())
    n = len(keys)
    passes = _digit_passes(max_key)
    record(work=passes * (n + _RADIX), depth=passes * log2ceil(n), category="sort")

    order = np.arange(n, dtype=np.int64)
    remaining = keys.astype(np.int64, copy=True)
    for _ in range(passes):
        digit = remaining[order] & (_RADIX - 1)
        # Stable partition by digit value: counting sort realised with a
        # stable argsort over the small digit domain (one pass of LSD radix).
        order = order[np.argsort(digit, kind="stable")]
        remaining >>= _RADIX_BITS
        if not remaining.any():
            break
    return order


def integer_sort(keys: np.ndarray, max_key: int | None = None) -> np.ndarray:
    """Sorted copy of non-negative integer ``keys`` (LSD radix sort)."""
    keys = np.asarray(keys)
    return keys[integer_sort_order(keys, max_key=max_key)]
