"""Prefix sums (scans) — the workhorse parallel primitive of the paper.

Section 2 ("Parallel Primitives"): *prefix sum takes an array X of length N,
an associative binary operator, and returns the running combination; it
requires O(N) work and O(log N) depth*.  The sweep cut (Theorem 1) uses
prefix sums three ways: over degrees to obtain volumes, over the signed
``Z`` pairs to count crossing edges, and with the minimum operator to find
the lowest-conductance prefix.

Implementations are vectorised with NumPy ``ufunc.accumulate`` (the
data-parallel realisation of a scan) and record the textbook work/depth
costs with the active :mod:`repro.runtime` tracker.
"""

from __future__ import annotations

import numpy as np

from ..runtime import log2ceil, record

__all__ = [
    "prefix_sum",
    "exclusive_prefix_sum",
    "prefix_min",
    "prefix_max",
    "argmin_via_scan",
]


def _as_array(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise ValueError("prefix sums operate on 1-D arrays")
    return array


def prefix_sum(values: np.ndarray, op: np.ufunc = np.add) -> np.ndarray:
    """Inclusive scan of ``values`` under associative ufunc ``op``.

    >>> prefix_sum(np.array([1, 2, 3]))
    array([1, 3, 6])
    """
    array = _as_array(values)
    record(work=len(array), depth=log2ceil(len(array)), category="scan")
    if len(array) == 0:
        return array.copy()
    return op.accumulate(array)


def exclusive_prefix_sum(values: np.ndarray) -> tuple[np.ndarray, float]:
    """Exclusive scan under addition, returning ``(offsets, total)``.

    The common idiom for turning per-element counts into write offsets
    (used by filter, the edge gather in ``edge_map`` and the ``Z``-array
    construction in the parallel sweep cut).

    >>> offsets, total = exclusive_prefix_sum(np.array([2, 3, 1]))
    >>> offsets, int(total)
    (array([0, 2, 5]), 6)
    """
    array = _as_array(values)
    record(work=len(array), depth=log2ceil(len(array)), category="scan")
    if len(array) == 0:
        return array.copy(), array.dtype.type(0)
    inclusive = np.add.accumulate(array)
    offsets = np.empty_like(inclusive)
    offsets[0] = 0
    offsets[1:] = inclusive[:-1]
    return offsets, inclusive[-1]


def prefix_min(values: np.ndarray) -> np.ndarray:
    """Inclusive scan under the minimum operator."""
    return prefix_sum(values, op=np.minimum)


def prefix_max(values: np.ndarray) -> np.ndarray:
    """Inclusive scan under the maximum operator."""
    return prefix_sum(values, op=np.maximum)


def argmin_via_scan(values: np.ndarray) -> int:
    """Index of the minimum element, charged as a scan.

    The sweep cut's final step is "a prefix sums using the minimum operator
    over the N conductance values gives the cut with the lowest conductance";
    an argmin is the same O(N)-work, O(log N)-depth reduction.  Ties resolve
    to the earliest index, matching the sequential sweep.
    """
    array = _as_array(values)
    if len(array) == 0:
        raise ValueError("argmin of empty array")
    record(work=len(array), depth=log2ceil(len(array)), category="scan")
    return int(np.argmin(array))
