"""Batched analogues of the paper's atomic operations.

Section 2 ("Atomic Operations") defines compare-and-swap and fetch-and-add;
the parallel algorithms resolve concurrent updates to the ``p``/``r``
vectors with fetch-and-add.  In a data-parallel (bulk-synchronous)
realisation, a *round* of concurrent fetch-and-adds to an array is exactly
``np.add.at``: every update lands, duplicates accumulate, and the result is
independent of ordering because addition is commutative — the same
correctness argument the paper makes for its lock-free implementation.

The paper notes a fetch-and-add can be simulated in linear work and
logarithmic depth in the number of updates; the recorded costs charge that.
"""

from __future__ import annotations

import numpy as np

from ..runtime import log2ceil, record

__all__ = ["fetch_and_add", "compare_and_swap", "combine_duplicates"]


def fetch_and_add(target: np.ndarray, indices: np.ndarray, deltas: np.ndarray | float) -> None:
    """Apply a round of concurrent ``target[indices[i]] += deltas[i]``.

    Duplicate indices accumulate, exactly as colliding hardware
    fetch-and-adds would.
    """
    indices = np.asarray(indices)
    record(work=len(indices), depth=log2ceil(len(indices)), category="edge_map")
    np.add.at(target, indices, deltas)


def compare_and_swap(target: np.ndarray, index: int, expected: float, new: float) -> bool:
    """Scalar compare-and-swap with the hardware-instruction contract.

    Provided for completeness (the concurrent hash table of [42] builds on
    CAS); the vectorised table in :mod:`repro.prims.hashtable` realises the
    same retry loop in batch form.
    """
    if target[index] == expected:
        target[index] = new
        return True
    return False


def combine_duplicates(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate ``values`` by duplicate ``keys``: returns unique keys + sums.

    This is the deterministic pre-combining of a round of fetch-and-adds
    destined for a sparse set: instead of racing on table slots, colliding
    updates are summed first (a sort + segmented reduction, O(N) work with
    integer keys, O(log N) depth), then applied once per distinct key.
    """
    keys = np.asarray(keys)
    values = np.asarray(values, dtype=np.float64)
    if keys.shape[0] != values.shape[0]:
        raise ValueError("keys and values must have equal length")
    if len(keys) == 0:
        return keys.copy(), values.copy()
    record(work=len(keys), depth=log2ceil(len(keys)), category="edge_map")
    unique, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=values, minlength=len(unique))
    return unique, sums
