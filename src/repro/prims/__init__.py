"""Parallel primitives: scan, filter, sorting, atomics, sparse sets.

These are the building blocks the paper takes from the Problem Based
Benchmark Suite [43] and the phase-concurrent hash table of [42]; every
clustering algorithm and the sweep cut are expressed in terms of them.
"""

from .atomics import combine_duplicates, compare_and_swap, fetch_and_add
from .compact import filter_array, pack, pack_index
from .hashtable import IntFloatHashTable
from .scan import (
    argmin_via_scan,
    exclusive_prefix_sum,
    prefix_max,
    prefix_min,
    prefix_sum,
)
from .sort import comparison_sort, comparison_sort_order, integer_sort, integer_sort_order
from .sparse import SparseDict, SparseVector

__all__ = [
    "combine_duplicates",
    "compare_and_swap",
    "fetch_and_add",
    "filter_array",
    "pack",
    "pack_index",
    "IntFloatHashTable",
    "argmin_via_scan",
    "exclusive_prefix_sum",
    "prefix_max",
    "prefix_min",
    "prefix_sum",
    "comparison_sort",
    "comparison_sort_order",
    "integer_sort",
    "integer_sort_order",
    "SparseDict",
    "SparseVector",
]
