"""Vectorised linear-probing hash table — the sparse-set substrate.

The paper's parallel implementations store the ``p``/``r`` vectors in the
*phase-concurrent* lock-free hash table of Shun & Blelloch [42]: linear
probing, compare-and-swap to claim slots, fetch-and-add to combine values,
sized proportionally to the number of stored elements so a batch of N
inserts/searches costs O(N) work and O(log N) depth w.h.p. (Section 2,
"Sparse Sets").

:class:`IntFloatHashTable` is the bulk-synchronous realisation of that
structure: int64 keys, float64 values, power-of-two capacity, Fibonacci
hashing, and *batched* operations.  A batch insert performs the same probe
sequence as N concurrent threads would — each round every unresolved key
inspects its current slot, matching keys resolve, one claimant per empty
slot wins (the vectorised analogue of a successful CAS), losers advance to
the next slot — so the layout it produces is a valid linear-probing layout
and the cost per batch matches the paper's bounds.

Keys must be non-negative (vertex identifiers).  The zero element ``⊥`` of
the paper's sparse sets is ``0.0``: looking up an absent key yields 0.0.
Deletion is not supported (the algorithms never delete), only ``clear``.
"""

from __future__ import annotations

import numpy as np

from ..runtime import log2ceil, record

__all__ = ["IntFloatHashTable"]

_EMPTY = np.int64(-1)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)  # Fibonacci hashing multiplier
_MIN_CAPACITY = 8


def _next_pow2(n: int) -> int:
    power = _MIN_CAPACITY
    while power < n:
        power <<= 1
    return power


class IntFloatHashTable:
    """Open-addressing int64 -> float64 map with batched vectorised ops."""

    __slots__ = ("_keys", "_vals", "_size", "_log_cap")

    def __init__(self, capacity_hint: int = 0) -> None:
        capacity = _next_pow2(max(_MIN_CAPACITY, 2 * capacity_hint))
        self._allocate(capacity)

    def _allocate(self, capacity: int) -> None:
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._vals = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._log_cap = int(capacity).bit_length() - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._keys)

    def __contains__(self, key: int) -> bool:
        slot = self._lookup_slots(np.asarray([key], dtype=np.int64))[0]
        return slot >= 0

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Occupied ``(keys, values)`` arrays, in table (arbitrary) order."""
        occupied = self._keys != _EMPTY
        record(work=self.capacity, depth=log2ceil(self.capacity), category="hash")
        return self._keys[occupied].copy(), self._vals[occupied].copy()

    def clear(self) -> None:
        self._allocate(_MIN_CAPACITY)

    # ------------------------------------------------------------------
    # Hashing and probing
    # ------------------------------------------------------------------
    def _hash(self, keys: np.ndarray) -> np.ndarray:
        shift = np.uint64(64 - self._log_cap)
        with np.errstate(over="ignore"):
            mixed = keys.astype(np.uint64) * _GOLDEN
        return (mixed >> shift).astype(np.int64)

    def _lookup_slots(self, keys: np.ndarray) -> np.ndarray:
        """Slot of each key, or -1 where absent.  Keys need not be unique."""
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        record(work=n, depth=log2ceil(n), category="hash")
        mask = self.capacity - 1
        slots = self._hash(keys)
        result = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n, dtype=np.int64)
        for _ in range(self.capacity + 1):
            if len(pending) == 0:
                return result
            probe = slots[pending]
            stored = self._keys[probe]
            wanted = keys[pending]
            hit = stored == wanted
            miss = stored == _EMPTY
            result[pending[hit]] = probe[hit]
            # keys that hit an empty slot are absent; they resolve to -1
            unresolved = ~(hit | miss)
            pending = pending[unresolved]
            slots[pending] = (slots[pending] + 1) & mask
        raise RuntimeError("hash table probe did not terminate")  # pragma: no cover

    def _insert_slots(self, keys: np.ndarray) -> np.ndarray:
        """Find-or-claim a slot for each of a batch of *unique* keys.

        Mirrors N concurrent lock-free inserts: per round, matches resolve,
        one winner claims each empty slot (CAS analogue), losers retry at
        the next slot.  Newly claimed slots hold value 0.0 (the paper's
        ``⊥`` element).
        """
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_room(n)
        record(work=n, depth=log2ceil(n), category="hash")
        mask = self.capacity - 1
        slots = self._hash(keys)
        result = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n, dtype=np.int64)
        for _ in range(self.capacity + 1):
            if len(pending) == 0:
                return result
            probe = slots[pending]
            stored = self._keys[probe]
            wanted = keys[pending]
            hit = stored == wanted
            result[pending[hit]] = probe[hit]
            empty = stored == _EMPTY
            if empty.any():
                empty_slots = probe[empty]
                empty_pending = pending[empty]
                # One claimant per distinct empty slot (first occurrence wins,
                # like the first successful compare-and-swap).
                winner_slots, winner_pos = np.unique(empty_slots, return_index=True)
                winners = empty_pending[winner_pos]
                self._keys[winner_slots] = keys[winners]
                result[winners] = winner_slots
                self._size += len(winner_slots)
            unresolved = result[pending] < 0
            pending = pending[unresolved]
            slots[pending] = (slots[pending] + 1) & mask
        raise RuntimeError("hash table insert did not terminate")  # pragma: no cover

    def _ensure_room(self, incoming: int) -> None:
        """Grow so that load factor stays at most 1/2 after ``incoming`` inserts."""
        needed = self._size + incoming
        if 2 * needed <= self.capacity:
            return
        old_keys = self._keys
        old_vals = self._vals
        occupied = old_keys != _EMPTY
        self._allocate(_next_pow2(4 * max(needed, 1)))
        live_keys = old_keys[occupied]
        if len(live_keys) > 0:
            slots = self._insert_slots(live_keys)
            self._vals[slots] = old_vals[occupied]

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def lookup(self, keys: np.ndarray, default: float = 0.0) -> np.ndarray:
        """Values for ``keys``; absent keys read as ``default`` (``⊥``)."""
        keys = np.asarray(keys, dtype=np.int64)
        slots = self._lookup_slots(keys)
        values = np.full(len(keys), default, dtype=np.float64)
        found = slots >= 0
        values[found] = self._vals[slots[found]]
        return values

    def accumulate(self, keys: np.ndarray, deltas: np.ndarray | float) -> None:
        """Batch fetch-and-add: ``table[k] += delta`` with duplicates summed.

        Colliding updates are pre-combined (sort + segmented sum) and then
        applied once per distinct key — the deterministic equivalent of the
        paper's concurrent fetch-and-adds into the table.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        deltas = np.broadcast_to(np.asarray(deltas, dtype=np.float64), keys.shape)
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.bincount(inverse, weights=deltas, minlength=len(unique))
        slots = self._insert_slots(unique)
        self._vals[slots] += sums

    def assign(self, keys: np.ndarray, values: np.ndarray | float) -> None:
        """Batch store ``table[k] = value``; duplicate keys take the last value."""
        keys = np.asarray(keys, dtype=np.int64)
        if len(keys) == 0:
            return
        values = np.broadcast_to(np.asarray(values, dtype=np.float64), keys.shape)
        unique, last_index = np.unique(keys[::-1], return_index=True)
        last_values = values[::-1][last_index]
        slots = self._insert_slots(unique)
        self._vals[slots] = last_values

    # ------------------------------------------------------------------
    # Scalar convenience operations
    # ------------------------------------------------------------------
    def get_one(self, key: int, default: float = 0.0) -> float:
        return float(self.lookup(np.asarray([key], dtype=np.int64), default=default)[0])

    def set_one(self, key: int, value: float) -> None:
        slot = self._insert_slots(np.asarray([key], dtype=np.int64))[0]
        self._vals[slot] = value

    def add_one(self, key: int, delta: float) -> None:
        slot = self._insert_slots(np.asarray([key], dtype=np.int64))[0]
        self._vals[slot] += delta
