"""Sparse sets (sparse vectors keyed by vertex id) with ``⊥ = 0`` semantics.

Section 2 ("Sparse Sets"): the implementations *use hash tables to represent
a sparse set to store data associated with the vertices touched... For
sequential implementations we use the unordered_map data structure in STL.
For parallel implementations, we use the non-deterministic concurrent hash
table described in [42]* — with the convention that updating a non-existent
key first creates ``(k, ⊥)`` with ``⊥ = 0``.

Two realisations:

* :class:`SparseDict` — a plain ``dict`` wrapper, the analogue of STL's
  ``unordered_map``, used by the sequential reference algorithms.
* :class:`SparseVector` — backed by the batched linear-probing table in
  :mod:`repro.prims.hashtable`, the analogue of the concurrent table of
  [42], used by the parallel (bulk-synchronous) algorithms.

Both never allocate Θ(|V|) memory: size is proportional to the number of
touched vertices, which is what makes the algorithms *local*.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .hashtable import IntFloatHashTable

__all__ = ["SparseDict", "SparseVector"]


class SparseDict:
    """Dict-backed sparse vector: missing keys read as 0.0.

    Mirrors the paper's sequential sparse set.  Reading a missing key does
    not materialise an entry (the observable value is ``⊥ = 0`` either way);
    writes and in-place adds do.
    """

    __slots__ = ("_data",)

    def __init__(self, data: dict[int, float] | None = None) -> None:
        self._data: dict[int, float] = dict(data) if data else {}

    def __getitem__(self, key: int) -> float:
        return self._data.get(key, 0.0)

    def __setitem__(self, key: int, value: float) -> None:
        self._data[key] = float(value)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def add(self, key: int, delta: float) -> None:
        """``self[key] += delta`` creating the entry from ``⊥`` if absent."""
        self._data[key] = self._data.get(key, 0.0) + delta

    def items(self) -> Iterator[tuple[int, float]]:
        return iter(self._data.items())

    def keys(self) -> Iterator[int]:
        return iter(self._data.keys())

    def copy(self) -> "SparseDict":
        return SparseDict(self._data)

    def to_dict(self) -> dict[int, float]:
        return dict(self._data)

    def l1_norm(self) -> float:
        """Sum of absolute values (the residual-mass measure of Theorem 3)."""
        return float(sum(abs(v) for v in self._data.values()))

    @property
    def nnz(self) -> int:
        return len(self._data)


class SparseVector:
    """Hash-table-backed sparse vector with batched NumPy operations.

    The parallel algorithms read/update whole frontiers at once; this class
    exposes array-in/array-out ``get`` / ``add`` / ``set`` so one call
    corresponds to one data-parallel round over the frontier (a batch of
    lookups / fetch-and-adds in the paper's concurrent table).
    """

    __slots__ = ("_table",)

    def __init__(self, capacity_hint: int = 0) -> None:
        self._table = IntFloatHashTable(capacity_hint)

    @classmethod
    def from_pairs(cls, keys: np.ndarray, values: np.ndarray | float) -> "SparseVector":
        vector = cls(capacity_hint=len(np.atleast_1d(keys)))
        vector.set(np.atleast_1d(keys), values)
        return vector

    @classmethod
    def from_dict(cls, data: dict[int, float]) -> "SparseVector":
        keys = np.fromiter(data.keys(), dtype=np.int64, count=len(data))
        values = np.fromiter(data.values(), dtype=np.float64, count=len(data))
        return cls.from_pairs(keys, values)

    # ------------------------------------------------------------------
    # Batched interface (one call = one parallel round)
    # ------------------------------------------------------------------
    def get(self, keys: np.ndarray) -> np.ndarray:
        """Values at ``keys``; absent keys read as 0.0."""
        return self._table.lookup(np.asarray(keys, dtype=np.int64))

    def add(self, keys: np.ndarray, deltas: np.ndarray | float) -> None:
        """Batch fetch-and-add; duplicate keys accumulate."""
        self._table.accumulate(np.asarray(keys, dtype=np.int64), deltas)

    def set(self, keys: np.ndarray, values: np.ndarray | float) -> None:
        """Batch assignment; duplicate keys take the last value."""
        self._table.assign(np.asarray(keys, dtype=np.int64), values)

    # ------------------------------------------------------------------
    # Scalar interface
    # ------------------------------------------------------------------
    def __getitem__(self, key: int) -> float:
        return self._table.get_one(int(key))

    def __setitem__(self, key: int, value: float) -> None:
        self._table.set_one(int(key), float(value))

    def add_scalar(self, key: int, delta: float) -> None:
        self._table.add_one(int(key), float(delta))

    def __contains__(self, key: int) -> bool:
        return int(key) in self._table

    def __len__(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    # Whole-set views
    # ------------------------------------------------------------------
    def keys(self) -> np.ndarray:
        """Stored keys, in arbitrary (table) order."""
        keys, _ = self._table.items()
        return keys

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, values)`` arrays over stored entries."""
        return self._table.items()

    def to_dict(self) -> dict[int, float]:
        keys, values = self._table.items()
        return {int(k): float(v) for k, v in zip(keys, values)}

    def copy(self) -> "SparseVector":
        keys, values = self._table.items()
        clone = SparseVector(capacity_hint=len(keys))
        if len(keys) > 0:
            clone.set(keys, values)
        return clone

    def l1_norm(self) -> float:
        _, values = self._table.items()
        return float(np.abs(values).sum())

    @property
    def nnz(self) -> int:
        return len(self._table)
