"""Filter / pack — the second basic parallel primitive of the paper.

Section 2: *filter takes an array X of length N and a predicate f, and
returns an array containing the elements for which f is true, in the same
order; it can be implemented with prefix sum in O(N) work and O(log N)
depth*.  Every frontier update in the clustering algorithms ("Frontier =
{v | r[v] >= eps*d(v)}, using filter") goes through this module.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..runtime import log2ceil, record

__all__ = ["pack", "pack_index", "filter_array"]


def pack(values: np.ndarray, flags: np.ndarray) -> np.ndarray:
    """Keep ``values[i]`` where ``flags[i]`` is true, preserving order.

    >>> pack(np.array([10, 20, 30]), np.array([True, False, True]))
    array([10, 30])
    """
    values = np.asarray(values)
    flags = np.asarray(flags, dtype=bool)
    if values.shape[0] != flags.shape[0]:
        raise ValueError("values and flags must have equal length")
    record(work=len(values), depth=log2ceil(len(values)), category="filter")
    return values[flags]


def pack_index(flags: np.ndarray) -> np.ndarray:
    """Indices at which ``flags`` is true, in increasing order.

    The parallel rand-HK-PR aggregation uses this to find the boundaries
    between runs of equal values in the sorted destination array (the
    ``B[i] = i`` / ``B[i] = -1`` construction in Section 3.5).
    """
    flags = np.asarray(flags, dtype=bool)
    record(work=len(flags), depth=log2ceil(len(flags)), category="filter")
    return np.flatnonzero(flags)


def filter_array(values: np.ndarray, predicate: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
    """Filter with a vectorised predicate: ``values[predicate(values)]``.

    ``predicate`` receives the whole array and must return a boolean mask —
    the data-parallel form of the paper's element-wise predicate ``f``.
    """
    values = np.asarray(values)
    mask = np.asarray(predicate(values), dtype=bool)
    if mask.shape != values.shape:
        raise ValueError("predicate must return one flag per element")
    return pack(values, mask)
