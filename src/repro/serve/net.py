"""The network serving plane: an asyncio wire in front of `DiffusionService`.

Everything below the socket already existed — batched engine, shared-
memory pools, shards, compiled kernels, the micro-batching
:class:`~repro.serve.service.DiffusionService` — but clients had to share
a process.  :class:`DiffusionServer` puts a real transport on top,
stdlib-only, speaking two framings of the **same codec**
(:mod:`repro.serve.protocol`) over one TCP port:

* **NDJSON** — one JSON request per line in, one JSON reply per line
  out.  Replies come back **in each client's request order** (a later
  cheap query never overtakes an earlier expensive one on the same
  connection), which is what lets a client correlate replies positionally
  even without ``id`` fields.
* **HTTP/1.1** — ``POST /`` (or ``POST /v1/cluster``) with the identical
  JSON request object as the body; the reply is the identical JSON reply
  object, status-coded from the structured error (200/400/404/405/429/
  503).  Keep-alive is honoured.  The framing is sniffed from the first
  line of each connection, so both dialects share the port.

Multi-tenancy is enforced *between* the socket and the service:

* **Per-client queues, drained round-robin** — each connection has its
  own admission queue; a central loop admits at most one request per
  client per pass, so seven interactive clients each get every eighth
  admission slot no matter how deep the eighth (bulk) client's backlog is.
* **Token-bucket rate limiting** (``rate``/``burst``) and a **per-client
  in-flight cap** (``max_inflight``) bound how much service capacity one
  connection can hold at once.
* **Backpressure** — a client whose admission queue is full gets an
  immediate structured 429 reply instead of unbounded buffering.
* **Priority end-to-end** — a request's ``"priority"`` class rides
  through admission into the service's micro-batcher unchanged, so
  ``"bulk"`` work still yields to interactive work *inside* a batch.
* **Graceful drain** — :meth:`DiffusionServer.close` stops accepting,
  answers late arrivals with 503, finishes every admitted request,
  flushes every reply in order, then closes the connections.

The server *fronts* a :class:`DiffusionService`; it does not own it.
Construct both (the service may be shared with in-process clients), or
use the common pattern::

    async with DiffusionService(graph, workers=4) as service:
        async with DiffusionServer(service, port=0) as server:
            host, port = server.address
            ...

Results over the wire are bit-identical to in-process
:func:`repro.core.local_cluster` — the transport only moves the same
:class:`~repro.engine.executor.JobOutcome` fields (ask for
``"include_cluster": true`` to receive the member vertices).
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.options import ClusterRequest, RequestError
from .protocol import error_reply, outcome_reply, parse_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import DiffusionService

__all__ = ["DiffusionServer", "ServerStats"]

#: request-line verbs that flip a fresh connection into HTTP mode.
_HTTP_VERBS = frozenset(
    (b"GET", b"HEAD", b"POST", b"PUT", b"DELETE", b"OPTIONS", b"PATCH")
)

_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServerStats:
    """Aggregate counters over the server's lifetime."""

    connections: int = 0
    requests: int = 0
    replies: int = 0
    rejected: int = 0
    admitted: int = 0
    by_priority: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        per_priority = " ".join(
            f"{name}={count}" for name, count in sorted(self.by_priority.items())
        )
        return (
            f"connections={self.connections} requests={self.requests} "
            f"replies={self.replies} rejected={self.rejected} "
            f"admitted={self.admitted}" + (f" ({per_priority})" if per_priority else "")
        )


class _TokenBucket:
    """Continuous-refill token bucket; ``rate=None`` never limits."""

    def __init__(self, rate: float | None, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = now

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
        self.last = now

    def try_take(self, now: float) -> bool:
        if self.rate is None:
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def next_token_in(self, now: float) -> float:
        """Seconds until a token is available (0 when one already is)."""
        if self.rate is None:
            return 0.0
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class _Pending:
    """One request awaiting admission into the service."""

    request: ClusterRequest
    outcome: "asyncio.Future[Any]"


class _Client:
    """Per-connection state: the admission queue and its fairness knobs."""

    def __init__(self, name: str, bucket: _TokenBucket) -> None:
        self.name = name
        self.bucket = bucket
        self.pending: deque[_Pending] = deque()
        self.inflight = 0
        self.request_counter = 0  # source of default (positional) reply ids
        self.closed = False
        self.writer: asyncio.StreamWriter | None = None
        self.replies: "asyncio.Queue[asyncio.Future[dict] | None] | None" = None
        self.writer_task: "asyncio.Task[None] | None" = None


class DiffusionServer:
    """Asyncio TCP front-end multiplexing socket clients onto one service.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.DiffusionService` requests are
        submitted to.  The server fronts it but does not own it — close
        the server first, then the service.
    host, port:
        Listen address.  ``port=0`` (default) binds an ephemeral port;
        read :attr:`address` after :meth:`start`.
    max_pending:
        Per-client admission-queue depth.  A client with this many
        requests awaiting admission gets structured 429 replies
        (backpressure) instead of unbounded buffering.
    max_inflight:
        Per-client cap on requests admitted into the service but not yet
        answered.  Bounds how much of the micro-batcher one connection
        can occupy.
    rate, burst:
        Per-client token-bucket admission rate (requests/second) and
        bucket depth.  ``rate=None`` (default) does not rate-limit;
        ``burst`` defaults to ``max(1, rate)``.
    default_method:
        Method for requests that do not name one (mirrors
        ``repro serve --method``).
    """

    def __init__(
        self,
        service: "DiffusionService",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 64,
        max_inflight: int = 8,
        rate: float | None = None,
        burst: float | None = None,
        default_method: str = "pr-nibble",
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst is not None and burst < 1:
            raise ValueError("burst must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = burst if burst is not None else (max(1.0, rate) if rate else 1.0)
        self.default_method = default_method
        self.stats = ServerStats()
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._clients: dict[int, _Client] = {}
        self._next_client = 0
        self._rr = 0
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._admission_task: "asyncio.Task[None] | None" = None
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DiffusionServer":
        """Bind the socket and start the admission loop."""
        if self._server is not None:
            return self
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._admission_task = loop.create_task(self._admission_loop())
        return self

    async def close(self) -> None:
        """Graceful drain: stop accepting, finish every admitted request,
        flush every reply in client order, then close the connections.

        Requests arriving *during* the drain are answered with a
        structured 503; requests already read are executed and answered.
        Safe to call more than once.  The underlying service is left
        running — close it separately.
        """
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wake is None:  # never started
            self._closed = True
            return
        # Finish everything already admitted or awaiting admission.
        self._wake.set()
        self._check_idle()
        assert self._idle is not None
        await self._idle.wait()
        # Flush per-connection reply queues in order, then force EOF on
        # the readers by closing the transports.
        for client in list(self._clients.values()):
            if client.replies is not None:
                client.replies.put_nowait(None)
            if client.writer_task is not None:
                await client.writer_task
            if client.writer is not None:
                client.writer.close()
        # Readers observe EOF and unregister themselves; wait for that.
        while self._clients:
            await asyncio.sleep(0)
        if self._admission_task is not None:
            self._admission_task.cancel()
            try:
                await self._admission_task
            except asyncio.CancelledError:
                pass
            self._admission_task = None
        self._closed = True

    async def __aenter__(self) -> "DiffusionServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _register(self) -> _Client:
        loop = asyncio.get_running_loop()
        self._next_client += 1
        client = _Client(
            f"client-{self._next_client}",
            _TokenBucket(self.rate, self.burst, loop.time()),
        )
        self._clients[self._next_client] = client
        self.stats.connections += 1
        return client

    def _unregister(self, client: _Client) -> None:
        client.closed = True
        # Requests never admitted are dropped with their connection; the
        # admission loop skips entries whose outcome future is done.
        while client.pending:
            entry = client.pending.popleft()
            if not entry.outcome.done():
                entry.outcome.cancel()
        for key, value in list(self._clients.items()):
            if value is client:
                del self._clients[key]
        self._check_idle()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining or self._closed:
            # Accepted before the listener closed, scheduled after the
            # drain began: close before reading anything, so the drain
            # never races a connection it cannot see in self._clients.
            writer.close()
            return
        try:
            first = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        if not first.strip():
            writer.close()
            return
        client = self._register()
        client.writer = writer
        verb = first.split(b" ", 1)[0]
        try:
            if verb in _HTTP_VERBS and b"HTTP/1." in first:
                await self._serve_http(client, reader, writer, first)
            else:
                await self._serve_ndjson(client, reader, writer, first)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-frame; nothing left to answer
        finally:
            self._unregister(client)
            writer.close()

    # ------------------------------------------------------------------
    # Ingestion (shared by both framings)
    # ------------------------------------------------------------------
    def _ingest(self, client: _Client, text: str) -> "asyncio.Future[dict]":
        """Parse + validate one request; returns a future reply object.

        Replies resolve out of admission order (a rejected request's
        reply is ready immediately); the per-framing writers serialize
        them back into request order.
        """
        loop = asyncio.get_running_loop()
        reply: "asyncio.Future[dict]" = loop.create_future()
        client.request_counter += 1
        request_id: Any = client.request_counter
        self.stats.requests += 1
        try:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as error:
                raise RequestError(
                    None, f"request is not valid JSON: {error}"
                ) from None
            # Echo the client's id even when the payload is structurally
            # invalid — it is what lets a pipelining client match the
            # error back to the request it sent.
            if isinstance(payload, dict) and payload.get("id") is not None:
                request_id = payload["id"]
            request = parse_request(payload, default_method=self.default_method)
            if self._draining:
                raise RequestError(
                    None, "server is draining; no further requests", code=503
                )
            request.validate(num_vertices=self.service.engine.graph.num_vertices)
            if len(client.pending) >= self.max_pending:
                raise RequestError(
                    None,
                    f"queue full: {self.max_pending} requests already pending "
                    "admission on this connection; retry after a reply",
                    code=429,
                )
        except RequestError as error:
            self.stats.rejected += 1
            reply.set_result(error_reply(error, request_id))
            return reply

        outcome: "asyncio.Future[Any]" = loop.create_future()
        include_cluster = request.include_cluster

        def _resolve(done: "asyncio.Future[Any]") -> None:
            if reply.done():  # connection torn down
                return
            if done.cancelled():
                reply.set_result(
                    error_reply(
                        RequestError(None, "request dropped during shutdown", code=503),
                        request_id,
                    )
                )
            elif done.exception() is not None:
                reply.set_result(error_reply(done.exception(), request_id))
            else:
                reply.set_result(
                    outcome_reply(request_id, done.result(), include_cluster)
                )

        outcome.add_done_callback(_resolve)
        client.pending.append(_Pending(request, outcome))
        assert self._wake is not None and self._idle is not None
        self._idle.clear()
        self._wake.set()
        return reply

    # ------------------------------------------------------------------
    # Round-robin admission
    # ------------------------------------------------------------------
    def _check_idle(self) -> None:
        if self._idle is None:
            return
        busy = any(
            client.pending or client.inflight for client in self._clients.values()
        )
        if busy:
            self._idle.clear()
        else:
            self._idle.set()

    def _admit(self, client: _Client, entry: _Pending) -> None:
        request = entry.request
        try:
            service_future = self.service.submit(
                request.job(),
                priority=request.priority,
                graph_version=request.graph_version,
            )
        except Exception as error:  # service closing under us
            if not entry.outcome.done():
                entry.outcome.set_exception(error)
            return
        client.inflight += 1
        self.stats.admitted += 1
        self.stats.by_priority[request.priority] = (
            self.stats.by_priority.get(request.priority, 0) + 1
        )

        def _done(done: "asyncio.Future[Any]") -> None:
            client.inflight -= 1
            self.stats.replies += 1
            assert self._wake is not None
            self._wake.set()
            self._check_idle()
            if entry.outcome.done():
                return
            if done.cancelled():
                entry.outcome.cancel()
            elif done.exception() is not None:
                entry.outcome.set_exception(done.exception())
            else:
                entry.outcome.set_result(done.result())

        service_future.add_done_callback(_done)

    async def _admission_loop(self) -> None:
        """The fairness core: one admission per admissible client per pass.

        A pass visits the clients in rotating order (the rotation start
        advances every pass) and admits **at most one** queued request
        from each client that has admission capacity — a token in its
        bucket and in-flight headroom.  A client with a thousand queued
        bulk requests therefore gets exactly the same admission slots per
        pass as a client with one queued interactive request; depth buys
        nothing.  When no client is admissible the loop sleeps until a
        submission/completion wakes it, or until the nearest token-bucket
        refill matures.
        """
        assert self._wake is not None
        loop = asyncio.get_running_loop()
        while True:
            progressed = False
            next_refill: float | None = None
            clients = [c for c in self._clients.values() if not c.closed]
            if clients:
                start = self._rr % len(clients)
                self._rr += 1
                now = loop.time()
                for client in clients[start:] + clients[:start]:
                    while client.pending and client.pending[0].outcome.done():
                        client.pending.popleft()  # dropped with its connection
                    if not client.pending:
                        continue
                    if client.inflight >= self.max_inflight:
                        continue
                    # A drain finishes what was accepted as fast as the
                    # service allows; rate limits only shape steady state.
                    if not self._draining and not client.bucket.try_take(now):
                        wait = client.bucket.next_token_in(now)
                        if next_refill is None or wait < next_refill:
                            next_refill = wait
                        continue
                    self._admit(client, client.pending.popleft())
                    progressed = True
            self._check_idle()
            if progressed:
                await asyncio.sleep(0)  # let ingestion/writers interleave
                continue
            self._wake.clear()
            # Re-check before sleeping: a submission may have landed
            # between the last pass and the clear.
            if any(c.pending and c.inflight < self.max_inflight for c in clients):
                if next_refill is None:
                    continue
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=next_refill)
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------------------
    # NDJSON framing
    # ------------------------------------------------------------------
    async def _serve_ndjson(
        self,
        client: _Client,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        client.replies = asyncio.Queue()
        client.writer_task = asyncio.get_running_loop().create_task(
            self._reply_writer(client.replies, writer)
        )
        line: bytes | None = first
        try:
            while True:
                if line is None:
                    line = await reader.readline()
                    if not line:
                        break
                text = line.decode("utf-8", errors="replace").strip()
                line = None
                if not text:
                    continue
                # Enqueued at *read* time: replies stream back in this
                # connection's request order, whatever order they resolve.
                await client.replies.put(self._ingest(client, text))
        finally:
            await client.replies.put(None)
            if not self._draining:
                # EOF path: flush what this client is owed, then stop.
                await client.writer_task
                client.writer_task = None

    async def _reply_writer(
        self,
        replies: "asyncio.Queue[asyncio.Future[dict] | None]",
        writer: asyncio.StreamWriter,
    ) -> None:
        while True:
            item = await replies.get()
            if item is None:
                return
            reply = await item
            try:
                writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionError, RuntimeError):
                return  # client hung up; drop the rest of its replies

    # ------------------------------------------------------------------
    # HTTP/1.1 framing
    # ------------------------------------------------------------------
    async def _serve_http(
        self,
        client: _Client,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        line: bytes | None = first
        while True:
            if line is None:
                line = await reader.readline()
                if not line.strip():
                    break
            parts = line.decode("latin-1").split()
            line = None
            if len(parts) != 3:
                await self._write_http(
                    writer,
                    error_reply(RequestError(None, "malformed HTTP request line")),
                    close=True,
                )
                return
            verb, target, version = parts
            headers: dict[str, str] = {}
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length else b""
            keep_alive = (
                headers.get("connection", "").lower() != "close"
                and version.upper() == "HTTP/1.1"
            )
            if verb != "POST":
                reply = error_reply(
                    RequestError(
                        None,
                        f"{verb} is not supported; POST a request object to "
                        "/v1/cluster",
                        code=405,
                    )
                )
            elif target not in ("/", "/v1/cluster"):
                reply = error_reply(
                    RequestError(
                        None, f"no such endpoint {target!r}; POST to /v1/cluster",
                        code=404,
                    )
                )
            else:
                # HTTP is request/reply per exchange, so awaiting here is
                # what preserves this connection's reply order.
                reply = await self._ingest(client, body.decode("utf-8", "replace"))
            await self._write_http(writer, reply, close=not keep_alive)
            if not keep_alive:
                return

    async def _write_http(
        self, writer: asyncio.StreamWriter, reply: dict, close: bool = False
    ) -> None:
        status = 200
        if "error" in reply:
            status = int(reply["error"].get("code", 400))
        reason = _HTTP_REASONS.get(status, "Error")
        body = json.dumps(reply).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
