"""The one request/reply codec every serving transport speaks.

``repro serve`` (the stdin/stdout loop) and :class:`repro.serve.net.
DiffusionServer` (the socket transport) used to risk growing divergent
JSON dialects; both now parse requests with :func:`parse_request` (a thin
shim over :meth:`repro.core.options.ClusterRequest.from_wire`) and render
replies with :func:`outcome_reply` / :func:`error_reply`, so a client
script written against one transport works unchanged against the other.

Wire schema v1 (one JSON object per request)::

    {"v": 1, "seeds": [5], "method": "pr-nibble",
     "params": {"eps": 1e-5}, "rng": 0, "priority": "interactive",
     "kernel": "auto", "include_cluster": false, "id": "q-1"}

``seeds`` is the only required field; a scalar seed is accepted.  With an
explicit ``"v": 1`` unknown fields are rejected; without it the payload
is parsed as the legacy loose dialect (unknown fields ignored).  Success
replies echo ``id`` and carry the flat result record::

    {"id": "q-1", "seeds": [5], "method": "pr-nibble", "size": 8,
     "conductance": 0.0329, "support": 8, "pushes": 18,
     "seconds": 0.0004, "cached": false}

plus ``"cluster": [...]`` (sorted member vertex ids) when the request set
``include_cluster``.  Failures carry a structured error naming the
offending field instead of a stringified traceback::

    {"id": "q-1", "error": {"message": "...", "code": 400,
                            "field": "params.alpha"}}
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..core.options import ClusterRequest, RequestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.executor import JobOutcome

__all__ = ["parse_request", "parse_request_line", "outcome_reply", "error_reply"]


def parse_request(payload: Any, default_method: str = "pr-nibble") -> ClusterRequest:
    """One decoded JSON value -> a structurally valid :class:`ClusterRequest`.

    Raises :class:`~repro.core.options.RequestError` (never a raw
    ``TypeError``/``KeyError``) so transports can answer with a
    structured error naming the offending field.  Semantic checks
    (method/params/seed-range) stay with ``ClusterRequest.validate`` —
    run by ``DiffusionService.submit`` — so the two layers never drift.
    """
    return ClusterRequest.from_wire(payload, default_method=default_method)


def parse_request_line(line: str, default_method: str = "pr-nibble") -> ClusterRequest:
    """One raw text line -> a request; malformed JSON is a field-less error."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise RequestError(None, f"request is not valid JSON: {error}") from None
    return parse_request(payload, default_method=default_method)


def outcome_reply(request_id: Any, outcome: "JobOutcome",
                  include_cluster: bool = False) -> dict[str, Any]:
    """The flat success reply for one executed job (shape shared by all
    transports; ``conductance`` is ``null`` for an empty diffusion)."""
    payload: dict[str, Any] = {
        "id": request_id,
        "seeds": list(outcome.job.seeds),
        "method": outcome.job.method,
        "size": outcome.size,
        "conductance": outcome.conductance if outcome.sweep is not None else None,
        "support": outcome.support_size,
        "pushes": outcome.pushes,
        "seconds": outcome.wall_seconds,
        "cached": outcome.cached,
    }
    if include_cluster:
        payload["cluster"] = outcome.cluster.tolist()
    return payload


def error_reply(error: BaseException, request_id: Any = None) -> dict[str, Any]:
    """The structured failure reply: ``{"id": ..., "error": {...}}``.

    :class:`RequestError` carries its field and code through verbatim;
    any other exception (an engine failure surfacing through a future)
    is wrapped as a field-less 500 so clients can still dispatch on
    ``error.code`` without string-matching.
    """
    if isinstance(error, RequestError):
        body = error.to_wire()
    else:
        body = {"message": str(error) or type(error).__name__, "code": 500}
    return {"id": request_id, "error": body}
