"""Serving plane — asyncio front-end over the batch engine.

The execution stack below this package is synchronous and batch-shaped;
this package turns it into a *service*: concurrent asyncio clients
``submit()`` individual diffusion queries, a drain loop micro-batches
them, and one long-lived pool session (one process pool + one shared
graph export, reused across every batch) executes them — interactive
queries drained ahead of bulk backlogs.

* :mod:`repro.serve.service` — :class:`DiffusionService` (submit /
  submit_many / cluster, micro-batching, priority-aware draining),
  :class:`ServiceStats`, :class:`ServiceClosed`.

See also :func:`repro.core.api.async_local_cluster` (the one-call async
convenience) and ``python -m repro serve`` (a stdin-JSON demo loop).
"""

from .service import PRIORITIES, DiffusionService, ServiceClosed, ServiceStats

__all__ = ["DiffusionService", "ServiceStats", "ServiceClosed", "PRIORITIES"]
