"""Serving plane — asyncio front-end over the batch engine.

The execution stack below this package is synchronous and batch-shaped;
this package turns it into a *service*: concurrent asyncio clients
``submit()`` individual diffusion queries, a drain loop micro-batches
them, and one long-lived pool session (one process pool + one shared
graph export, reused across every batch) executes them — interactive
queries drained ahead of bulk backlogs.

* :mod:`repro.serve.service` — :class:`DiffusionService` (submit /
  submit_many / cluster, micro-batching, priority-aware draining),
  :class:`ServiceStats`, :class:`ServiceClosed`.
* :mod:`repro.serve.net` — :class:`DiffusionServer`, the asyncio TCP
  transport in front of a service: NDJSON and HTTP/1.1 framings of one
  codec, per-client round-robin admission, token-bucket rate limiting,
  in-flight caps, structured 429 backpressure, graceful drain.
* :mod:`repro.serve.protocol` — that shared codec (wire schema v1):
  :func:`parse_request`, :func:`outcome_reply`, :func:`error_reply` —
  also spoken by the ``repro serve`` stdin loop.

See also :func:`repro.core.api.async_local_cluster` (the one-call async
convenience) and ``python -m repro serve`` (stdin or ``--listen``).
"""

from .net import DiffusionServer, ServerStats
from .protocol import error_reply, outcome_reply, parse_request, parse_request_line
from .service import PRIORITIES, DiffusionService, ServiceClosed, ServiceStats

__all__ = [
    "DiffusionService",
    "ServiceStats",
    "ServiceClosed",
    "PRIORITIES",
    "DiffusionServer",
    "ServerStats",
    "parse_request",
    "parse_request_line",
    "outcome_reply",
    "error_reply",
]
