"""The async serving plane: concurrent clients, one engine, one pool.

The paper pitches local clustering as an *interactive* primitive — "a data
analyst wants to quickly explore the properties of local clusters found in
a graph" — while its experiments are huge offline batches.  A production
deployment (the local-clustering services sketched in Fountoulakis/Gleich/
Mahoney's survey) needs both at once: long NCP-style batches and
sub-second interactive queries sharing one machine, one graph, one worker
pool.

:class:`DiffusionService` is that front-end.  Clients ``submit()`` /
``submit_many()`` :class:`~repro.engine.jobs.DiffusionJob`\\ s from any
asyncio coroutine and get one awaitable future per job.  A single drain
loop micro-batches queued submissions (up to ``max_batch`` jobs, after at
most ``max_linger`` seconds of lingering for batch-mates) and runs each
batch through **one long-lived execution session**
(:meth:`repro.engine.BatchEngine.open_session`): the process pool starts
once, the graph is exported into shared memory once, and every batch after
that reuses both — no per-call pool start-up, no per-batch re-export.

Scheduling is priority-aware.  Submissions carry a priority class
(``"interactive"`` or ``"bulk"``); every drained batch takes interactive
jobs first, in submission order, so an analyst's query entering behind a
10^4-job NCP backlog rides the *next* micro-batch instead of the queue's
tail.  Within each class order is FIFO, which is what keeps futures
resolving in submission order per client.  The scheduler plane's cost
estimates (:func:`repro.engine.scheduler.estimate_cost`) bound how much
bulk work one batch may admit (``max_batch_cost``), so a wall of expensive
bulk jobs cannot stretch the batch an interactive query is waiting behind.

Execution happens in a dedicated worker thread (sessions are blocking and
single-threaded); outcomes are resolved onto the event loop **as they
stream back in job order**, so an interactive future can resolve while the
same batch's bulk tail is still running.  Cancelled futures are skipped at
drain time (queued) or dropped at resolution time (in flight) — either
way the drain loop keeps going.

A service built on an :class:`~repro.graph.evolving.EvolvingGraph` also
serves **versions**.  Every submission is stamped with a graph version at
admission (an explicit ``graph_version=``, else the chain's current
latest); batches are homogeneous in version, oldest queued version first,
and each version executes through its own pinned engine sharing the one
backend and result cache.  ``await service.update(...)`` appends a new
version between batches — in-flight and already-admitted queries still
answer against the version they were admitted under, and the cross-version
cache migration (:func:`repro.cache.advance_version`) carries unaffected
entries forward so the new version starts warm.

>>> import asyncio
>>> from repro.graph import barbell_graph
>>> from repro.serve import DiffusionService
>>> async def demo():
...     async with DiffusionService(barbell_graph(8)) as service:
...         outcome = await service.submit_query(0, eps=1e-5)
...         return outcome.size
>>> asyncio.run(demo())
8
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..core.options import PRIORITIES, ClusterRequest, RequestError
from ..engine.executor import BatchEngine, ExecutionSession, JobOutcome, resolve_engine
from ..engine.jobs import DiffusionJob
from ..engine.scheduler import estimate_cost, observe_outcome
from ..runtime.cost_model import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache import MigrationStats, ResultCache
    from ..core.options import EngineOptions
    from ..core.result import ClusterResult
    from ..graph.csr import CSRGraph
    from ..graph.evolving import EvolvingGraph, GraphVersion

__all__ = ["DiffusionService", "ServiceStats", "ServiceClosed", "PRIORITIES"]


class ServiceClosed(RuntimeError):
    """Submitting to a service that is closing or closed."""


@dataclass
class ServiceStats:
    """Aggregate counters over the service's lifetime.

    ``steals``, ``busy_seconds`` and ``idle_seconds`` mirror the engine's
    work-stealing dispatch accounting (zero for pool-less backends);
    ``dispatch`` carries the full per-backend summary and
    ``cost_calibration`` the online cost model's per-(method, kernel)
    seconds-per-work-unit snapshot — both refreshed after every executed
    batch.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    batches: int = 0
    updates: int = 0
    cache_hits: int = 0
    steals: int = 0
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    by_priority: dict[str, int] = field(default_factory=dict)
    dispatch: dict[str, float | int] | None = None
    cost_calibration: dict[str, dict[str, float]] = field(default_factory=dict)

    def describe(self) -> str:
        per_priority = " ".join(
            f"{name}={self.by_priority.get(name, 0)}" for name in PRIORITIES
        )
        return (
            f"submitted={self.submitted} ({per_priority}) "
            f"completed={self.completed} failed={self.failed} "
            f"cancelled={self.cancelled} batches={self.batches} "
            f"updates={self.updates} "
            f"cache_hits={self.cache_hits} steals={self.steals} "
            f"busy={self.busy_seconds:.3f}s idle={self.idle_seconds:.3f}s"
        )


@dataclass
class _Ticket:
    """One queued submission: the job, its future, and drain metadata.

    ``version`` is the graph version the job was *admitted* against
    (``None`` on a non-evolving service); the reply is computed on
    exactly that edge set even if the chain advances while the ticket
    is still queued.
    """

    job: DiffusionJob
    priority: str
    cost: float
    future: "asyncio.Future[JobOutcome]"
    version: int | None = None


class DiffusionService:
    """Asyncio front-end multiplexing clients onto one `BatchEngine` pool.

    Parameters
    ----------
    graph:
        The graph every query runs against.
    engine:
        A prebuilt :class:`repro.engine.BatchEngine` (or backend name);
        ``None`` infers serial/process/sharded from ``workers`` and
        ``shards`` exactly like the engine constructor.  ``workers``,
        ``cache``, ``start_method``, ``schedule``, ``shards``,
        ``max_resident_shards``, ``spill_shards``, ``halo_bytes`` and
        ``kernel`` follow
        :func:`repro.engine.resolve_engine` — with ``shards=`` the service
        executes through the shard-routed backend, so a memory-capped
        process serves the graph with only each query's shard(s) resident;
        ``kernel`` sets the default loop implementation
        (:mod:`repro.kernels`) stamped onto jobs that don't choose one.
    graph_version:
        With an :class:`~repro.graph.evolving.EvolvingGraph`: serve this
        version by default instead of following the chain's latest.
        Requests may still pin any existing version explicitly, and
        ``update()`` keeps working.
    max_batch:
        Most jobs one micro-batch may carry (default 32).  Smaller batches
        mean lower interactive latency under bulk load, at some dispatch
        overhead.
    max_linger:
        Longest time (seconds) a queued submission waits for batch-mates
        before the batch is dispatched anyway (default 2 ms).  ``0``
        dispatches immediately.
    max_batch_cost:
        Optional cap on a batch's summed scheduler cost estimate
        (:func:`repro.engine.scheduler.estimate_cost` units).  A batch
        always admits at least one job; once the cap is exceeded the rest
        of the backlog waits for the next batch.  This is the knob that
        keeps micro-batches short — and interactive waits bounded — when
        the bulk backlog is made of expensive jobs.

    The service must be used from a single asyncio event loop.  Prefer the
    async-context-manager form (``async with DiffusionService(...) as s:``)
    — it pre-warms the pool on entry and drains + closes on exit.
    """

    #: prepared execution sessions kept open at once on an evolving
    #: service: the version currently draining plus one straggler.  A
    #: session pins real resources (a pool, shared-memory exports), so
    #: older versions close and reopen on demand instead of accumulating.
    _MAX_OPEN_SESSIONS = 2

    def __init__(
        self,
        graph: "CSRGraph | EvolvingGraph",
        engine: "BatchEngine | str | None" = None,
        *,
        workers: int | None = None,
        parallel: bool | None = None,
        include_vectors: bool | None = None,
        cache: "ResultCache | bool | str | None" = None,
        start_method: str | None = None,
        schedule: str | None = None,
        shards: int | None = None,
        max_resident_shards: int | None = None,
        spill_shards: int | None = None,
        halo_bytes: int | None = None,
        kernel: str | None = None,
        graph_version: int | None = None,
        options: "EngineOptions | None" = None,
        max_batch: int = 32,
        max_linger: float = 0.002,
        max_batch_cost: float | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_linger < 0:
            raise ValueError("max_linger must be >= 0")
        if max_batch_cost is not None and max_batch_cost <= 0:
            raise ValueError("max_batch_cost must be positive")
        self.engine = resolve_engine(
            graph,
            engine,
            workers=workers,
            parallel=parallel,
            include_vectors=include_vectors,
            cache=cache,
            start_method=start_method,
            schedule=schedule,
            shards=shards,
            max_resident_shards=max_resident_shards,
            spill_shards=spill_shards,
            halo_bytes=halo_bytes,
            kernel=kernel,
            graph_version=graph_version,
            options=options,
        )
        self.max_batch = max_batch
        self.max_linger = max_linger
        self.max_batch_cost = max_batch_cost
        self.stats = ServiceStats()
        #: the version chain being served, or ``None`` for a static graph.
        self.evolving: "EvolvingGraph | None" = self.engine.evolving
        self._engines: dict[int, BatchEngine] = {}
        # Admission costs calibrate online.  A pool backend owns a model
        # (its session observes every outcome); pool-less backends get a
        # service-owned one fed from _resolve, so `max_batch_cost` tracks
        # measured seconds-per-work-unit either way.
        engine_model = self.engine.cost_model
        self._cost_model = engine_model if engine_model is not None else CostModel()
        self._observe_outcomes = engine_model is None
        self._queues: dict[str, deque[_Ticket]] = {p: deque() for p in PRIORITIES}
        # Sessions keyed by graph version (a single ``None`` key on a
        # non-evolving service); bounded by _MAX_OPEN_SESSIONS.
        self._sessions: "dict[int | None, ExecutionSession]" = {}
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wakeup: asyncio.Event | None = None
        self._drain_task: "asyncio.Task[None] | None" = None
        self._closing = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def graph(self) -> "CSRGraph":
        return self.engine.graph

    @property
    def session(self) -> ExecutionSession | None:
        """The most recently opened execution session (``None`` before
        first use).  An evolving service may hold one per active version;
        this is the one opened last."""
        if not self._sessions:
            return None
        return next(reversed(list(self._sessions.values())))

    async def start(self) -> "DiffusionService":
        """Pre-warm the service: start the drain loop, pool and export now,
        so the first query does not pay them.  Optional — ``submit`` starts
        everything lazily.

        If the pool cannot start (fd exhaustion, a full ``/dev/shm``),
        the service closes itself before re-raising: no drain task, no
        worker thread, and further submissions raise `ServiceClosed`.
        """
        self._ensure_running()
        loop = self._loop
        assert loop is not None and self._executor is not None
        try:
            await loop.run_in_executor(self._executor, self._open_session)
        except BaseException:
            await self.close()
            raise
        return self

    async def close(self) -> None:
        """Drain every queued submission, then shut the pool down.

        Safe to call more than once; after it returns no worker processes
        or shared-memory segments of this service remain.
        """
        self._closing = True
        if self._loop is None:  # never started — nothing to drain or stop
            self._closed = True
            return
        if self._wakeup is not None:
            self._wakeup.set()
        if self._drain_task is not None:
            await self._drain_task
            self._drain_task = None
        if self._executor is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, self._close_session)
            self._executor.shutdown(wait=True)
            self._executor = None
        self._closed = True

    async def __aenter__(self) -> "DiffusionService":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def _ensure_running(self) -> None:
        """Bind to the running loop and start the drain task (idempotent)."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._wakeup = asyncio.Event()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._drain_task = loop.create_task(self._drain_loop())
        elif self._loop is not loop:
            raise RuntimeError(
                "DiffusionService is bound to another event loop; create one "
                "service per loop"
            )

    def _engine_for(self, version: int | None) -> BatchEngine:
        """The engine serving ``version`` — the base engine, or a sibling
        pinned via :meth:`BatchEngine.at_version` (sharing the base
        engine's backend, cache and calibration)."""
        if version is None or version == self.engine.graph_version:
            return self.engine
        engine = self._engines.get(version)
        if engine is None:
            engine = self._engines.setdefault(version, self.engine.at_version(version))
        return engine

    def _open_session(self, version: int | None = None) -> ExecutionSession:
        """Open (or reuse) the session for ``version`` — runs in the worker
        thread.  ``None`` resolves to the service's default version."""
        if self.evolving is not None and version is None:
            version = self._admit_version(None)
        session = self._sessions.get(version)
        if session is None:
            session = self._engine_for(version).open_session()
            self._sessions[version] = session
            while len(self._sessions) > self._MAX_OPEN_SESSIONS:
                oldest = min(
                    key for key in self._sessions if key != version  # type: ignore[type-var]
                )
                self._sessions.pop(oldest).close()
        return session

    def _close_session(self) -> None:
        for session in self._sessions.values():
            session.close()
        self._sessions.clear()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        job: DiffusionJob,
        priority: str = "interactive",
        graph_version: int | None = None,
    ) -> "asyncio.Future[JobOutcome]":
        """Queue one job; the returned future resolves to its `JobOutcome`.

        Invalid submissions (unknown method or priority, bad parameters,
        out-of-range seeds, a ``graph_version`` the chain does not have)
        raise ``ValueError`` here, synchronously —
        never from inside a worker, where one bad job would poison its
        whole micro-batch.  Cancelling the future withdraws a queued job;
        a job already in flight still runs, but its result is dropped.

        On an evolving service the job is stamped with a version *now* —
        ``graph_version`` if given, else the service's current default —
        and is answered against exactly that edge set even if ``update()``
        advances the chain before the job runs.
        """
        if self._closing or self._closed:
            raise ServiceClosed("service is closed; no further submissions")
        self._validate(job, priority)
        version = self._admit_version(graph_version)
        self._ensure_running()
        assert self._loop is not None and self._wakeup is not None
        future: "asyncio.Future[JobOutcome]" = self._loop.create_future()
        # The estimate instantiates the params dataclass again; only pay
        # for it when a cost cap will actually consult it at drain time.
        cost = (
            estimate_cost(job, self._cost_model)
            if self.max_batch_cost is not None
            else 0.0
        )
        ticket = _Ticket(
            job=job, priority=priority, cost=cost, future=future, version=version
        )
        self._queues[priority].append(ticket)
        self.stats.submitted += 1
        self.stats.by_priority[priority] = self.stats.by_priority.get(priority, 0) + 1
        self._wakeup.set()
        return future

    def submit_many(
        self, jobs: Iterable[DiffusionJob], priority: str = "bulk"
    ) -> "list[asyncio.Future[JobOutcome]]":
        """Queue a stream of jobs (bulk priority by default), one future each."""
        return [self.submit(job, priority=priority) for job in jobs]

    def submit_query(
        self,
        seeds: Any,
        method: str = "pr-nibble",
        rng: int = 0,
        priority: str = "interactive",
        kernel: str | None = None,
        graph_version: int | None = None,
        **params: Any,
    ) -> "asyncio.Future[JobOutcome]":
        """Convenience: build the job from loose (seeds, method, params).

        ``kernel=None`` (default) inherits the service's engine default;
        an explicit value overrides it for this query only.  Either way
        the result is bit-identical — the knob only changes speed.
        ``graph_version`` pins the query to one version of an evolving
        service's chain (``None`` admits against the current default).
        """
        job = DiffusionJob.make(seeds, method=method, params=params, rng=rng, kernel=kernel)
        return self.submit(job, priority=priority, graph_version=graph_version)

    async def cluster(
        self,
        seeds: Any,
        method: str = "pr-nibble",
        rng: int = 0,
        priority: str = "interactive",
        kernel: str | None = None,
        **params: Any,
    ) -> "ClusterResult":
        """One awaited query, returned as the high-level `ClusterResult`."""
        if not self.engine.include_vectors:
            raise ValueError(
                "rebuilding a ClusterResult needs the diffusion vectors; "
                "build the service with include_vectors=True"
            )
        outcome = await self.submit_query(
            seeds, method=method, rng=rng, priority=priority, kernel=kernel, **params
        )
        return outcome.to_cluster_result()

    async def update(
        self,
        insertions: Any = (),
        deletions: Any = (),
    ) -> "tuple[GraphVersion, MigrationStats | None]":
        """Apply one batched edge update to the served evolving graph.

        Appends a new version to the chain and migrates the result cache
        across it (:func:`repro.cache.advance_version` — entries whose
        recorded profile avoids the delta region are re-keyed to the new
        fingerprint; ``None`` when the service has no cache).  The call
        runs on the service's single worker thread, so it is serialized
        against batch execution: no batch ever observes a half-applied
        update.  Queries admitted before this call still answer against
        the version they were admitted under; queries admitted after it
        default to the new version (unless the service was pinned at
        construction).  Returns ``(new_version, migration_stats)``.
        """
        if self.evolving is None:
            raise ValueError(
                "update() requires a service built on an EvolvingGraph"
            )
        if self._closing or self._closed:
            raise ServiceClosed("service is closed; no further updates")
        self._ensure_running()
        loop = self._loop
        assert loop is not None and self._executor is not None
        return await loop.run_in_executor(
            self._executor, self._apply_update, insertions, deletions
        )

    def _apply_update(
        self, insertions: Any, deletions: Any
    ) -> "tuple[GraphVersion, MigrationStats | None]":
        """Worker-thread body of :meth:`update`."""
        assert self.evolving is not None
        version = self.evolving.apply_updates(
            insertions=insertions, deletions=deletions
        )
        stats = None
        cache = self.engine.cache
        if cache is not None:
            from ..cache import advance_version

            stats = advance_version(cache, version)
        self.stats.updates += 1
        return version, stats

    def _validate(self, job: DiffusionJob, priority: str) -> None:
        """One validation path with the wire and the CLI: lift the job into
        a :class:`~repro.core.options.ClusterRequest` and run its semantic
        checks.  Failures raise :class:`~repro.core.options.RequestError`
        (a ``ValueError``) carrying the *canonical* parameter name — e.g.
        ``params.alpha`` rather than an echo of raw kwargs — synchronously,
        never from inside a worker, where one bad job would poison its
        whole micro-batch.  Unknown/unavailable kernels fail here too
        (``KernelUnavailableError`` keeps its actionable message, carried
        under the ``kernel`` field)."""
        ClusterRequest.from_job(job, priority=priority).validate(
            num_vertices=self.engine.graph.num_vertices
        )

    def _admit_version(self, graph_version: int | None) -> int | None:
        """Resolve the version a submission is admitted against.

        ``None`` on a static service; on an evolving one, the explicit
        request, else the service's construction-time pin, else the
        chain's current latest.  A version the chain does not have is a
        404-coded :class:`~repro.core.options.RequestError` so wire
        clients get a structured reply rather than a stack trace.
        """
        if self.evolving is None:
            if graph_version is not None:
                raise RequestError(
                    "graph_version",
                    "this service serves a static graph; graph_version "
                    "requires a service built on an EvolvingGraph",
                )
            return None
        if graph_version is None:
            if self.engine.graph_version is not None:
                return self.engine.graph_version
            return self.evolving.latest.version
        try:
            self.evolving.at(int(graph_version))
        except ValueError as error:
            raise RequestError("graph_version", str(error), code=404) from None
        return int(graph_version)

    # ------------------------------------------------------------------
    # The drain loop
    # ------------------------------------------------------------------
    def _pending_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    async def _drain_loop(self) -> None:
        loop = self._loop
        wakeup = self._wakeup
        assert loop is not None and wakeup is not None
        while True:
            if self._pending_count() == 0:
                if self._closing:
                    return
                wakeup.clear()
                await wakeup.wait()
                continue
            # Linger briefly so near-simultaneous submissions share one
            # batch — unless the batch is already full, or we're draining
            # towards shutdown.
            if (
                self.max_linger > 0
                and not self._closing
                and self._pending_count() < self.max_batch
            ):
                await asyncio.sleep(self.max_linger)
            batch = self._next_batch()
            if not batch:  # everything queued had been cancelled
                continue
            self.stats.batches += 1
            try:
                await loop.run_in_executor(
                    self._executor, self._execute_batch, loop, batch
                )
            except Exception as error:  # pool died, session broken, ...
                for ticket in batch:
                    if not ticket.future.done():
                        self.stats.failed += 1
                        ticket.future.set_exception(error)
            self._refresh_scheduler_stats()

    def _refresh_scheduler_stats(self) -> None:
        """Mirror the engine's dispatch accounting and the calibration
        snapshot onto :class:`ServiceStats` (after every batch)."""
        dispatch = self.engine.dispatch_stats
        if dispatch is not None:
            summary = dispatch.describe()
            self.stats.dispatch = summary
            self.stats.steals = int(summary["steals"])
            self.stats.busy_seconds = float(summary["busy_seconds"])
            self.stats.idle_seconds = float(summary["idle_seconds"])
        self.stats.cost_calibration = self._cost_model.snapshot()

    def _next_version(self) -> int | None:
        """The graph version the next batch targets: the *oldest* version
        still queued, so pinned stragglers drain before the chain's head
        and cannot be starved by a fast-advancing update stream."""
        versions = [
            ticket.version
            for queue in self._queues.values()
            for ticket in queue
            if not ticket.future.done() and ticket.version is not None
        ]
        return min(versions) if versions else None

    def _next_batch(self) -> list[_Ticket]:
        """Compose the next micro-batch: interactive first, FIFO within
        each class, bounded by ``max_batch`` jobs and (optionally) by the
        summed scheduler cost estimate.  Batches are **homogeneous in
        graph version** (an execution session is bound to one edge set);
        tickets for other versions are skipped in place and keep their
        queue order for a later batch."""
        batch: list[_Ticket] = []
        cost = 0.0
        target = self._next_version()
        full = False
        for priority in PRIORITIES:
            queue = self._queues[priority]
            kept: list[_Ticket] = []
            while queue and not full and len(batch) < self.max_batch:
                ticket = queue.popleft()
                if ticket.future.done():  # cancelled while queued
                    self.stats.cancelled += 1
                    continue
                if ticket.version != target:
                    kept.append(ticket)
                    continue
                if (
                    self.max_batch_cost is not None
                    and batch
                    and cost + ticket.cost > self.max_batch_cost
                ):
                    kept.append(ticket)
                    full = True
                    continue
                batch.append(ticket)
                cost += ticket.cost
            queue.extendleft(reversed(kept))
        return batch

    def _execute_batch(
        self, loop: asyncio.AbstractEventLoop, batch: list[_Ticket]
    ) -> None:
        """Worker-thread body: run one batch through the persistent session,
        resolving each future onto the loop as its outcome streams back.

        Outcomes arrive in job order, and interactive tickets sit at the
        front of every batch — so an interactive future resolves as soon
        as its own job is done, not when the batch's bulk tail finishes.
        """
        session = self._open_session(batch[0].version)
        for ticket, outcome in zip(batch, session.run(t.job for t in batch)):
            loop.call_soon_threadsafe(self._resolve, ticket, outcome)

    def _resolve(self, ticket: _Ticket, outcome: JobOutcome) -> None:
        if outcome.cached:
            self.stats.cache_hits += 1
        elif self._observe_outcomes:
            # Pool backends observe inside their session; for pool-less
            # backends the service feeds its own model here so admission
            # costs still calibrate across batches.
            observe_outcome(self._cost_model, outcome)
        if ticket.future.done():  # cancelled while in flight
            self.stats.cancelled += 1
            return
        self.stats.completed += 1
        ticket.future.set_result(outcome)
