"""Simulated multicore machine: turns (work, depth) profiles into times.

The paper evaluates on a 40-core Intel E7-8870 machine with two-way
hyper-threading (Section 4).  A CPython reproduction cannot obtain real
shared-memory speedups (the GIL serialises bytecode), so we substitute the
hardware with a calibrated analytical model — the standard Brent-bound form
used to analyse the very algorithms the paper presents:

    ``T(P) = t_w * W / S(P) + t_d * D * (1 + sync * log2(P))``

where ``W`` and ``D`` are the *measured* work and depth of a run (recorded by
:mod:`repro.runtime.cost_model`) and ``S(P)`` is the effective parallelism of
``P`` hardware threads:

* up to the physical core count, each thread contributes fully;
* hyper-threads beyond the physical cores contribute a fraction
  (:attr:`MachineModel.smt_gain`) of a core, matching the paper's observation
  that rand-HK-PR exceeds 40x speedup on 40 cores *because of* two-way
  hyper-threading;
* a per-category memory-contention coefficient ``c`` discounts throughput as
  ``S = raw / (1 + c * (raw - 1))``, modelling the paper's observation that
  "the speedup is not perfect due to memory contention" — scattered
  fetch-and-adds (``edge_map``) contend hard, independent random walks
  (``walk``) barely at all.

The model's free constants are calibration knobs, documented here and in
DESIGN.md.  Self-relative speedups — the quantity Figures 9 and 10 plot —
depend only on the *ratios* of the recorded quantities, which come from the
actual algorithm executions, so the shape of the reproduction (who scales,
where crossovers fall) is driven by measurements, not by the constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cost_model import WorkDepthTracker

__all__ = ["MachineModel", "PAPER_MACHINE", "DEFAULT_CONTENTION"]


# Per-category memory-contention coefficients.  Larger = saturates earlier.
# Calibrated so the 40-core speedups land in the bands the paper reports:
# diffusions 9-35x, sweep cut 23-28x, rand-HK-PR > 40x (with hyper-threading).
DEFAULT_CONTENTION: dict[str, float] = {
    "edge_map": 0.018,  # scattered reads + fetch-and-add accumulation
    "vertex_map": 0.010,
    "hash": 0.010,  # concurrent hash table probes
    "scan": 0.008,
    "filter": 0.008,
    "sort": 0.010,
    "walk": 0.0005,  # independent random walks: embarrassingly parallel
    "misc": 0.010,
    # Work recorded by *sequential* reference implementations: contention 1
    # collapses the effective parallelism to ~1 at any thread count, so a
    # sequential profile's simulated time is flat in P (the horizontal
    # line of Figure 10).
    "sequential": 1.0,
}


@dataclass(frozen=True)
class MachineModel:
    """Analytical multicore model (see module docstring).

    Parameters
    ----------
    physical_cores:
        Number of physical cores (paper machine: 40).
    smt_per_core:
        Hardware threads per core (paper machine: 2-way hyper-threading).
    smt_gain:
        Marginal throughput of each hyper-thread beyond the physical cores,
        as a fraction of a full core.
    work_time:
        Seconds per unit of work on one thread.  Only affects absolute
        simulated times, never self-relative speedups.
    depth_time:
        Seconds per unit of depth.  One depth unit is one step on the
        critical path of a parallel primitive (the recorded depths already
        include the O(log N) factors), so its cost is a small multiple of a
        work unit; the ratio ``depth_time / work_time`` controls how hard
        many-round/small-frontier executions (PR-Nibble on a mesh) are
        penalised relative to few-round/large-frontier ones — the effect
        behind the paper's "some frontiers are too small to benefit from
        parallelism".
    sync_factor:
        Barrier cost growth per doubling of thread count.
    contention:
        Per-category contention coefficients; missing categories fall back
        to ``contention["misc"]``.
    """

    physical_cores: int = 40
    smt_per_core: int = 2
    smt_gain: float = 0.35
    work_time: float = 5e-9
    depth_time: float = 1e-7
    sync_factor: float = 0.05
    contention: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_CONTENTION))

    def __post_init__(self) -> None:
        if self.physical_cores < 1:
            raise ValueError("physical_cores must be >= 1")
        if self.smt_per_core < 1:
            raise ValueError("smt_per_core must be >= 1")
        if not 0.0 <= self.smt_gain <= 1.0:
            raise ValueError("smt_gain must be in [0, 1]")

    # ------------------------------------------------------------------
    # Thread accounting
    # ------------------------------------------------------------------
    @property
    def max_threads(self) -> int:
        """Total hardware threads (cores x SMT ways)."""
        return self.physical_cores * self.smt_per_core

    def threads_for_cores(self, cores: int) -> int:
        """Threads used when running on ``cores`` cores, paper-style.

        The paper's scaling plots use one thread per core up to the full
        machine, then enable hyper-threading at the top point ("on 40 cores,
        80 hyper-threads are used").
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        if cores >= self.physical_cores:
            return min(cores, self.physical_cores) * self.smt_per_core
        return cores

    def raw_parallelism(self, threads: int) -> float:
        """Throughput of ``threads`` hardware threads ignoring contention."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        threads = min(threads, self.max_threads)
        base = min(threads, self.physical_cores)
        extra = max(0, threads - self.physical_cores)
        return base + self.smt_gain * extra

    def effective_parallelism(self, threads: int, category: str = "misc") -> float:
        """Throughput after the category's memory-contention discount."""
        raw = self.raw_parallelism(threads)
        coeff = self.contention.get(category, self.contention.get("misc", 0.01))
        return raw / (1.0 + coeff * (raw - 1.0))

    # ------------------------------------------------------------------
    # Simulated times
    # ------------------------------------------------------------------
    def simulated_time(self, tracker: WorkDepthTracker, threads: int = 1) -> float:
        """Simulated running time (seconds) of a recorded profile.

        Work is split by category so each category saturates according to
        its own contention coefficient; the depth term charges one barrier
        per unit of critical path, growing mildly with thread count.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        total = 0.0
        if tracker.by_category:
            for category, cost in tracker.by_category.items():
                speed = self.effective_parallelism(threads, category)
                total += self.work_time * cost.work / speed
        else:
            total += self.work_time * tracker.work / self.effective_parallelism(threads)
        barrier = 1.0 + self.sync_factor * math.log2(max(threads, 1)) if threads > 1 else 1.0
        total += self.depth_time * tracker.depth * barrier
        return total

    def simulated_time_on_cores(self, tracker: WorkDepthTracker, cores: int) -> float:
        """Simulated time using the paper's cores-to-threads convention."""
        return self.simulated_time(tracker, self.threads_for_cores(cores))

    def self_relative_speedup(self, tracker: WorkDepthTracker, cores: int) -> float:
        """``T_1 / T_cores`` for the recorded profile (Figure 9's y-axis)."""
        t1 = self.simulated_time(tracker, threads=1)
        tp = self.simulated_time_on_cores(tracker, cores)
        if tp <= 0.0:
            raise ArithmeticError("simulated time must be positive")
        return t1 / tp

    def speedup_curve(self, tracker: WorkDepthTracker, cores: list[int]) -> list[float]:
        """Self-relative speedups at each core count (Figure 9 series)."""
        return [self.self_relative_speedup(tracker, c) for c in cores]


#: The machine used in the paper's evaluation (Section 4): four 10-core
#: Intel E7-8870 Xeon processors with two-way hyper-threading.
PAPER_MACHINE = MachineModel()
