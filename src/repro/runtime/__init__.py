"""Work-depth runtime: cost tracking and the simulated multicore machine.

See :mod:`repro.runtime.cost_model` for instrumentation and
:mod:`repro.runtime.machine` for the Brent-bound timing model that
substitutes for the paper's 40-core evaluation machine.
"""

from .cost_model import (
    CategoryCost,
    WorkDepthTracker,
    current_tracker,
    log2ceil,
    ppr_push_work_bound,
    random_walk_work_bound,
    record,
    track,
    truncated_iteration_work_bound,
)
from .machine import DEFAULT_CONTENTION, PAPER_MACHINE, MachineModel
from .timer import Stopwatch, stopwatch, time_call

__all__ = [
    "CategoryCost",
    "WorkDepthTracker",
    "current_tracker",
    "log2ceil",
    "record",
    "track",
    "ppr_push_work_bound",
    "random_walk_work_bound",
    "truncated_iteration_work_bound",
    "DEFAULT_CONTENTION",
    "PAPER_MACHINE",
    "MachineModel",
    "Stopwatch",
    "stopwatch",
    "time_call",
]
