"""Wall-clock timing helpers used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["Stopwatch", "stopwatch", "time_call"]

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates elapsed wall-clock seconds across start/stop cycles."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None


@contextmanager
def stopwatch() -> Iterator[Stopwatch]:
    """Context manager measuring the wall-clock time of its body."""
    watch = Stopwatch()
    watch.start()
    try:
        yield watch
    finally:
        if watch._started_at is not None:
            watch.stop()


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
