"""Work-depth accounting for parallel algorithm analysis.

The paper analyses every algorithm in the *work-depth model* (Section 2):
*work* is the total number of operations (equal to sequential running time)
and *depth* is the length of the longest chain of sequential dependencies.
By Brent's theorem an algorithm with work ``W`` and depth ``D`` runs in
``W/P + D`` time on ``P`` processors.

This module provides the instrumentation half of that model.  Every parallel
primitive in :mod:`repro.prims`, every Ligra operator in :mod:`repro.ligra`
and every algorithm in :mod:`repro.core` calls :func:`record` with the work
and depth it contributes, tagged with a *category* (``"edge_map"``,
``"sort"``, ``"hash"``, ...).  Categories matter because different kinds of
operations saturate a real multicore differently: a batch of scattered
fetch-and-adds contends on memory far more than independent random walks.
The companion :mod:`repro.runtime.machine` module turns a recorded profile
into simulated multicore running times.

Recording is active only inside a :func:`track` context; outside it,
:func:`record` is a no-op, so production use of the library pays only a
cheap context-variable lookup.

Example
-------
>>> from repro.runtime import track, record
>>> with track() as tracker:
...     record(work=100, depth=5, category="scan")
>>> tracker.work
100.0
>>> tracker.depth
5.0
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CategoryCost",
    "CostModel",
    "WorkDepthTracker",
    "track",
    "record",
    "current_tracker",
    "log2ceil",
    "ppr_push_work_bound",
    "truncated_iteration_work_bound",
    "random_walk_work_bound",
]


# ----------------------------------------------------------------------
# A-priori work bounds.  The tracker above measures cost *after* a run;
# these closed forms predict it *before* one, from parameters alone —
# the quantities the engine's cost-aware scheduler packs chunks by.
# ----------------------------------------------------------------------
def ppr_push_work_bound(alpha: float, eps: float) -> float:
    """The paper's O(1/(eps*alpha)) bound on PR-Nibble push work.

    Section 3: the total number of push operations (and the volume of
    vertices touched) of approximate personalized PageRank is at most
    ``1/(eps*alpha)`` — the locality guarantee inherited from
    Andersen-Chung-Lang and Spielman-Teng's analysis.  Deterministic
    heat-kernel pushes obey the analogous ``degree/eps``-style bound, so
    the same form (with the method's effective ``alpha``) ranks them too.
    """
    if alpha <= 0.0 or eps <= 0.0:
        raise ValueError("alpha and eps must be positive")
    return 1.0 / (eps * alpha)


def truncated_iteration_work_bound(iterations: float, eps: float) -> float:
    """Work bound for truncation-thresholded iterative diffusions (Nibble).

    Each of the ``T`` iterations keeps only entries with ``p(v) >= d(v)*eps``,
    so the retained support has volume at most ``1/eps`` and the total work
    is O(T/eps) (Section 3's Nibble analysis).
    """
    if iterations < 1 or eps <= 0.0:
        raise ValueError("iterations must be >= 1 and eps positive")
    return float(iterations) / eps


def random_walk_work_bound(num_walks: float, walk_length: float) -> float:
    """Work bound for Monte-Carlo diffusions: N walks x max length K.

    rand-HK-PR simulates ``N`` independent random walks truncated at ``K``
    steps, for O(N*K) total work (Section 3.4) — independent of eps, which
    is why mixed batches need a method-aware estimate.
    """
    if num_walks < 1 or walk_length < 0:
        raise ValueError("num_walks must be >= 1 and walk_length >= 0")
    return float(num_walks) * max(float(walk_length), 1.0)


def log2ceil(n: float) -> float:
    """Return ``ceil(log2(n))`` for ``n >= 1``, and ``0`` otherwise.

    Used throughout as the depth contribution of an ``N``-element parallel
    primitive (prefix sum, filter, sort), matching the ``O(log N)`` depth
    bounds the paper charges for them.
    """
    if n <= 1:
        return 0.0
    return float(math.ceil(math.log2(n)))


@dataclass
class _Ewma:
    """A sample-count-aware exponentially weighted moving average.

    Early observations use ``1/n`` weighting (a plain running mean) so the
    first few samples aren't dominated by the very first one; once ``n``
    exceeds ``1/alpha`` the estimate tracks recent samples with weight
    ``alpha`` — the usual EWMA regime.
    """

    alpha: float
    value: float = 0.0
    count: int = 0

    def observe(self, sample: float) -> None:
        self.count += 1
        weight = max(self.alpha, 1.0 / self.count)
        self.value += weight * (sample - self.value)


class CostModel:
    """Online calibration of a-priori work bounds against measured seconds.

    The scheduler's closed-form bounds (above) predict *relative* job cost
    from parameters alone, but their constant factors are loose and differ
    per method, and the compiled kernels shift them by 1-2 orders of
    magnitude.  This model learns the true seconds-per-work-unit per
    ``(method, kernel)`` key from completed job outcomes, within and across
    batches in a session.

    Calibrated estimates stay in the *static estimate's units* so they can
    be compared against thresholds expressed in those units (the serving
    plane's ``max_batch_cost``): the correction applied to a raw work bound
    is ``spu(key) / spu_global``, where ``spu(key)`` is the learned
    seconds-per-raw-unit for the key and ``spu_global`` is the learned
    seconds-per-*static-estimate-unit* over all observations.  For a
    homogeneous workload the two cancel and the calibrated estimate equals
    the static one; for a mixed workload the ratios re-rank jobs by their
    measured relative speeds.

    Thread-safe: the serving plane observes outcomes on its event-loop
    thread while a pool session estimates on an executor thread.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._per_key: dict[tuple[str, str], _Ewma] = {}
        self._global = _Ewma(alpha)
        self._lock = threading.Lock()

    def observe(
        self,
        method: str,
        kernel: str,
        units: float,
        seconds: float,
        static: float | None = None,
    ) -> None:
        """Fold one completed job into the model.

        ``units`` is the job's *raw* work bound (no kernel scale) and
        ``seconds`` its measured wall time; ``static`` is the job's static
        estimate (kernel-scaled, floored), used to anchor calibrated
        estimates to static units.  Degenerate samples (non-positive
        units, negative seconds) are ignored rather than poisoning the
        averages.
        """
        if units <= 0.0 or seconds < 0.0:
            return
        with self._lock:
            key = (method, kernel)
            ewma = self._per_key.get(key)
            if ewma is None:
                ewma = self._per_key[key] = _Ewma(self.alpha)
            ewma.observe(seconds / units)
            if static is not None and static > 0.0:
                self._global.observe(seconds / static)

    def calibration_factor(self, method: str, kernel: str | None) -> float | None:
        """Seconds-per-raw-unit for the key, normalised to static units.

        Returns ``None`` until the key has been observed (callers fall back
        to the static estimate), else ``spu(key) / spu_global`` — the
        multiplier that converts the raw work bound into calibrated cost
        expressed in static-estimate units.
        """
        with self._lock:
            ewma = self._per_key.get((method, kernel or "python"))
            if ewma is None or ewma.count == 0:
                return None
            if self._global.count == 0 or self._global.value <= 0.0:
                return None
            return ewma.value / self._global.value

    @property
    def observations(self) -> int:
        """Total samples folded in (across all keys)."""
        with self._lock:
            return sum(e.count for e in self._per_key.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Calibration state for stats surfaces: per-key measured
        seconds-per-raw-work-unit and sample counts."""
        with self._lock:
            return {
                f"{method}/{kernel}": {
                    "seconds_per_unit": ewma.value,
                    "samples": float(ewma.count),
                }
                for (method, kernel), ewma in sorted(self._per_key.items())
            }


@dataclass
class CategoryCost:
    """Accumulated work and depth for one category of operations."""

    work: float = 0.0
    depth: float = 0.0

    def add(self, work: float, depth: float) -> None:
        self.work += work
        self.depth += depth


@dataclass
class WorkDepthTracker:
    """Accumulates a (work, depth) profile for a region of computation.

    Depth accumulates additively: the algorithms in this library are
    bulk-synchronous (a sequence of parallel rounds separated by barriers),
    so the critical path is the sum of the per-round depths.

    Attributes
    ----------
    work:
        Total operations recorded (the paper's ``W``).
    depth:
        Total critical-path length recorded (the paper's ``D``).
    by_category:
        Per-category breakdown, used by
        :class:`repro.runtime.machine.MachineModel` to apply per-category
        memory-contention coefficients.
    rounds:
        Number of parallel rounds (records with nonzero depth); a useful
        proxy for the number of frontier iterations an algorithm executed.
    """

    work: float = 0.0
    depth: float = 0.0
    by_category: dict[str, CategoryCost] = field(default_factory=dict)
    rounds: int = 0

    def record(self, work: float, depth: float = 0.0, category: str = "misc") -> None:
        """Add ``work`` operations with critical path ``depth`` to ``category``."""
        if work < 0 or depth < 0:
            raise ValueError("work and depth must be non-negative")
        self.work += work
        self.depth += depth
        if depth > 0:
            self.rounds += 1
        cost = self.by_category.get(category)
        if cost is None:
            cost = CategoryCost()
            self.by_category[category] = cost
        cost.add(work, depth)

    def merge(self, other: "WorkDepthTracker") -> None:
        """Fold another tracker's profile into this one (sequential composition)."""
        self.work += other.work
        self.depth += other.depth
        self.rounds += other.rounds
        for category, cost in other.by_category.items():
            self.record_category(category, cost.work, cost.depth)

    def record_category(self, category: str, work: float, depth: float) -> None:
        """Merge raw totals into a category without counting a round."""
        self.work += 0.0  # totals were already folded by merge()
        cost = self.by_category.get(category)
        if cost is None:
            cost = CategoryCost()
            self.by_category[category] = cost
        cost.add(work, depth)

    def snapshot(self) -> dict[str, tuple[float, float]]:
        """Return ``{category: (work, depth)}`` for reporting."""
        return {name: (cost.work, cost.depth) for name, cost in self.by_category.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"WorkDepthTracker(work={self.work:.3g}, depth={self.depth:.3g}, "
            f"rounds={self.rounds}, categories={sorted(self.by_category)})"
        )


_CURRENT: ContextVar[WorkDepthTracker | None] = ContextVar("repro_tracker", default=None)


def current_tracker() -> WorkDepthTracker | None:
    """Return the tracker active in this context, or ``None``."""
    return _CURRENT.get()


def record(work: float, depth: float = 0.0, category: str = "misc") -> None:
    """Record cost against the active tracker; no-op when none is active."""
    tracker = _CURRENT.get()
    if tracker is not None:
        tracker.record(work, depth, category)


@contextmanager
def track() -> Iterator[WorkDepthTracker]:
    """Context manager activating a fresh :class:`WorkDepthTracker`.

    Nested ``track()`` regions each see their own tracker; the inner profile
    is *also* folded into the outer tracker on exit, so a caller profiling a
    whole experiment still sees costs recorded inside nested regions.
    """
    outer = _CURRENT.get()
    tracker = WorkDepthTracker()
    token = _CURRENT.set(tracker)
    try:
        yield tracker
    finally:
        _CURRENT.reset(token)
        if outer is not None:
            outer.merge(tracker)
