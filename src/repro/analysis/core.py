"""Framework for the repo's AST-based invariant checker.

The moving parts, smallest first:

* :class:`Finding` — one violation: rule id, file, line, message.
* :class:`Source` — one parsed Python file: the ``ast`` tree, the raw
  lines, and the ``# repro: ignore[rule-id]`` suppressions harvested
  from them.  Suppressions are *per line*: a comment on the reported
  line silences that rule there (``ignore[all]`` silences every rule).
* :class:`Project` — every :class:`Source` under the analyzed paths,
  with lookup helpers for the cross-file rules (a class or function by
  name, wherever it lives).
* :class:`Rule` — the plug-in surface.  A rule declares an ``id`` and a
  ``scope``: ``"file"`` rules get each :class:`Source` in turn,
  ``"project"`` rules get the whole :class:`Project` once and may
  correlate definitions across files (the knob-threading family).
* :func:`analyze` — load, run every rule, apply suppressions, and
  return a :class:`Report` that renders as human lines or JSON.

Files that fail to parse surface as ``syntax-error`` findings rather
than aborting the run; exit-code policy (0 clean / 1 findings / 2
internal error) lives in :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "AnalysisError",
    "Finding",
    "Project",
    "Report",
    "Rule",
    "Source",
    "analyze",
]

_SUPPRESS = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]")

#: Rule id attached to files the checker cannot parse.  Not
#: suppressible (there is no AST to anchor a suppression to).
SYNTAX_RULE = "syntax-error"


class AnalysisError(RuntimeError):
    """A usage-level failure (bad path, unknown rule): exit code 2."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def to_json(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class Source:
    """One parsed Python file plus its per-line suppressions."""

    def __init__(self, path: Path, display: str, text: str) -> None:
        self.path = path
        #: Path as reported in findings — relative to the analyzed root.
        self.display = display
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        self.suppressions = self._parse_suppressions(self.lines)

    @staticmethod
    def _parse_suppressions(lines: Sequence[str]) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for number, line in enumerate(lines, start=1):
            match = _SUPPRESS.search(line)
            if match is not None:
                rules = {part.strip() for part in match.group(1).split(",")}
                table[number] = frozenset(rule for rule in rules if rule)
        return table

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and (rule in rules or "all" in rules)

    def finding(self, rule: str, node: ast.AST | int, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=self.display, line=line, rule=rule, message=message)


class Project:
    """Every successfully parsed source under the analyzed paths."""

    def __init__(self, sources: Iterable[Source]) -> None:
        self.sources = list(sources)
        self._by_display = {source.display: source for source in self.sources}

    def source_for(self, display: str) -> Source | None:
        return self._by_display.get(display)

    def find_class(self, name: str) -> tuple[Source, ast.ClassDef] | None:
        """First module-level class definition called ``name``, if any."""
        for source in self.sources:
            for node in source.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return source, node
        return None

    def find_function(
        self, name: str
    ) -> tuple[Source, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """First module-level function definition called ``name``, if any."""
        for source in self.sources:
            for node in source.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    return source, node
        return None


class Rule:
    """Base class for checks; subclasses override one ``check_*`` hook."""

    id: str = ""
    summary: str = ""
    scope: str = "file"  # "file" or "project"

    def check(self, source: Source) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding]
    files: int
    suppressed: int
    rules: list[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in sorted(self.findings)]
        noun = "file" if self.files == 1 else "files"
        if self.findings:
            count = len(self.findings)
            tail = f"{count} finding{'s' if count != 1 else ''} in {self.files} {noun}"
        else:
            tail = f"clean: {self.files} {noun} checked"
        if self.suppressed:
            tail += f" ({self.suppressed} suppressed)"
        lines.append(tail)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "version": 1,
            "files": self.files,
            "rules": sorted(self.rules),
            "findings": [finding.to_json() for finding in sorted(self.findings)],
            "suppressed": self.suppressed,
        }


def _iter_python_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part == "__pycache__" or part.startswith(".") for part in path.parts):
            continue
        yield path


def load_sources(paths: Sequence[str | Path]) -> tuple[list[Source], list[Finding]]:
    """Read every ``.py`` file under ``paths``; syntax errors → findings."""
    sources: list[Source] = []
    errors: list[Finding] = []
    seen: set[Path] = set()
    for raw in paths:
        given = Path(raw)
        if not given.exists():
            raise AnalysisError(f"path does not exist: {given}")
        if given.is_dir():
            targets = [(path, path.relative_to(given)) for path in _iter_python_files(given)]
            displays = [str(Path(given.name) / rel) for _, rel in targets]
        elif given.suffix == ".py":
            targets = [(given, given)]
            displays = [str(given)]
        else:
            raise AnalysisError(f"not a Python file or directory: {given}")
        for (path, _), display in zip(targets, displays):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            text = path.read_text(encoding="utf-8")
            try:
                sources.append(Source(path, display, text))
            except SyntaxError as error:
                errors.append(
                    Finding(
                        path=display,
                        line=error.lineno or 1,
                        rule=SYNTAX_RULE,
                        message=f"file does not parse: {error.msg}",
                    )
                )
    return sources, errors


def analyze(
    paths: Sequence[str | Path], rules: Sequence[Rule] | None = None
) -> Report:
    """Run ``rules`` (default: the full registry) over ``paths``."""
    if rules is None:
        from . import ALL_RULES

        rules = ALL_RULES
    sources, findings = load_sources(paths)
    project = Project(sources)
    suppressed = 0
    for rule in rules:
        if rule.scope == "project":
            emitted: Iterable[Finding] = rule.check_project(project)
        else:
            emitted = (
                finding for source in sources for finding in rule.check(source)
            )
        for finding in emitted:
            source = project.source_for(finding.path)
            if source is not None and source.suppressed(finding.rule, finding.line):
                suppressed += 1
                continue
            findings.append(finding)
    return Report(
        findings=sorted(findings),
        files=len(sources) + sum(1 for f in findings if f.rule == SYNTAX_RULE),
        suppressed=suppressed,
        rules=[rule.id for rule in rules],
    )
