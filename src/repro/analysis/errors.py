"""Error-surface consistency: every ``RequestError`` names a real field.

Wire replies carry ``{"field": …}`` so clients can point at the exact
request key that failed.  That contract rots silently: rename a knob
and a ``RequestError("old_name", …)`` somewhere keeps compiling while
pointing clients at a field that no longer exists.  This rule collects
the canonical field surface from the file that defines
``ClusterRequest``/``EngineOptions`` (request fields + engine knobs +
the wire envelope keys ``v``/``params``) and checks every literal
``RequestError(field, …)`` call in the project against it.

Dynamic fields are handled conservatively: ``f"params.{name}"`` is
accepted (the ``params.`` namespace is validated per-method at
runtime), and a non-literal expression (``str(name)``) is skipped —
the rule only flags what it can prove wrong.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Project, Rule
from .knobs import _dataclass_fields

__all__ = ["ErrorSurfaceRule"]

#: Wire-envelope keys that are addressable but not dataclass fields.
ENVELOPE_FIELDS = frozenset({"v", "params"})

#: Dotted prefix for per-method parameter errors (validated at runtime).
PARAMS_PREFIX = "params."


class ErrorSurfaceRule(Rule):
    id = "error-surface"
    summary = (
        "RequestError(field, ...) must name a ClusterRequest/EngineOptions "
        "field (or None, or a params.* path)"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        canonical = self._canonical_fields(project)
        if canonical is None:
            return
        for source in project.sources:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if name != "RequestError":
                    continue
                field = self._field_argument(node)
                if field is None:
                    continue
                verdict = self._verdict(field, canonical)
                if verdict is not None:
                    yield source.finding(self.id, node, verdict)

    @staticmethod
    def _canonical_fields(project: Project) -> frozenset[str] | None:
        located = project.find_class("ClusterRequest")
        if located is None:
            return None
        _, request_class = located
        fields = set(_dataclass_fields(request_class))
        options = project.find_class("EngineOptions")
        if options is not None:
            fields |= set(_dataclass_fields(options[1]))
        return frozenset(fields | ENVELOPE_FIELDS)

    @staticmethod
    def _field_argument(node: ast.Call) -> ast.expr | None:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "field":
                return keyword.value
        return None

    @staticmethod
    def _verdict(field: ast.expr, canonical: frozenset[str]) -> str | None:
        if isinstance(field, ast.Constant):
            value = field.value
            if value is None:
                return None
            if not isinstance(value, str):
                return f"RequestError field must be a string or None, not {value!r}"
            if value in canonical or value.startswith(PARAMS_PREFIX):
                return None
            return (
                f"RequestError names field {value!r} which does not exist on "
                "the options surface (known: ClusterRequest/EngineOptions "
                "fields, 'v', 'params', 'params.*')"
            )
        if isinstance(field, ast.JoinedStr) and field.values:
            head = field.values[0]
            if (
                isinstance(head, ast.Constant)
                and isinstance(head.value, str)
                and not head.value.startswith(PARAMS_PREFIX)
                and head.value not in canonical
            ):
                return (
                    f"RequestError f-string field starts with {head.value!r}, "
                    "which is not a canonical field or 'params.' path"
                )
        return None
