"""``repro.analysis`` — the repo's AST-based invariant checker.

The paper's guarantees hold because this codebase enforces contracts
stronger than Python does: bit-identical results across kernels and
backends, every engine knob threaded through all five entry layers,
every OS-level resource paired with a deterministic teardown.  This
package machine-checks those contracts with stdlib-``ast`` rules, so a
violation fails CI instead of waiting for a reviewer to remember it.

Run it as ``repro analyze [paths]``, ``python -m repro.analysis``, or
programmatically:

>>> import pathlib, tempfile
>>> from repro.analysis import analyze
>>> tmp = tempfile.TemporaryDirectory()
>>> hot = pathlib.Path(tmp.name) / "core"
>>> hot.mkdir()
>>> _ = (hot / "bad.py").write_text("import time\\nnow = time.time()\\n")
>>> report = analyze([tmp.name])
>>> [f.rule for f in report.findings]
['wall-clock']
>>> tmp.cleanup()

Suppress a single finding with a trailing ``# repro: ignore[rule-id]``
comment on the flagged line (``ignore[all]`` silences every rule
there).  Rule ids and the invariants behind them are catalogued in
``docs/invariants.md``.
"""

from __future__ import annotations

from .core import (
    AnalysisError,
    Finding,
    Project,
    Report,
    Rule,
    Source,
    analyze,
)
from .determinism import (
    FastMathRule,
    GlobalRandomRule,
    UnorderedIterationRule,
    WallClockRule,
)
from .errors import ErrorSurfaceRule
from .knobs import KnobThreadingRule, WireSchemaRule
from .lifecycle import ResourceLifecycleRule

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "Finding",
    "Project",
    "Report",
    "Rule",
    "Source",
    "analyze",
]

#: The default rule registry, in reporting order.
ALL_RULES: tuple[Rule, ...] = (
    KnobThreadingRule(),
    WireSchemaRule(),
    ResourceLifecycleRule(),
    UnorderedIterationRule(),
    GlobalRandomRule(),
    WallClockRule(),
    FastMathRule(),
    ErrorSurfaceRule(),
)
