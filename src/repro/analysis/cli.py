"""Command-line front end for the invariant checker.

Exit codes follow the linter convention: ``0`` means every analyzed
file is clean, ``1`` means findings were reported, ``2`` means the run
itself failed (bad path, unknown rule id, internal error).  ``--json``
emits the machine-readable report used by tooling; the default output
is one ``path:line: rule-id: message`` line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Sequence

from . import ALL_RULES
from .core import AnalysisError, analyze

__all__ = ["build_parser", "main", "run"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2


def default_paths() -> list[str]:
    """With no paths given, analyze the installed ``repro`` package."""
    return [str(Path(__file__).resolve().parents[1])]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based invariant checker (see docs/invariants.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids and what they check, then exit",
    )
    return parser


def run(
    paths: Sequence[str],
    *,
    as_json: bool = False,
    select: str | None = None,
    list_rules: bool = False,
    stdout: IO[str] | None = None,
    stderr: IO[str] | None = None,
) -> int:
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}: {rule.summary}", file=out)
        return EXIT_CLEAN
    rules = list(ALL_RULES)
    try:
        if select is not None:
            wanted = {part.strip() for part in select.split(",") if part.strip()}
            known = {rule.id for rule in rules}
            unknown = wanted - known
            if unknown:
                raise AnalysisError(
                    f"unknown rule id(s): {', '.join(sorted(unknown))} "
                    f"(known: {', '.join(sorted(known))})"
                )
            rules = [rule for rule in rules if rule.id in wanted]
        report = analyze(list(paths) or default_paths(), rules)
    except AnalysisError as error:
        print(f"repro-analyze: error: {error}", file=err)
        return EXIT_INTERNAL
    except Exception as error:  # pragma: no cover - defensive
        print(f"repro-analyze: internal error: {error!r}", file=err)
        return EXIT_INTERNAL
    if as_json:
        print(json.dumps(report.to_json(), indent=2), file=out)
    else:
        print(report.render(), file=out)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return run(
        args.paths,
        as_json=args.as_json,
        select=args.select,
        list_rules=args.list_rules,
    )
