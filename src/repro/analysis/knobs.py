"""Knob-threading completeness: every engine knob reaches every layer.

The repo's bug history (PRs 4 and 8 both shipped fix-sweeps for
silently-ignored knobs) is one bug class: a field added to
:class:`~repro.core.options.EngineOptions` that one of the five entry
layers never learned about, so the knob is accepted at the edge and
dropped on the floor inside.  These rules read the *definitions* —
the options dataclasses, the ``_ENGINE_KNOBS`` wire tuple, the
``BatchEngine``/``resolve_engine``/``DiffusionService`` signatures and
the argparse flags in ``cli.py`` — and cross-check them, so the gap is
caught at analysis time instead of in a flaky integration test.

Two rule ids:

* ``knob-threading`` — EngineOptions fields vs ``_ENGINE_KNOBS`` vs the
  three callable layers vs the CLI flag set.
* ``wire-schema`` — ClusterRequest fields vs its wire-v1 ``known``
  tuple and ``to_wire`` payload keys.

Both locate their inputs *structurally* (the file that defines
``class EngineOptions``, the one that defines ``build_parser``, …) so
they work unchanged on fixture trees; if a definition is absent from
the analyzed paths, its checks are skipped rather than failed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Project, Rule, Source

__all__ = ["KnobThreadingRule", "WireSchemaRule"]

#: ``resolve_engine``/``DiffusionService`` spell the ``backend`` knob
#: ``engine`` (they accept a live engine object *or* a backend name).
PARAM_ALIASES = {"backend": ("backend", "engine")}

#: Knobs deliberately absent from the CLI: ``backend`` is inferred
#: (``--shards``/``--workers`` imply it), ``parallel`` and
#: ``include_vectors`` are per-call API arguments, not serving flags.
CLI_EXEMPT = frozenset({"backend", "parallel", "include_vectors"})

#: Knobs whose CLI flag is spelled differently from the field name:
#: ``graph_version`` surfaces as ``--at-version`` (``repro cluster
#: --at-version K`` reads as "cluster at version K").  Each entry lists
#: every flag spelling that satisfies the rule.
CLI_ALIASES = {"graph_version": ("graph_version", "at_version")}


def _dataclass_fields(node: ast.ClassDef) -> dict[str, int]:
    """Annotated field names of a dataclass body, with line numbers."""
    fields: dict[str, int] = {}
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            fields[statement.target.id] = statement.lineno
    return fields


def _string_tuple(node: ast.AST) -> tuple[str, ...] | None:
    if isinstance(node, (ast.Tuple, ast.List)) and all(
        isinstance(el, ast.Constant) and isinstance(el.value, str)
        for el in node.elts
    ):
        return tuple(el.value for el in node.elts)
    return None


def _module_assignment(source: Source, name: str) -> tuple[ast.AST, int] | None:
    for statement in source.tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return statement.value, statement.lineno
    return None


def _method(node: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for statement in node.body:
        if isinstance(statement, ast.FunctionDef) and statement.name == name:
            return statement
    return None


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = node.args
    names = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
    return {name for name in names if name != "self"}


def _argparse_flags(source: Source) -> set[str]:
    """Every ``--flag`` registered via ``add_argument``, as knob names."""
    flags: set[str] = set()
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.add(arg.value[2:].replace("-", "_"))
    return flags


def _find_defining_source(
    project: Project, class_name: str
) -> tuple[Source, ast.ClassDef] | None:
    return project.find_class(class_name)


class KnobThreadingRule(Rule):
    id = "knob-threading"
    summary = (
        "every EngineOptions field must be threaded through _ENGINE_KNOBS, "
        "BatchEngine, resolve_engine, DiffusionService and the CLI flags"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        located = _find_defining_source(project, "EngineOptions")
        if located is None:
            return
        options_source, options_class = located
        fields = _dataclass_fields(options_class)

        knobs = _module_assignment(options_source, "_ENGINE_KNOBS")
        if knobs is not None:
            value, lineno = knobs
            names = _string_tuple(value)
            if names is None:
                yield options_source.finding(
                    self.id, lineno, "_ENGINE_KNOBS is not a tuple of field names"
                )
            else:
                for missing in sorted(set(fields) - set(names)):
                    yield options_source.finding(
                        self.id,
                        lineno,
                        f"EngineOptions.{missing} is missing from _ENGINE_KNOBS "
                        "(the wire schema will drop it)",
                    )
                for extra in sorted(set(names) - set(fields)):
                    yield options_source.finding(
                        self.id,
                        lineno,
                        f"_ENGINE_KNOBS names {extra!r} which is not an "
                        "EngineOptions field",
                    )

        yield from self._check_callable_layers(project, fields)
        yield from self._check_cli(project, fields)

    def _check_callable_layers(
        self, project: Project, fields: dict[str, int]
    ) -> Iterator[Finding]:
        layers: list[tuple[Source, ast.FunctionDef | ast.AsyncFunctionDef, str]] = []
        for class_name in ("BatchEngine", "DiffusionService"):
            located = project.find_class(class_name)
            if located is not None:
                source, node = located
                init = _method(node, "__init__")
                if init is not None:
                    layers.append((source, init, f"{class_name}.__init__"))
        resolver = project.find_function("resolve_engine")
        if resolver is not None:
            source, node = resolver
            layers.append((source, node, "resolve_engine"))
        for source, node, label in layers:
            params = _param_names(node)
            for field in sorted(fields):
                accepted = PARAM_ALIASES.get(field, (field,))
                if not any(name in params for name in accepted):
                    yield source.finding(
                        self.id,
                        node.lineno,
                        f"{label} does not accept the EngineOptions knob "
                        f"{field!r} (accepted at the options layer, dropped here)",
                    )

    def _check_cli(
        self, project: Project, fields: dict[str, int]
    ) -> Iterator[Finding]:
        # Several modules may define a `build_parser` (the analyzer has its
        # own); the engine flags may live in any of them, so union the flag
        # sets and anchor findings at the richest parser (the real CLI).
        candidates: list[tuple[Source, ast.AST, set[str]]] = []
        for candidate in project.sources:
            for node in candidate.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "build_parser"
                ):
                    candidates.append((candidate, node, _argparse_flags(candidate)))
                    break
        if not candidates:
            return
        source, node, _ = max(candidates, key=lambda entry: len(entry[2]))
        flags = set().union(*(entry[2] for entry in candidates))
        for field in sorted(fields):
            if field in CLI_EXEMPT:
                continue
            accepted = CLI_ALIASES.get(field, (field,))
            if not any(name in flags for name in accepted):
                spellings = " or ".join(
                    f"--{name.replace('_', '-')}" for name in accepted
                )
                yield source.finding(
                    self.id,
                    node.lineno,
                    f"no {spellings} CLI flag for the "
                    f"EngineOptions knob {field!r}",
                )


class WireSchemaRule(Rule):
    id = "wire-schema"
    summary = (
        "ClusterRequest fields, its from_wire known-set and its to_wire "
        "payload keys must agree (wire schema v1)"
    )
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        located = project.find_class("ClusterRequest")
        if located is None:
            return
        source, node = located
        fields = _dataclass_fields(node)

        from_wire = _method(node, "from_wire")
        if from_wire is not None:
            known = self._known_tuple(from_wire)
            if known is None:
                yield source.finding(
                    self.id,
                    from_wire.lineno,
                    "ClusterRequest.from_wire has no literal `known` tuple",
                )
            else:
                names, lineno = known
                expected = set(fields) | {"v"}
                for missing in sorted(expected - set(names)):
                    yield source.finding(
                        self.id,
                        lineno,
                        f"wire field {missing!r} is not in from_wire's known set "
                        "(strict v1 parses will reject it)",
                    )
                for extra in sorted(set(names) - expected):
                    yield source.finding(
                        self.id,
                        lineno,
                        f"from_wire's known set names {extra!r} which is not a "
                        "ClusterRequest field",
                    )

        to_wire = _method(node, "to_wire")
        if to_wire is not None:
            written = self._written_keys(to_wire)
            for missing in sorted(set(fields) - written):
                yield source.finding(
                    self.id,
                    to_wire.lineno,
                    f"ClusterRequest.{missing} is never written by to_wire "
                    "(the field cannot round-trip)",
                )

    @staticmethod
    def _known_tuple(
        node: ast.FunctionDef,
    ) -> tuple[tuple[str, ...], int] | None:
        for statement in ast.walk(node):
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name) and target.id == "known":
                        names = _string_tuple(statement.value)
                        if names is not None:
                            return names, statement.lineno
        return None

    @staticmethod
    def _written_keys(node: ast.FunctionDef) -> set[str]:
        keys: set[str] = set()
        for statement in ast.walk(node):
            if isinstance(statement, ast.Dict):
                for key in statement.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        keys.add(target.slice.value)
        return keys
