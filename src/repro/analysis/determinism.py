"""Determinism rules: the hot paths must be bit-identical, every run.

The repo's core contract (and the reason its differential harnesses
work at all) is that ``core/``, ``kernels/`` and ``prims/`` produce
bit-identical outcomes across kernels, backends, start methods and
shard counts.  Three things silently break that:

* **unordered-set iteration** — ``for v in {…}`` or ``for v in set(x)``
  visits vertices in hash order, which varies with ``PYTHONHASHSEED``
  (rule ``unordered-iter``);
* **ambient randomness** — module-level ``np.random.*`` / ``random.*``
  draws depend on global state any caller can perturb; diffusions must
  thread an explicit seeded generator (rule ``global-random``);
* **wall-clock reads** — ``time.time()`` and friends inside a hot path
  mean the code can branch on the clock (rule ``wall-clock``).

The fourth rule (``fast-math``) guards the C kernel build: the flags
must never include ``-ffast-math`` / ``-ffp-contract=fast`` (value
dependent reassociation and FMA contraction would detach the C kernel
from its Python twin), and a ``CFLAGS`` list in ``kernels/`` must carry
the explicit ``-ffp-contract=off -fno-fast-math`` pin.

Scope: the first three rules only fire on files living under a
``core/``, ``kernels/`` or ``prims/`` directory; ``fast-math`` fires
everywhere (a sanitizer or build helper could move).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Rule, Source

__all__ = [
    "FastMathRule",
    "GlobalRandomRule",
    "UnorderedIterationRule",
    "WallClockRule",
]

HOT_DIRS = frozenset({"core", "kernels", "prims"})

#: Wall-clock readers on the ``time`` module.
TIME_READS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "localtime",
        "gmtime",
    }
)

DATETIME_READS = frozenset({"now", "utcnow", "today"})

#: Global-state draws on the ``random`` module.
RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "seed",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "vonmisesvariate",
        "triangular",
        "binomialvariate",
    }
)

#: ``np.random`` attributes that are *not* ambient state (explicit
#: generator construction is the sanctioned pattern).
NUMPY_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

FORBIDDEN_CFLAGS = (
    "-ffast-math",
    "-Ofast",
    "-funsafe-math-optimizations",
    "-fassociative-math",
    "-freciprocal-math",
    "-ffp-contract=fast",
)

REQUIRED_CFLAGS = ("-ffp-contract=off", "-fno-fast-math")


def in_hot_path(source: Source) -> bool:
    """True when the file lives under a core/kernels/prims directory."""
    directories = source.display.replace("\\", "/").split("/")[:-1]
    return any(part in HOT_DIRS for part in directories)


class _ImportMap:
    """Which local names refer to the time/random/numpy modules."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}  # local name -> module path
        self.from_names: dict[str, tuple[str, str]] = {}  # name -> (module, attr)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def module_of(self, name: str) -> str | None:
        return self.modules.get(name)

    def from_module(self, name: str) -> tuple[str, str] | None:
        return self.from_names.get(name)


class UnorderedIterationRule(Rule):
    id = "unordered-iter"
    summary = "hot paths must not iterate sets (hash order is not deterministic)"

    def check(self, source: Source) -> Iterator[Finding]:
        if not in_hot_path(source):
            return
        for node in ast.walk(source.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield source.finding(
                        self.id,
                        node,
                        "iterating a set visits elements in hash order; sort "
                        "first (e.g. `for v in sorted(...)`) to keep the hot "
                        "path deterministic",
                    )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )


class GlobalRandomRule(Rule):
    id = "global-random"
    summary = (
        "hot paths must thread an explicit seeded generator, never the "
        "global np.random/random state"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        if not in_hot_path(source):
            return
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                # np.random.<draw>(...)
                base = func.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and imports.module_of(base.value.id) == "numpy"
                    and func.attr not in NUMPY_RANDOM_OK
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"np.random.{func.attr}() draws from global RNG state; "
                        "use np.random.default_rng(seed) / an explicit "
                        "Generator",
                    )
                # random.<draw>(...)
                elif (
                    isinstance(base, ast.Name)
                    and imports.module_of(base.id) == "random"
                    and func.attr in RANDOM_FUNCS
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"random.{func.attr}() draws from global RNG state; "
                        "use random.Random(seed)",
                    )
            elif isinstance(func, ast.Name):
                origin = imports.from_module(func.id)
                if origin is not None:
                    module, attr = origin
                    if module == "random" and attr in RANDOM_FUNCS:
                        yield source.finding(
                            self.id,
                            node,
                            f"{func.id}() (from random) draws from global RNG "
                            "state; use random.Random(seed)",
                        )
                    elif module == "numpy.random" and attr not in NUMPY_RANDOM_OK:
                        yield source.finding(
                            self.id,
                            node,
                            f"{func.id}() (from numpy.random) draws from "
                            "global RNG state; use default_rng(seed)",
                        )


class WallClockRule(Rule):
    id = "wall-clock"
    summary = "hot paths must not read the clock (results could depend on timing)"

    def check(self, source: Source) -> Iterator[Finding]:
        if not in_hot_path(source):
            return
        imports = _ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and imports.module_of(base.id) == "time"
                    and func.attr in TIME_READS
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"time.{func.attr}() read inside a hot path; timing "
                        "belongs in the engine/bench layers",
                    )
                elif func.attr in DATETIME_READS and self._datetime_base(
                    base, imports
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"datetime .{func.attr}() read inside a hot path; "
                        "timing belongs in the engine/bench layers",
                    )
            elif isinstance(func, ast.Name):
                origin = imports.from_module(func.id)
                if origin == ("time", func.id) and func.id in TIME_READS:
                    yield source.finding(
                        self.id,
                        node,
                        f"{func.id}() (from time) read inside a hot path; "
                        "timing belongs in the engine/bench layers",
                    )

    @staticmethod
    def _datetime_base(base: ast.expr, imports: _ImportMap) -> bool:
        # datetime.now() via `from datetime import datetime/date`
        if isinstance(base, ast.Name):
            origin = imports.from_module(base.id)
            return origin is not None and origin[0] == "datetime"
        # datetime.datetime.now() via `import datetime`
        return (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and imports.module_of(base.value.id) == "datetime"
        )


class FastMathRule(Rule):
    id = "fast-math"
    summary = (
        "C kernel builds must pin strict IEEE-754 semantics "
        "(-ffp-contract=off -fno-fast-math; never -ffast-math)"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        # The checker's own rule tables must name the forbidden flags;
        # exempt files under an analysis/ directory from the string scan.
        if "analysis" in source.display.replace("\\", "/").split("/")[:-1]:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                elements = node.elts
            elif isinstance(node, ast.Call):
                elements = [*node.args, *(kw.value for kw in node.keywords)]
            else:
                continue
            for element in elements:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    continue
                for flag in FORBIDDEN_CFLAGS:
                    if flag in element.value.split() or element.value == flag:
                        yield source.finding(
                            self.id,
                            element,
                            f"build flag {flag!r} breaks bit-identity with the "
                            "Python twin kernels (value-changing FP "
                            "optimisations); strict IEEE-754 only",
                        )
        yield from self._check_cflags_pin(source)

    def _check_cflags_pin(self, source: Source) -> Iterator[Finding]:
        if not in_hot_path(source):
            return
        for statement in source.tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                if not (isinstance(target, ast.Name) and target.id == "CFLAGS"):
                    continue
                if not isinstance(statement.value, (ast.List, ast.Tuple)):
                    continue
                flags = {
                    el.value
                    for el in statement.value.elts
                    if isinstance(el, ast.Constant) and isinstance(el.value, str)
                }
                for required in REQUIRED_CFLAGS:
                    if required not in flags:
                        yield source.finding(
                            self.id,
                            statement,
                            f"CFLAGS is missing the determinism pin "
                            f"{required!r} (the C kernel must match the "
                            "Python twin bit for bit)",
                        )
