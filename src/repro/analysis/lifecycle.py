"""Resource lifecycle: every shared resource has a teardown on all paths.

The resources this repo creates — ``SharedMemory`` segments, worker
``Pool``\\ s, executor sessions, sharded graph views — outlive a garbage
collection (OS-level segments, child processes), so "the GC will get
it" is a leak.  PR 8's shm leak audit and the spawn-leg ``/dev/shm``
check catch leaks *dynamically* when a test happens to exercise the
path; this rule demands the *syntactic* evidence that the teardown runs
on every path.

For each creation of a tracked resource the rule accepts, in the
enclosing scope, any one of:

* the creation is the context expression of a ``with`` statement (or
  the bound name is later used as one);
* the bound name receives a teardown call (``close``/``unlink``/
  ``terminate``/``shutdown``/``stop``/``join``/``cancel``/``detach``/
  ``release``) inside a ``finally`` or ``except`` block;
* the value is returned or yielded (ownership transfers to the caller);
* the value is assigned to an attribute (``self._pool = …`` — the owning
  object's ``close`` is responsible, and gets its own audit);
* the bound name is passed as an argument to another call
  (``atexit.register(seg.unlink)``, ``cls(segment, …)`` — registered or
  transferred).

A creation whose result is discarded, or bound to a local with none of
the above, is flagged.  A straight-line ``pool.close()`` with no
``try``/``finally`` is *not* evidence — an exception between creation
and close leaks, which is exactly the bug class this rule exists for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Finding, Rule, Source

__all__ = ["ResourceLifecycleRule"]

#: Constructor / factory names whose results own an OS-level resource.
CREATOR_NAMES = frozenset(
    {
        "SharedMemory",
        "Pool",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "open_session",
        "share",
        "ShardedGraphView",
    }
)

#: ``Class.create(...)`` factories (qualified, to keep ``create`` narrow).
CREATOR_QUALIFIED = frozenset(
    {("SharedCSR", "create"), ("ShardedCSR", "create")}
)

TEARDOWN_METHODS = frozenset(
    {
        "close",
        "unlink",
        "terminate",
        "shutdown",
        "stop",
        "join",
        "cancel",
        "detach",
        "release",
    }
)


def _is_creator(call: ast.Call) -> str | None:
    """The resource label if ``call`` constructs a tracked resource."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in CREATOR_NAMES:
        return func.id
    if isinstance(func, ast.Attribute):
        if func.attr in CREATOR_NAMES:
            return func.attr
        if (
            isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in CREATOR_QUALIFIED
        ):
            return f"{func.value.id}.{func.attr}"
    return None


class _ScopeCollector(ast.NodeVisitor):
    """All function scopes in a module, each with nesting preserved."""

    def __init__(self) -> None:
        self.scopes: list[ast.AST] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scopes.append(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.scopes.append(node)
        self.generic_visit(node)


def _statements(scope: ast.AST) -> list[ast.stmt]:
    """Statements of ``scope``, not descending into nested functions."""
    seen: list[ast.stmt] = []
    stack = list(getattr(scope, "body", []))
    while stack:
        statement = stack.pop()
        seen.append(statement)
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.stmt):
                stack.append(child)
            elif isinstance(child, ast.ExceptHandler):
                stack.extend(child.body)
    return seen


class _ScopeAudit:
    """Evidence tables for one function (or module) scope."""

    def __init__(self, scope: ast.AST) -> None:
        self.statements = _statements(scope)
        self.with_names: set[str] = set()
        self.cleanup_calls: set[str] = set()  # names torn down in finally/except
        self.escaped: set[str] = set()  # returned / yielded / arg / attr-assigned
        self._collect()

    def _collect(self) -> None:
        for statement in self.statements:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name):
                        self.with_names.add(expr.id)
            if isinstance(statement, ast.Try):
                for block in (statement.finalbody, statement.handlers):
                    for entry in block:
                        body = (
                            entry.body
                            if isinstance(entry, ast.ExceptHandler)
                            else [entry]
                        )
                        for node in body:
                            self._collect_teardowns(node)
            value = None
            if isinstance(statement, ast.Return):
                value = statement.value
            elif isinstance(statement, ast.Expr) and isinstance(
                statement.value, (ast.Yield, ast.YieldFrom)
            ):
                # a bare `obj.method()` Expr is *not* an escape; only the
                # value leaving through yield / yield from is
                value = statement.value.value
            if value is not None:
                # same func-chain carve-out as call arguments below:
                # `return session` transfers, `return session.run(jobs)`
                # only *uses* the session and still owes a teardown
                self._collect_transfers(value)
            if isinstance(statement, ast.Assign):
                targets_attr = any(
                    isinstance(t, ast.Attribute)
                    or (
                        isinstance(t, (ast.Tuple, ast.List))
                        and any(isinstance(e, ast.Attribute) for e in t.elts)
                    )
                    for t in statement.targets
                )
                if targets_attr and isinstance(statement.value, ast.Name):
                    self.escaped.add(statement.value.id)
        # names handed to any call (registered, wrapped, transferred) —
        # but only as argument *values*: `register(seg)`, `cls(seg.close)`.
        # A name reached through a call's func chain (`seg.run(jobs)`) is
        # the resource being *used*, not handed off, and is no evidence.
        for statement in self.statements:
            for node in ast.walk(statement):
                if isinstance(node, ast.Call):
                    for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                        self._collect_transfers(arg)

    def _collect_transfers(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                self._collect_transfers(arg)
            return  # skip node.func: using a method is not a transfer
        if isinstance(node, ast.Name):
            self.escaped.add(node.id)
        for child in ast.iter_child_nodes(node):
            self._collect_transfers(child)

    def _collect_teardowns(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in TEARDOWN_METHODS
                and isinstance(child.func.value, ast.Name)
            ):
                self.cleanup_calls.add(child.func.value.id)

    def managed(self, name: str) -> bool:
        return (
            name in self.with_names
            or name in self.cleanup_calls
            or name in self.escaped
        )


class ResourceLifecycleRule(Rule):
    id = "resource-lifecycle"
    summary = (
        "SharedMemory/Pool/session/view creations need a with block, a "
        "try/finally teardown, or an ownership transfer"
    )

    def check(self, source: Source) -> Iterator[Finding]:
        collector = _ScopeCollector()
        collector.visit(source.tree)
        for scope in [source.tree, *collector.scopes]:
            yield from self._check_scope(source, scope)

    def _check_scope(self, source: Source, scope: ast.AST) -> Iterator[Finding]:
        audit = _ScopeAudit(scope)
        for statement in audit.statements:
            # with SharedMemory(...) as seg: / with graph.share() as shared:
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Call
            ):
                label = _is_creator(statement.value)
                if label is not None:
                    yield source.finding(
                        self.id,
                        statement,
                        f"{label}(...) result is discarded — the resource can "
                        "never be torn down",
                    )
            if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                value = statement.value
                if not isinstance(value, ast.Call):
                    continue
                label = _is_creator(value)
                if label is None:
                    continue
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and not audit.managed(
                        target.id
                    ):
                        yield source.finding(
                            self.id,
                            statement,
                            f"{label}(...) bound to {target.id!r} has no "
                            "with/try-finally teardown and never escapes "
                            "this scope",
                        )

    # `with` context expressions that *are* creator calls never reach the
    # Assign/Expr branches above, so they are accepted implicitly.
