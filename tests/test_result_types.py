"""Tests for the result containers (repro.core.result)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import ClusterResult, DiffusionResult, SweepResult, vector_items
from repro.prims import SparseDict, SparseVector


class TestVectorItems:
    def test_from_plain_dict(self):
        keys, values = vector_items({3: 1.0, 1: 2.0})
        assert dict(zip(keys.tolist(), values.tolist())) == {3: 1.0, 1: 2.0}

    def test_from_sparse_dict(self):
        keys, values = vector_items(SparseDict({5: 0.5}))
        assert keys.tolist() == [5]
        assert values.tolist() == [0.5]

    def test_from_sparse_vector(self):
        vector = SparseVector.from_dict({7: 1.5, 9: 2.5})
        keys, values = vector_items(vector)
        assert dict(zip(keys.tolist(), values.tolist())) == {7: 1.5, 9: 2.5}

    def test_empty_dict(self):
        keys, values = vector_items({})
        assert len(keys) == 0 and len(values) == 0

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            vector_items([1, 2, 3])


class TestDiffusionResult:
    def test_support_size(self):
        result = DiffusionResult(
            vector=SparseDict({1: 1.0, 2: 2.0}), iterations=3, pushes=5, touched_edges=7
        )
        assert result.support_size() == 2
        assert result.extras == {}


class TestSweepResult:
    @pytest.fixture
    def sweep(self):
        return SweepResult(
            order=np.array([4, 2, 9]),
            conductances=np.array([0.5, 0.2, 0.9]),
            volumes=np.array([2, 5, 11]),
            cuts=np.array([1, 1, 9]),
            best_index=1,
        )

    def test_best_cluster(self, sweep):
        assert sweep.best_cluster.tolist() == [4, 2]
        assert sweep.best_conductance == pytest.approx(0.2)
        assert sweep.num_candidates == 3

    def test_str(self, sweep):
        assert "|S*|=2" in str(sweep)


class TestClusterResult:
    def test_str_and_size(self):
        diffusion = DiffusionResult(
            vector=SparseDict({1: 1.0}), iterations=2, pushes=2, touched_edges=4
        )
        sweep = SweepResult(
            order=np.array([1]),
            conductances=np.array([0.3]),
            volumes=np.array([2]),
            cuts=np.array([1]),
            best_index=0,
        )
        result = ClusterResult(
            cluster=np.array([1]),
            conductance=0.3,
            algorithm="pr-nibble",
            params={"alpha": 0.01},
            diffusion=diffusion,
            sweep=sweep,
        )
        assert result.size == 1
        assert "pr-nibble" in str(result)
