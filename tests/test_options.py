"""Tests for the unified options layer (repro.core.options).

The load-bearing properties: one validation path attributes every failure
to the canonical field name (RequestError is still a ValueError, so the
historical except-clauses keep working); the wire schema round-trips
verbatim and rejects unknown fields under ``"v": 1``; EngineOptions
carries the whole knob surface with the engine's historical conflict
messages; and ``options=`` composes with — but never silently overrides —
the loose kwargs on BatchEngine/resolve_engine/cluster_many/
DiffusionService/local_cluster.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache import keys as cache_keys
from repro.core import cluster_many, local_cluster
from repro.core.options import (
    PRIORITIES,
    ClusterRequest,
    EngineOptions,
    RequestError,
    canonical_params,
    validate_params,
)
from repro.engine import BatchEngine, DiffusionJob
from repro.engine.executor import resolve_engine
from repro.graph import barbell_graph, planted_partition


@pytest.fixture(scope="module")
def graph():
    return planted_partition(200, 4, intra_degree=8.0, inter_degree=1.0, seed=3)


class TestRequestError:
    def test_is_a_value_error_with_field_and_code(self):
        error = RequestError("params.alpha", "alpha must be in (0, 1)")
        assert isinstance(error, ValueError)
        assert error.field == "params.alpha"
        assert error.code == 400
        assert str(error) == "alpha must be in (0, 1)"
        assert error.to_wire() == {
            "message": "alpha must be in (0, 1)",
            "code": 400,
            "field": "params.alpha",
        }

    def test_fieldless_errors_omit_the_field(self):
        wire = RequestError(None, "queue full", code=429).to_wire()
        assert wire == {"message": "queue full", "code": 429}


class TestValidateParams:
    def test_unknown_method_names_the_method_field(self):
        with pytest.raises(RequestError, match="unknown method") as info:
            validate_params("page-rank", {})
        assert info.value.field == "method"

    def test_unknown_parameter_named_canonically(self):
        with pytest.raises(RequestError, match="invalid pr-nibble parameter 'epsilon'") as info:
            validate_params("pr-nibble", {"epsilon": 1e-4})
        assert info.value.field == "params.epsilon"
        assert "choose from" in str(info.value)

    def test_bad_value_attributed_to_its_own_field(self):
        with pytest.raises(RequestError) as info:
            validate_params("pr-nibble", {"alpha": 0.05, "eps": 2.0})
        assert info.value.field == "params.eps"

    def test_valid_params_return_the_dataclass(self):
        params = validate_params("pr-nibble", {"alpha": 0.05})
        assert params.alpha == 0.05

    def test_canonical_params_shared_with_cache_keys(self):
        # One canonicaliser: the cache module re-exports this function, so
        # the wire schema and the cache key cannot disagree about identity.
        assert cache_keys.canonical_params is canonical_params
        assert canonical_params("hk-pr", {"t": 4}) == canonical_params(
            "hk-pr", {"t": 4.0}
        )
        filled = dict(canonical_params("pr-nibble", {}))
        assert "eps" in filled and "alpha" in filled


class TestClusterRequestWire:
    def test_round_trip_is_identity(self):
        request = ClusterRequest.make(
            [5, 3], method="hk-pr", params={"t": 4.0}, rng=7,
            priority="bulk", kernel="auto", include_cluster=True, id="q-1",
        )
        assert ClusterRequest.from_wire(request.to_wire()) == request

    def test_wire_payload_is_versioned_and_minimal(self):
        wire = ClusterRequest.make(5).to_wire()
        assert wire == {
            "v": 1,
            "seeds": [5],
            "method": "pr-nibble",
            "params": {},
            "rng": 0,
            "priority": "interactive",
        }

    def test_v1_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="unknown field 'bogus'") as info:
            ClusterRequest.from_wire({"v": 1, "seeds": [1], "bogus": 3})
        assert info.value.field == "bogus"

    def test_legacy_payloads_ignore_unknown_fields(self):
        request = ClusterRequest.from_wire({"seeds": 1, "bogus": 3})
        assert request.seeds == (1,)

    def test_graph_version_round_trips_and_is_lenient_when_absent(self):
        # The evolving-plane extension rides wire v1 leniently: absent
        # means "the current version" (so pre-extension clients keep
        # working against pre-extension servers and vice versa), present
        # round-trips exactly, and None is never written.
        request = ClusterRequest.make(5, graph_version=3)
        wire = request.to_wire()
        assert wire["graph_version"] == 3
        assert ClusterRequest.from_wire(wire) == request
        unversioned = ClusterRequest.make(5).to_wire()
        assert "graph_version" not in unversioned
        assert ClusterRequest.from_wire(unversioned).graph_version is None

    def test_graph_version_must_be_a_nonnegative_integer(self):
        for bad in (-1, 1.5, "2", True):
            with pytest.raises(RequestError, match="graph_version") as info:
                ClusterRequest.from_wire({"v": 1, "seeds": [5], "graph_version": bad})
            assert info.value.field == "graph_version"
        with pytest.raises(RequestError, match="graph_version"):
            EngineOptions(graph_version=-2).validate()

    def test_unsupported_version_rejected(self):
        with pytest.raises(RequestError, match="unsupported wire version"):
            ClusterRequest.from_wire({"v": 2, "seeds": [1]})

    def test_missing_seeds_and_type_errors_name_their_field(self):
        for payload, field in (
            ({"v": 1}, "seeds"),
            ({"seeds": [1], "method": 7}, "method"),
            ({"seeds": [1], "params": [1]}, "params"),
            ({"seeds": [1], "rng": "x"}, "rng"),
            ({"seeds": [1], "rng": True}, "rng"),
            ({"seeds": [1], "priority": 3}, "priority"),
            ({"seeds": [1], "kernel": 3}, "kernel"),
            ({"seeds": [1], "include_cluster": "yes"}, "include_cluster"),
            ({"seeds": "zero"}, "seeds"),
            ({"seeds": []}, "seeds"),
        ):
            with pytest.raises(RequestError) as info:
                ClusterRequest.from_wire(payload)
            assert info.value.field == field, payload
        with pytest.raises(RequestError, match="JSON object"):
            ClusterRequest.from_wire([1, 2])

    def test_scalar_and_array_seeds_normalise(self):
        assert ClusterRequest.make(np.int64(4)).seeds == (4,)
        assert ClusterRequest.make(np.array([4, 2])).seeds == (4, 2)


class TestClusterRequestSemantics:
    def test_validate_names_each_offending_field(self, graph):
        cases = [
            (ClusterRequest.make(0, method="page-rank"), "method"),
            (ClusterRequest.make(0, params={"alpha": 5.0}), "params.alpha"),
            (ClusterRequest.make(0, priority="urgent"), "priority"),
            (ClusterRequest.make(0, kernel="fortran"), "kernel"),
            (ClusterRequest.make(10**6), "seeds"),
        ]
        for request, field in cases:
            with pytest.raises(RequestError) as info:
                request.validate(num_vertices=graph.num_vertices)
            assert info.value.field == field

    def test_priorities_canonical_home(self):
        from repro.serve import PRIORITIES as serve_priorities

        assert PRIORITIES == ("interactive", "bulk")
        assert serve_priorities is PRIORITIES

    def test_job_round_trip(self):
        request = ClusterRequest.make(3, method="hk-pr", params={"t": 4.0}, rng=9)
        job = request.job()
        assert isinstance(job, DiffusionJob)
        assert ClusterRequest.from_job(job, priority="bulk") == ClusterRequest.make(
            3, method="hk-pr", params={"t": 4.0}, rng=9, priority="bulk"
        )


class TestEngineOptions:
    def test_backend_inference_matches_engine(self):
        assert EngineOptions().resolved_backend() == "serial"
        assert EngineOptions(workers=1).resolved_backend() == "serial"
        assert EngineOptions(workers=2).resolved_backend() == "process"
        assert EngineOptions(shards=4).resolved_backend() == "sharded"

    def test_validate_keeps_the_engine_conflict_messages(self):
        with pytest.raises(ValueError, match="only apply to the sharded backend"):
            EngineOptions(max_resident_shards=2).validate()
        with pytest.raises(ValueError, match="sharded backend is in-process"):
            EngineOptions(shards=4, workers=2).validate()
        with pytest.raises(ValueError, match="unknown backend"):
            EngineOptions(backend="cluster").validate()
        with pytest.raises(ValueError, match="unknown schedule"):
            EngineOptions(workers=2, schedule="lifo").validate()
        with pytest.raises(ValueError, match="unknown kernel"):
            EngineOptions(kernel="fortran").validate()

    def test_wire_round_trip(self):
        options = EngineOptions(workers=4, schedule="fifo", kernel="auto", shards=None)
        wire = options.to_wire()
        assert wire["v"] == 1 and wire["workers"] == 4
        assert EngineOptions.from_wire(wire) == options

    def test_wire_rejects_unknown_options_and_live_caches(self):
        with pytest.raises(RequestError, match="unknown engine option") as info:
            EngineOptions.from_wire({"v": 1, "worker": 4})
        assert info.value.field == "worker"
        from repro.cache import ResultCache

        with pytest.raises(RequestError, match="directory path"):
            EngineOptions(cache=ResultCache()).to_wire()
        assert EngineOptions(cache=True).to_wire()["cache"] is True


class TestOptionsThreadedThroughTheStack:
    def test_engine_accepts_options(self, graph):
        engine = BatchEngine(graph, options=EngineOptions(include_vectors=False))
        assert engine.include_vectors is False and engine.parallel is True
        outcome = engine.run([DiffusionJob.make(0, params={"eps": 1e-4})])[0]
        assert outcome.support_size > 0

    def test_engine_rejects_loose_conflicts(self, graph):
        options = EngineOptions(workers=2)
        for loose in (
            {"workers": 2},
            {"parallel": False},
            {"cache": True},
            {"kernel": "auto"},
            {"backend": "process"},
        ):
            with pytest.raises(ValueError, match="silently ignored") as info:
                BatchEngine(graph, options=options, **loose)
            assert next(iter(loose)) in str(info.value)

    def test_resolve_engine_rejects_options_on_a_prebuilt_engine(self, graph):
        engine = BatchEngine(graph)
        with pytest.raises(ValueError, match="already constructed.*options"):
            resolve_engine(graph, engine, options=EngineOptions())

    def test_cluster_many_accepts_options(self, graph):
        loose = cluster_many(graph, [0, 50], eps=1e-4)
        via_options = cluster_many(
            graph, [0, 50], options=EngineOptions(), eps=1e-4
        )
        for a, b in zip(loose, via_options):
            assert np.array_equal(a.cluster, b.cluster)
            assert a.conductance == b.conductance
        with pytest.raises(ValueError, match="silently ignored"):
            cluster_many(graph, [0], options=EngineOptions(), workers=2, eps=1e-4)

    def test_service_accepts_options_and_rejects_conflicts(self, graph):
        from repro.serve import DiffusionService

        async def scenario():
            async with DiffusionService(
                graph, options=EngineOptions(include_vectors=False)
            ) as service:
                assert service.engine.include_vectors is False
                outcome = await service.submit_query(0, eps=1e-4)
                return outcome.size

        assert asyncio.run(scenario()) > 0
        with pytest.raises(ValueError, match="silently ignored"):
            DiffusionService(graph, options=EngineOptions(), workers=2)

    def test_local_cluster_accepts_a_request(self, graph):
        request = ClusterRequest.make(0, method="pr-nibble", params={"eps": 1e-4})
        from_request = local_cluster(graph, request)
        loose = local_cluster(graph, 0, method="pr-nibble", eps=1e-4)
        assert np.array_equal(from_request.cluster, loose.cluster)
        assert from_request.conductance == loose.conductance

    def test_local_cluster_rejects_loose_knobs_next_to_a_request(self, graph):
        request = ClusterRequest.make(0, params={"eps": 1e-4})
        with pytest.raises(ValueError, match="silently ignored"):
            local_cluster(graph, request, method="hk-pr")
        with pytest.raises(ValueError, match="silently ignored"):
            local_cluster(graph, request, eps=1e-5)

    def test_local_cluster_validates_the_request(self):
        tiny = barbell_graph(4)
        with pytest.raises(RequestError, match="out of range"):
            local_cluster(tiny, ClusterRequest.make(500))
