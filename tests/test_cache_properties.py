"""Property tests (hypothesis) for graph fingerprints.

The cache's correctness rests on the fingerprint being a faithful content
address: invariant under every lossless serialisation round-trip in
:mod:`repro.graph.io`, and different whenever any edge changes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, from_edge_arrays
from repro.graph.builder import edge_arrays_of
from repro.graph.io import (
    load_npz,
    read_adjacency_graph,
    read_edge_list,
    save_npz,
    write_adjacency_graph,
    write_edge_list,
)

MAX_VERTICES = 24


@st.composite
def graphs(draw, min_edges=0):
    """A small simple undirected graph from an arbitrary edge list."""
    n = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    vertex = st.integers(min_value=0, max_value=n - 1)
    edges = draw(
        st.lists(st.tuples(vertex, vertex), min_size=min_edges, max_size=60).filter(
            lambda pairs: sum(u != v for u, v in pairs) >= min_edges
        )
    )
    sources = np.asarray([u for u, _ in edges], dtype=np.int64)
    targets = np.asarray([v for _, v in edges], dtype=np.int64)
    return from_edge_arrays(sources, targets, num_vertices=n)


@given(graphs())
def test_fingerprint_deterministic_across_rebuilds(graph):
    rebuilt = CSRGraph(graph.offsets.copy(), graph.neighbors.copy())
    assert rebuilt.fingerprint() == graph.fingerprint()


@settings(max_examples=25)
@given(graph=graphs())
def test_fingerprint_invariant_under_io_round_trips(tmp_path_factory, graph):
    directory = tmp_path_factory.mktemp("roundtrip")
    reference = graph.fingerprint()

    save_npz(graph, directory / "g.npz")
    assert load_npz(directory / "g.npz").fingerprint() == reference

    write_adjacency_graph(graph, directory / "g.adj")
    assert read_adjacency_graph(directory / "g.adj").fingerprint() == reference

    write_edge_list(graph, directory / "g.txt")
    loaded = read_edge_list(directory / "g.txt", num_vertices=graph.num_vertices)
    assert loaded.fingerprint() == reference


@given(graphs(min_edges=1), st.data())
def test_fingerprint_changes_when_an_edge_is_removed(graph, data):
    sources, targets = edge_arrays_of(graph)
    drop = data.draw(st.integers(min_value=0, max_value=len(sources) - 1))
    keep = np.ones(len(sources), dtype=bool)
    keep[drop] = False
    smaller = from_edge_arrays(
        sources[keep], targets[keep], num_vertices=graph.num_vertices
    )
    assert smaller.fingerprint() != graph.fingerprint()


@given(graphs(), st.data())
def test_fingerprint_changes_when_an_edge_is_added(graph, data):
    n = graph.num_vertices
    sources, targets = edge_arrays_of(graph)
    present = set(zip(sources.tolist(), targets.tolist()))
    absent = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u, v) not in present
    ]
    assume(absent)  # complete graphs have nothing to add
    u, v = absent[data.draw(st.integers(min_value=0, max_value=len(absent) - 1))]
    bigger = from_edge_arrays(
        np.append(sources, u), np.append(targets, v), num_vertices=n
    )
    assert bigger.fingerprint() != graph.fingerprint()


@given(graphs(min_edges=1))
def test_fingerprint_sensitive_to_weights_if_present(graph):
    # CSRGraph is unweighted today; the fingerprint is nevertheless
    # specified to fold in a ``weights`` array should one be attached, so
    # a future weighted variant cannot silently alias unweighted entries.
    class Weighted(CSRGraph):
        __slots__ = ("weights",)

    weighted = Weighted(graph.offsets, graph.neighbors)
    weighted.weights = np.ones(len(graph.neighbors), dtype=np.float64)
    reweighted = Weighted(graph.offsets, graph.neighbors)
    reweighted.weights = np.full(len(graph.neighbors), 2.0)
    assert weighted.fingerprint() != graph.fingerprint()
    assert weighted.fingerprint() != reweighted.fingerprint()


# ----------------------------------------------------------------------
# Version identity: the evolving plane's cache reuse rests on the
# fingerprint depending only on the resulting edge set — never on the
# update path (batch order, batch grouping, splice vs rebuild) that
# materialised it.

def update_edges_for(graph, min_size=1):
    """Update pairs bounded by ``graph``'s vertex set (no self-loops)."""
    n = graph.num_vertices
    return st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
            lambda pair: pair[0] != pair[1]
        ),
        min_size=min_size,
        max_size=8,
        unique_by=lambda pair: tuple(sorted(pair)),
    )


@given(graph=graphs(), data=st.data())
def test_splice_and_rebuild_share_version_identity(graph, data):
    from repro.graph import apply_updates

    insertions = data.draw(update_edges_for(graph))
    spliced = apply_updates(graph, insertions, rebuild_threshold=1.0)
    rebuilt = apply_updates(graph, insertions, rebuild_threshold=0.0)
    assert np.array_equal(spliced.graph.offsets, rebuilt.graph.offsets)
    assert np.array_equal(spliced.graph.neighbors, rebuilt.graph.neighbors)
    assert spliced.fingerprint() == rebuilt.fingerprint()


@given(graph=graphs(), data=st.data())
def test_batch_grouping_and_order_do_not_change_version_identity(graph, data):
    from repro.graph import EvolvingGraph

    insertions = data.draw(update_edges_for(graph))
    one_batch = EvolvingGraph(graph)
    one_batch.apply_updates(insertions=insertions)

    split = data.draw(st.integers(0, len(insertions)))
    reordered = data.draw(st.permutations(insertions))
    two_batches = EvolvingGraph(graph)
    if reordered[:split]:
        two_batches.apply_updates(insertions=reordered[:split])
    if reordered[split:]:
        two_batches.apply_updates(insertions=reordered[split:])

    assert (
        one_batch.latest.fingerprint() == two_batches.latest.fingerprint()
    ), "same edge set, different update path: version identity must agree"


@given(graph=graphs(min_edges=3))
def test_delete_then_reinsert_restores_version_identity(graph):
    from repro.graph import EvolvingGraph
    from repro.graph.builder import edge_arrays_of as arrays_of

    sources, targets = arrays_of(graph)
    edge = (int(sources[0]), int(targets[0]))
    chain = EvolvingGraph(graph)
    chain.apply_updates(deletions=[edge])
    chain.apply_updates(insertions=[edge])
    assert chain.latest.fingerprint() == chain.at(0).fingerprint()
    assert chain.at(1).fingerprint() != chain.at(0).fingerprint()


def test_differently_materialised_versions_share_cache_entries():
    # The payoff of path-independent identity: an entry computed against
    # a *spliced* version is served to an engine holding the *rebuilt*
    # materialisation of the same edge set — one cache, no recompute.
    from repro.cache import ResultCache
    from repro.engine import BatchEngine, DiffusionJob
    from repro.graph import apply_updates, cycle_graph

    base = cycle_graph(40)
    spliced = apply_updates(base, insertions=[(0, 9)], rebuild_threshold=1.0)
    rebuilt = apply_updates(base, insertions=[(0, 9)], rebuild_threshold=0.0)
    cache = ResultCache()
    job = DiffusionJob.make(0, params={"alpha": 0.1, "eps": 1e-3})
    (cold,) = BatchEngine(spliced.graph, cache=cache, include_vectors=True).run([job])
    assert not cold.cached
    (hit,) = BatchEngine(rebuilt.graph, cache=cache, include_vectors=True).run([job])
    assert hit.cached
    assert np.array_equal(hit.vector_keys, cold.vector_keys)
