"""Tests for the shared-memory graph plane (repro.graph.shared).

The contract under test: ``share()`` exports the CSR arrays into named
segments, ``attach()`` rebuilds a content-identical read-only graph from
the picklable handle (in this process or any other), and teardown is
deterministic — unlink removes every segment, is idempotent, and an
``atexit`` guard covers abandoned owners.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.graph import CSRGraph, SharedCSR, SharedCSRHandle, barbell_graph, rand_local
from repro.graph.shared import _LIVE, SEGMENT_PREFIX


def shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX host
        pytest.skip("no /dev/shm to audit on this platform")
    return [f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)]


class TestRoundTrip:
    def test_attach_reproduces_graph_exactly(self):
        graph = rand_local(400, seed=7)
        with graph.share() as shared:
            attached = CSRGraph.attach(shared.handle())
            try:
                assert np.array_equal(attached.graph.offsets, graph.offsets)
                assert np.array_equal(attached.graph.neighbors, graph.neighbors)
                assert attached.graph.fingerprint() == graph.fingerprint()
                assert attached.graph.num_vertices == graph.num_vertices
                assert attached.graph.num_edges == graph.num_edges
            finally:
                attached.close()

    def test_attached_graph_supports_bulk_operations(self):
        graph = barbell_graph(8)
        with graph.share() as shared:
            with CSRGraph.attach(shared.handle()) as attached:
                view = attached.graph
                assert np.array_equal(view.degrees(), graph.degrees())
                sources, targets = view.gather_edges(np.arange(4, dtype=np.int64))
                ref_sources, ref_targets = graph.gather_edges(np.arange(4, dtype=np.int64))
                assert np.array_equal(sources, ref_sources)
                assert np.array_equal(targets, ref_targets)

    def test_attached_arrays_are_read_only(self):
        graph = barbell_graph(4)
        with graph.share() as shared:
            with CSRGraph.attach(shared.handle()) as attached:
                with pytest.raises(ValueError):
                    attached.graph.neighbors[0] = 99
                with pytest.raises(ValueError):
                    attached.graph.offsets[0] = 1

    def test_handle_is_small_and_picklable(self):
        graph = rand_local(300, seed=1)
        with graph.share() as shared:
            payload = pickle.dumps(shared.handle())
            # The whole point: the handle crossing the IPC boundary is a
            # few hundred bytes, not the graph.
            assert len(payload) < 1024
            handle = pickle.loads(payload)
            assert isinstance(handle, SharedCSRHandle)
            with CSRGraph.attach(handle) as attached:
                assert attached.graph.fingerprint() == graph.fingerprint()

    def test_edgeless_graph_shares(self):
        graph = CSRGraph(np.asarray([0, 0, 0]), np.asarray([], dtype=np.int64))
        with graph.share() as shared:
            with CSRGraph.attach(shared.handle()) as attached:
                assert attached.graph.num_vertices == 2
                assert attached.graph.num_edges == 0


class TestLifecycle:
    def test_context_manager_unlinks(self):
        with rand_local(200, seed=3).share() as shared:
            assert len(shm_entries()) == 2
            assert shared.owner
        assert shm_entries() == []

    def test_unlink_is_idempotent(self):
        shared = rand_local(200, seed=3).share()
        shared.unlink()
        shared.unlink()
        assert shm_entries() == []

    def test_close_then_unlink_still_removes_segments(self):
        shared = rand_local(200, seed=3).share()
        shared.close()
        assert len(shm_entries()) == 2  # close drops the mapping only
        shared.unlink()
        assert shm_entries() == []

    def test_attached_exit_never_unlinks(self):
        graph = barbell_graph(4)
        with graph.share() as shared:
            with CSRGraph.attach(shared.handle()):
                pass
            # the attached view closed; the owner's segments must survive
            assert len(shm_entries()) == 2
            with CSRGraph.attach(shared.handle()) as again:
                assert again.graph.num_vertices == graph.num_vertices
        assert shm_entries() == []

    def test_atexit_registry_tracks_owners_until_unlink(self):
        shared = rand_local(100, seed=2).share()
        assert id(shared) in _LIVE  # the guard would unlink it at exit
        shared.unlink()
        assert id(shared) not in _LIVE

    def test_attached_instances_never_enter_the_registry(self):
        with rand_local(100, seed=2).share() as shared:
            attached = CSRGraph.attach(shared.handle())
            assert id(attached) not in _LIVE
            attached.close()

    def test_share_helper_returns_owner(self):
        shared = barbell_graph(4).share()
        assert isinstance(shared, SharedCSR)
        assert shared.owner
        shared.unlink()

    def test_close_detaches_array_views(self):
        shared = rand_local(100, seed=4).share()
        attached = CSRGraph.attach(shared.handle())
        attached.close()
        # After close the view graph must not keep the buffer pinned.
        assert len(attached.graph.offsets) == 0
        shared.unlink()
