"""Tests for the graph generators (repro.graph.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import conductance
from repro.graph import (
    barbell_graph,
    citation_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_3d,
    paper_figure1_graph,
    path_graph,
    planted_partition,
    power_law_communities,
    rand_local,
    rmat,
    star_graph,
)


class TestPaperGenerators:
    def test_grid_3d_is_6_regular_torus(self):
        graph = grid_3d(5)
        assert graph.num_vertices == 125
        assert (graph.degrees() == 6).all()
        assert graph.num_edges == 3 * 125
        graph.check_invariants()

    def test_grid_3d_open_boundary(self):
        graph = grid_3d(3, torus=False)
        assert graph.num_vertices == 27
        # Corner vertices have degree 3 in the open grid.
        assert graph.degree(0) == 3
        assert graph.num_edges == 3 * 3 * 2 * 3  # 3 axes * 2 edges/line * 9 lines

    def test_grid_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            grid_3d(1)

    def test_rand_local_shape(self):
        graph = rand_local(2000, seed=0)
        assert graph.num_vertices == 2000
        # 5 picks per vertex, symmetrised and deduplicated: between n and 2*5n/2.
        assert 2000 <= graph.num_edges <= 5 * 2000
        graph.check_invariants()

    def test_rand_local_is_local(self):
        # Most edges connect nearby ids (the generator's defining property).
        graph = rand_local(5000, seed=1)
        sources, targets = graph.gather_edges(np.arange(5000))
        distance = np.abs(sources - targets)
        wrapped = np.minimum(distance, 5000 - distance)
        assert np.median(wrapped) < 100

    def test_rand_local_deterministic_by_seed(self):
        a = rand_local(500, seed=3)
        b = rand_local(500, seed=3)
        c = rand_local(500, seed=4)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert not np.array_equal(a.neighbors, c.neighbors)

    def test_rand_local_rejects_tiny(self):
        with pytest.raises(ValueError):
            rand_local(1)


class TestProxyGenerators:
    def test_rmat_size_and_skew(self):
        graph = rmat(10, edge_factor=8, seed=0)
        assert graph.num_vertices == 1024
        assert graph.num_edges > 1024
        degrees = graph.degrees()
        # Heavy tail: max degree far above the mean.
        assert degrees.max() > 5 * degrees.mean()

    def test_rmat_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            rmat(8, a=0.5, b=0.3, c=0.2)  # d = 0

    def test_erdos_renyi(self):
        graph = erdos_renyi(500, 2000, seed=0)
        assert graph.num_vertices == 500
        assert 0 < graph.num_edges <= 2000

    def test_planted_partition_structure(self):
        graph = planted_partition(600, 6, intra_degree=10.0, inter_degree=1.0, seed=0)
        assert graph.num_vertices == 600
        community = np.arange(100)
        # The planted community is a far better cluster than a random set.
        rng = np.random.default_rng(0)
        random_set = rng.choice(600, size=100, replace=False)
        assert conductance(graph, community) < 0.3
        assert conductance(graph, community) < conductance(graph, random_set) / 2

    def test_planted_partition_divisibility(self):
        with pytest.raises(ValueError):
            planted_partition(100, 7, 5.0, 1.0)

    def test_power_law_communities(self):
        graph = power_law_communities(3000, seed=0)
        assert graph.num_vertices == 3000
        degrees = graph.degrees()
        assert degrees.max() > 3 * degrees.mean()
        graph.check_invariants()

    def test_citation_graph(self):
        graph = citation_graph(2000, references_per_vertex=4, seed=0)
        assert graph.num_vertices == 2000
        # Early vertices are cited heavily (copying-model hubs).
        degrees = graph.degrees()
        assert degrees[:20].mean() > degrees[1000:].mean()


class TestSmallGraphs:
    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1 and graph.degree(2) == 2

    def test_cycle(self):
        graph = cycle_graph(6)
        assert (graph.degrees() == 2).all()
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert (graph.degrees() == 5).all()

    def test_star(self):
        graph = star_graph(7)
        assert graph.degree(0) == 6
        assert graph.num_edges == 6

    def test_barbell(self):
        graph = barbell_graph(5)
        assert graph.num_vertices == 10
        assert graph.num_edges == 2 * 10 + 1
        # The bridge is the unique min cut: conductance of one clique.
        clique = np.arange(5)
        assert conductance(graph, clique) == pytest.approx(1 / 21)

    def test_figure1_matches_paper(self):
        graph = paper_figure1_graph()
        assert graph.num_vertices == 8
        assert graph.num_edges == 8
        assert conductance(graph, np.array([0])) == pytest.approx(1.0)
        assert conductance(graph, np.array([0, 1])) == pytest.approx(1 / 2)
        assert conductance(graph, np.array([0, 1, 2])) == pytest.approx(1 / 7)
        assert conductance(graph, np.array([0, 1, 2, 3])) == pytest.approx(3 / 5)
