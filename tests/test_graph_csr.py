"""Tests for the CSR graph representation (repro.graph.csr)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, from_edge_list, path_graph
from repro.runtime import track


@pytest.fixture
def triangle():
    return from_edge_list([(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_valid_graph(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert triangle.total_volume == 6

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_offsets_must_cover_neighbors(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]))

    def test_neighbor_ids_in_range(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_empty_graph(self):
        graph = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert graph.num_vertices == 0
        assert graph.num_edges == 0


class TestDegreesAndAdjacency:
    def test_degree(self, figure1):
        assert [figure1.degree(v) for v in range(8)] == [2, 2, 3, 4, 1, 1, 2, 1]

    def test_degrees_all(self, figure1):
        assert figure1.degrees().tolist() == [2, 2, 3, 4, 1, 1, 2, 1]

    def test_degrees_subset(self, figure1):
        assert figure1.degrees(np.array([3, 0])).tolist() == [4, 2]

    def test_neighbors_sorted(self, figure1):
        assert figure1.neighbors_of(3).tolist() == [2, 4, 5, 6]

    def test_volume(self, figure1):
        assert figure1.volume(np.array([0, 1, 2])) == 7
        assert figure1.volume(np.array([0, 1, 2, 3])) == 11

    def test_has_edge(self, figure1):
        assert figure1.has_edge(0, 1)
        assert figure1.has_edge(1, 0)
        assert not figure1.has_edge(0, 7)


class TestGatherEdges:
    def test_gather_groups_by_source(self, figure1):
        sources, targets = figure1.gather_edges(np.array([0, 3]))
        assert sources.tolist() == [0, 0, 3, 3, 3, 3]
        assert targets.tolist() == [1, 2, 2, 4, 5, 6]

    def test_gather_empty_frontier(self, figure1):
        sources, targets = figure1.gather_edges(np.array([], dtype=np.int64))
        assert len(sources) == 0 and len(targets) == 0

    def test_gather_isolated_vertices(self):
        graph = from_edge_list([(0, 1)], num_vertices=4)
        sources, targets = graph.gather_edges(np.array([2, 3]))
        assert len(sources) == 0

    def test_work_proportional_to_frontier_volume(self, figure1):
        # The locality property Ligra's edgeMap relies on: gathering the
        # edges of a subset must cost O(|subset| + vol(subset)), not O(m).
        with track() as tracker:
            figure1.gather_edges(np.array([4]))  # degree-1 vertex
        small = tracker.work
        with track() as tracker:
            figure1.gather_edges(np.arange(8))
        assert small < tracker.work
        assert small <= 1 + 1 + 2  # scan + vertex + its single edge

    def test_check_invariants_accepts_valid(self, figure1):
        figure1.check_invariants()

    def test_check_invariants_rejects_asymmetric(self):
        # Hand-built directed edge (0 -> 1 without 1 -> 0).
        graph = CSRGraph(np.array([0, 1, 1]), np.array([1]))
        with pytest.raises(ValueError):
            graph.check_invariants()

    def test_check_invariants_rejects_self_loop(self):
        graph = CSRGraph(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            graph.check_invariants()


class TestRepr:
    def test_repr(self):
        assert repr(path_graph(3)) == "CSRGraph(n=3, m=2)"
