"""Unit tests for the evolving-graph plane.

Covers the version chain itself (:mod:`repro.graph.evolving`), the
engine's tracking-vs-pinned semantics (``graph_version=`` and the
:class:`~repro.engine.VersionGuardSession` staleness guard, including
the sharded-handle regression), and the region-aware cross-version
cache migration (:func:`repro.cache.advance_version`).  The
differential properties — incremental ≡ cold across kernels, backends
and shard counts — live in ``test_evolving_differential.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import MigrationStats, ResultCache, advance_version, delta_region
from repro.core.options import RequestError
from repro.engine import BatchEngine, DiffusionJob, VersionGuardSession, resolve_engine
from repro.graph import (
    EvolvingGraph,
    GraphVersion,
    apply_updates,
    barbell_graph,
    cycle_graph,
    normalize_update_edges,
)


class TestNormalizeUpdateEdges:
    def test_orients_and_dedupes(self):
        pairs = normalize_update_edges([(3, 1), (1, 3), (0, 2)], num_vertices=5)
        assert pairs.tolist() == [[0, 2], [1, 3]]

    def test_empty_input(self):
        assert normalize_update_edges([], num_vertices=4).shape == (0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loops"):
            normalize_update_edges([(2, 2)], num_vertices=4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            normalize_update_edges([(0, 4)], num_vertices=4)
        with pytest.raises(ValueError):
            normalize_update_edges([(-1, 2)], num_vertices=4)


class TestApplyUpdates:
    def test_insert_produces_next_version(self, small_cycle):
        v1 = apply_updates(small_cycle, insertions=[(0, 6)])
        assert v1.version == 1
        assert v1.parent is not None and v1.parent.version == 0
        assert v1.graph.has_edge(0, 6)
        assert v1.touched.tolist() == [0, 6]
        assert not small_cycle.has_edge(0, 6)  # parent untouched

    def test_delete_removes_edge(self, small_cycle):
        v1 = apply_updates(small_cycle, deletions=[(0, 1)])
        assert not v1.graph.has_edge(0, 1)
        assert v1.touched.tolist() == [0, 1]

    def test_noop_batch_yields_identical_fingerprint(self, small_cycle):
        # Inserting an existing edge / deleting a missing one is a no-op:
        # the version advances but the content (and touched set) does not.
        v1 = apply_updates(small_cycle, insertions=[(0, 1)], deletions=[(3, 7)])
        assert v1.version == 1
        assert len(v1.touched) == 0
        assert v1.fingerprint() == GraphVersion(small_cycle).fingerprint()

    def test_edge_in_both_lists_rejected(self, small_cycle):
        with pytest.raises(ValueError, match="both insertions and deletions"):
            apply_updates(small_cycle, insertions=[(0, 5)], deletions=[(5, 0)])

    def test_rebuild_threshold_out_of_range(self, small_cycle):
        with pytest.raises(ValueError, match="rebuild_threshold"):
            apply_updates(small_cycle, insertions=[(0, 5)], rebuild_threshold=1.5)

    def test_splice_and_rebuild_are_bit_identical(self, small_cycle):
        insertions = [(0, 4), (2, 9)]
        deletions = [(5, 6)]
        spliced = apply_updates(
            small_cycle, insertions, deletions, rebuild_threshold=1.0
        )
        rebuilt = apply_updates(
            small_cycle, insertions, deletions, rebuild_threshold=0.0
        )
        assert not spliced.rebuilt and rebuilt.rebuilt
        assert np.array_equal(spliced.graph.offsets, rebuilt.graph.offsets)
        assert np.array_equal(spliced.graph.neighbors, rebuilt.graph.neighbors)
        assert spliced.fingerprint() == rebuilt.fingerprint()

    def test_insert_then_delete_returns_to_root_content(self, barbell):
        root = GraphVersion(barbell)
        v2 = root.apply(insertions=[(0, 12)]).apply(deletions=[(0, 12)])
        assert v2.version == 2
        assert v2.fingerprint() == root.fingerprint()

    def test_touched_since_unions_the_chain(self, small_cycle):
        root = GraphVersion(small_cycle)
        v1 = root.apply(insertions=[(0, 4)])
        v2 = v1.apply(deletions=[(7, 8)])
        assert v2.touched_since(root).tolist() == [0, 4, 7, 8]
        assert v2.touched_since(v1).tolist() == [7, 8]
        assert len(v2.touched_since(v2)) == 0

    def test_touched_since_rejects_non_ancestor(self, small_cycle):
        root = GraphVersion(small_cycle)
        v1 = root.apply(insertions=[(0, 4)])
        sibling = root.apply(insertions=[(1, 5)])
        with pytest.raises(ValueError, match="not an ancestor"):
            v1.touched_since(sibling)


class TestEvolvingGraph:
    def test_chain_appends_and_addresses_versions(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        assert len(chain) == 1 and chain.latest.version == 0
        v1 = chain.apply_updates(insertions=[(0, 3)])
        assert len(chain) == 2
        assert chain.at(1) is v1 and chain.latest is v1
        assert chain.at(None) is v1
        assert chain.at(0).graph is small_cycle

    def test_nonexistent_version_raises(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        with pytest.raises(ValueError, match="have versions 0..0"):
            chain.at(1)
        with pytest.raises(ValueError):
            chain.at(-1)

    def test_root_must_be_a_root_version(self, small_cycle):
        v1 = GraphVersion(small_cycle).apply(insertions=[(0, 3)])
        with pytest.raises(ValueError, match="root version"):
            EvolvingGraph(v1)

    def test_num_vertices_stable_across_versions(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        chain.apply_updates(insertions=[(0, 3)])
        assert chain.num_vertices == small_cycle.num_vertices


class TestEngineVersioning:
    def test_tracking_engine_goes_stale_after_update(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        engine = BatchEngine(chain)
        assert engine.run([DiffusionJob.make(0)])  # fresh: runs fine
        chain.apply_updates(insertions=[(0, 5)])
        with pytest.raises(RequestError) as excinfo:
            engine.run([DiffusionJob.make(0)])
        assert excinfo.value.code == 409
        assert excinfo.value.field == "graph_version"
        message = str(excinfo.value)
        assert chain.at(0).fingerprint()[:12] in message
        assert chain.at(1).fingerprint()[:12] in message

    def test_pinned_engine_survives_updates(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        pinned = BatchEngine(chain, graph_version=0)
        before = pinned.run([DiffusionJob.make(0)])
        chain.apply_updates(insertions=[(0, 5)])
        after = pinned.run([DiffusionJob.make(0)])
        assert before[0].support_size == after[0].support_size

    def test_at_version_pins_and_shares_backend(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        engine = BatchEngine(chain)
        chain.apply_updates(insertions=[(0, 5)])
        fresh = engine.at_version()
        assert fresh.graph_version == 1
        assert fresh.backend is engine.backend
        assert fresh.graph.has_edge(0, 5)
        old = engine.at_version(0)
        assert old.graph is small_cycle

    def test_at_version_requires_evolving(self, small_cycle):
        with pytest.raises(ValueError, match="EvolvingGraph"):
            BatchEngine(small_cycle).at_version(0)

    def test_plain_graph_rejects_graph_version(self, small_cycle):
        with pytest.raises(ValueError, match="plain CSRGraph"):
            BatchEngine(small_cycle, graph_version=0)

    def test_resolve_engine_accepts_chain(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        chain.apply_updates(insertions=[(0, 5)])
        engine = resolve_engine(chain, graph_version=0)
        assert engine.graph is small_cycle

    def test_tracking_session_refuses_after_update(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        engine = BatchEngine(chain)
        with engine.open_session() as session:
            assert isinstance(session, VersionGuardSession)
            assert list(session.run([DiffusionJob.make(0)]))
            chain.apply_updates(insertions=[(0, 5)])
            with pytest.raises(RequestError) as excinfo:
                list(session.run([DiffusionJob.make(0)]))
            assert excinfo.value.code == 409

    def test_pinned_session_is_not_guarded(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        with BatchEngine(chain, graph_version=0).open_session() as session:
            assert not isinstance(session, VersionGuardSession)
            chain.apply_updates(insertions=[(0, 5)])
            assert list(session.run([DiffusionJob.make(0)]))

    def test_stale_sharded_handle_named_in_error(self, planted):
        # Regression (satellite of the evolving plane): a sharded session
        # pins a shared-memory export stamped with the base fingerprint;
        # after apply_updates the guard must name that stale handle rather
        # than let the router keep reading the superseded partition.
        chain = EvolvingGraph(planted)
        engine = BatchEngine(chain, shards=2)
        with engine.open_session() as session:
            assert list(session.run([DiffusionJob.make(0)]))
            stale_fingerprint = chain.at(0).fingerprint()
            chain.apply_updates(insertions=[(0, 1500)])
            with pytest.raises(RequestError) as excinfo:
                list(session.run([DiffusionJob.make(0)]))
        error = excinfo.value
        assert error.code == 409
        message = str(error)
        assert "sharded export's handle" in message
        assert stale_fingerprint[:12] in message
        assert "at_version" in message  # remediation hint


class TestCacheMigration:
    def run_cached(self, engine, seed, eps=1e-3):
        (outcome,) = engine.run(
            [DiffusionJob.make(seed, params={"alpha": 0.1, "eps": eps})]
        )
        return outcome

    def test_far_update_entry_survives_and_hits(self):
        chain = EvolvingGraph(cycle_graph(200))
        cache = ResultCache()
        engine = BatchEngine(chain, cache=cache, include_vectors=True)
        cold = self.run_cached(engine, seed=0)
        assert not cold.cached
        v1 = chain.apply_updates(insertions=[(100, 102)])  # far from seed 0
        stats = advance_version(cache, v1)
        assert (stats.examined, stats.survived) == (1, 1)
        replay = self.run_cached(engine.at_version(1), seed=0)
        assert replay.cached
        assert replay.support_size == cold.support_size
        assert np.array_equal(replay.vector_keys, cold.vector_keys)

    def test_near_update_entry_invalidated(self):
        chain = EvolvingGraph(cycle_graph(200))
        cache = ResultCache()
        engine = BatchEngine(chain, cache=cache, include_vectors=True)
        cold = self.run_cached(engine, seed=0)
        support = set(cold.vector_keys.tolist())
        inside = max(support)
        v1 = chain.apply_updates(insertions=[(inside, (inside + 50) % 200)])
        stats = advance_version(cache, v1)
        assert stats.survived == 0 and stats.invalidated == 1
        replay = self.run_cached(engine.at_version(1), seed=0)
        assert not replay.cached  # recomputed on the new edges

    def test_old_version_keys_remain_valid(self):
        chain = EvolvingGraph(cycle_graph(200))
        cache = ResultCache()
        engine = BatchEngine(chain, cache=cache, include_vectors=True, graph_version=0)
        self.run_cached(engine, seed=0)
        v1 = chain.apply_updates(insertions=[(100, 102)])
        advance_version(cache, v1)
        pinned_replay = self.run_cached(engine, seed=0)
        assert pinned_replay.cached  # old fingerprint still answers v0

    def test_noop_advance_is_empty(self, small_cycle):
        chain = EvolvingGraph(small_cycle)
        cache = ResultCache()
        v1 = chain.apply_updates(insertions=[(0, 1)])  # existing edge: no-op
        stats = advance_version(cache, v1)
        assert stats == MigrationStats()

    def test_root_version_rejected(self, small_cycle):
        with pytest.raises(ValueError, match="no parent"):
            advance_version(ResultCache(), GraphVersion(small_cycle))

    def test_delta_region_covers_both_neighborhoods(self, small_cycle):
        v1 = apply_updates(small_cycle, deletions=[(0, 1)])
        region = delta_region(small_cycle, v1.graph, v1.touched)
        # Touched endpoints plus their neighbors in either version.
        assert {0, 1, 2, 11} <= set(region.tolist())

    def test_survival_requires_vector_profile(self, small_cycle):
        # Without persisted vectors the entry cannot prove which adjacency
        # it read, so migration must skip (not survive) it.
        chain = EvolvingGraph(cycle_graph(200))
        cache = ResultCache()
        engine = BatchEngine(chain, cache=cache, include_vectors=False)
        self.run_cached(engine, seed=0)
        v1 = chain.apply_updates(insertions=[(100, 102)])
        stats = advance_version(cache, v1)
        assert stats.survived == 0 and stats.skipped == 1
