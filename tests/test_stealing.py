"""Tests for work-stealing dispatch and online cost calibration.

Scheduler v2's contract has three load-bearing pieces:

* :func:`repro.engine.plan_units` orders jobs into fine-grained units for
  the pool's shared queue — a *partition* (every job exactly once),
  heaviest-first under ``"cost"``, the legacy contiguous slices under
  ``"fifo"``, and unit size collapsing to 1 when jobs-per-worker is low.
* :class:`repro.runtime.cost_model.CostModel` learns seconds-per-work-unit
  per (method, kernel) from completed outcomes.  Its calibration is
  *anchor-normalised*: calibrated estimates stay in static-estimate units,
  so a homogeneous workload calibrates to exactly the static numbers and
  thresholds like ``max_batch_cost`` keep their meaning.
* Stealing changes *placement only*.  The property test runs mixed-method,
  mixed-kernel batches through one long-lived stealing pool session (so
  calibration accumulates across batches, exactly like a serving process)
  and asserts outcomes bit-identical to serial; the sharded variant does
  the same across shard counts.  CI re-runs this file under a forced
  ``spawn`` start method, which covers the start-method axis.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchEngine,
    DiffusionJob,
    ProcessPoolBackend,
    StatsReducer,
    estimate_cost,
    observe_outcome,
    plan_chunks,
    plan_units,
    run_job,
    steal_unit_size,
)
from repro.engine.scheduler import _MIN_COST, MAX_UNIT_JOBS
from repro.graph import planted_partition
from repro.kernels import available_kernels
from repro.runtime.cost_model import CostModel

GRAPH = planted_partition(240, 3, intra_degree=8.0, inter_degree=1.0, seed=3)

#: kernel settings a job may carry without failing execution here.
KERNEL_CHOICES = [None, *sorted(available_kernels())]


def pr_job(seed=0, alpha=0.01, eps=1e-4, kernel=None):
    return DiffusionJob.make(seed, params={"alpha": alpha, "eps": eps}, kernel=kernel)


@st.composite
def diffusion_jobs(draw):
    """One job from any of the four methods, any available kernel."""
    method = draw(st.sampled_from(["pr-nibble", "nibble", "hk-pr", "rand-hk-pr"]))
    seed = draw(st.integers(0, GRAPH.num_vertices - 1))
    kernel = draw(st.sampled_from(KERNEL_CHOICES))
    if method == "pr-nibble":
        params = {
            "alpha": draw(st.sampled_from([0.1, 0.01])),
            "eps": draw(st.sampled_from([1e-3, 1e-5])),
        }
    elif method == "nibble":
        params = {
            "eps": draw(st.sampled_from([1e-3, 1e-4])),
            "max_iterations": draw(st.sampled_from([5, 20])),
        }
    elif method == "hk-pr":
        params = {"eps": draw(st.sampled_from([1e-3, 1e-4]))}
    else:
        params = {
            "num_walks": draw(st.sampled_from([50, 200])),
            "max_walk_length": draw(st.sampled_from([5, 10])),
        }
    rng = draw(st.integers(0, 3))
    return DiffusionJob.make(seed, method=method, params=params, rng=rng, kernel=kernel)


class TestStealUnits:
    @settings(max_examples=40, deadline=None)
    @given(
        jobs=st.lists(diffusion_jobs(), min_size=1, max_size=80),
        workers=st.integers(1, 8),
        schedule=st.sampled_from(["cost", "fifo"]),
    )
    def test_plan_is_a_partition(self, jobs, workers, schedule):
        units = plan_units(jobs, workers, schedule=schedule)
        seen = [index for unit in units for index, _ in unit]
        assert sorted(seen) == list(range(len(jobs)))  # every job exactly once
        for unit in units:
            for index, job in unit:
                assert job is jobs[index]

    @settings(max_examples=20, deadline=None)
    @given(jobs=st.lists(diffusion_jobs(), min_size=1, max_size=60), workers=st.integers(1, 8))
    def test_plan_is_deterministic(self, jobs, workers):
        first = plan_units(jobs, workers)
        second = plan_units(jobs, workers)
        assert [[i for i, _ in unit] for unit in first] == [
            [i for i, _ in unit] for unit in second
        ]

    def test_cost_units_dispatch_heaviest_first(self):
        jobs = [pr_job(seed=s, eps=eps) for s, eps in enumerate([*([1e-3] * 10), 1e-7])]
        units = plan_units(jobs, workers=2)
        # Few jobs per worker -> singleton units, in strictly non-increasing
        # cost order, the expensive straggler leading the queue.
        assert all(len(unit) == 1 for unit in units)
        costs = [estimate_cost(job) for unit in units for _, job in unit]
        assert costs == sorted(costs, reverse=True)
        assert units[0][0][0] == 10

    def test_fine_granularity_guard(self):
        # Few jobs per worker: every job must be independently stealable.
        assert steal_unit_size(10, 4) == 1
        assert steal_unit_size(64, 4) == 1
        # Plenty of jobs: units grow, capped at MAX_UNIT_JOBS.
        assert steal_unit_size(4 * 16 * 2, 4) == 2
        assert steal_unit_size(100_000, 4) == MAX_UNIT_JOBS
        # An explicit chunk_size overrides the rule (floored at 1).
        assert steal_unit_size(100_000, 4, chunk_size=5) == 5
        assert steal_unit_size(10, 4, chunk_size=0) == 1

    def test_fifo_keeps_legacy_contiguous_slices(self):
        jobs = [pr_job(seed=s) for s in range(10)]
        units = plan_units(jobs, workers=2, schedule="fifo", chunk_size=4)
        assert [[i for i, _ in unit] for unit in units] == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9],
        ]
        many = [pr_job(seed=s) for s in range(160)]
        assert plan_units(many, 2, schedule="fifo") == plan_chunks(
            many, 2, schedule="fifo"
        )

    def test_empty_batch_and_unknown_schedule(self):
        assert plan_units([], workers=4) == []
        with pytest.raises(ValueError, match="unknown schedule"):
            plan_units([pr_job()], workers=2, schedule="lifo")

    def test_custom_estimator_orders_units(self):
        jobs = [pr_job(seed=s) for s in range(6)]
        # +2 keeps every cost above the _MIN_COST floor, so the custom
        # ordering (not the index tie-break) decides the whole queue.
        units = plan_units(jobs, workers=2, estimator=lambda job: float(job.seeds[0] + 2))
        assert [unit[0][0] for unit in units] == [5, 4, 3, 2, 1, 0]


def _outcome(job, wall_seconds, cached=False):
    """The slice of JobOutcome that observe_outcome reads."""
    return SimpleNamespace(job=job, wall_seconds=wall_seconds, cached=cached)


class TestCostModel:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)

    def test_bad_samples_ignored(self):
        model = CostModel()
        model.observe("pr-nibble", "python", 0.0, 1.0)
        model.observe("pr-nibble", "python", -5.0, 1.0)
        model.observe("pr-nibble", "python", 10.0, -1.0)
        assert model.observations == 0
        assert model.calibration_factor("pr-nibble", "python") is None

    def test_unseen_key_falls_back_to_static(self):
        model = CostModel()
        job = pr_job(eps=1e-4)
        assert model.calibration_factor("pr-nibble", "python") is None
        assert estimate_cost(job, model) == estimate_cost(job)

    def test_homogeneous_workload_calibrates_to_identity(self):
        # Anchor normalisation: when measured cost tracks the static
        # estimate exactly, the calibrated estimate IS the static estimate
        # — so admission thresholds (max_batch_cost) keep their meaning.
        model = CostModel()
        job = pr_job(eps=1e-4)
        for _ in range(5):
            observe_outcome(model, _outcome(job, wall_seconds=estimate_cost(job) * 2e-6))
        assert estimate_cost(job, model) == pytest.approx(estimate_cost(job))

    def test_relative_correction_reweighs_methods(self):
        # nibble measures 5x the seconds-per-raw-unit of the anchor mix:
        # its calibrated estimate must rise above static, pr-nibble's fall
        # below — the ranking the stealing order actually consumes.
        model = CostModel()
        model.observe("pr-nibble", "python", 100.0, 100 * 1e-6, static=100.0)
        model.observe("nibble", "python", 100.0, 100 * 5e-6, static=100.0)
        fast = model.calibration_factor("pr-nibble", "python")
        slow = model.calibration_factor("nibble", "python")
        assert slow > 1.0 > fast
        assert slow / fast == pytest.approx(5.0)

    def test_cached_outcomes_not_observed(self):
        model = CostModel()
        observe_outcome(model, _outcome(pr_job(), wall_seconds=1.0, cached=True))
        assert model.observations == 0

    def test_ewma_starts_as_running_mean(self):
        model = CostModel(alpha=0.2)
        model.observe("pr-nibble", "python", 1.0, 2e-6, static=1.0)
        model.observe("pr-nibble", "python", 1.0, 4e-6, static=1.0)
        snapshot = model.snapshot()
        entry = snapshot["pr-nibble/python"]
        assert entry["seconds_per_unit"] == pytest.approx(3e-6)
        assert entry["samples"] == 2

    def test_snapshot_keys_and_sorting(self):
        model = CostModel()
        model.observe("nibble", "python", 1.0, 1e-6)
        model.observe("hk-pr", "c", 1.0, 1e-6)
        assert list(model.snapshot()) == ["hk-pr/c", "nibble/python"]


class TestDispatchStats:
    def test_pool_run_accounts_units_steals_and_idle(self):
        engine = BatchEngine(
            GRAPH, backend="process", workers=2, include_vectors=False
        )
        jobs = [pr_job(seed=s, eps=eps) for s in range(10) for eps in (1e-3, 1e-5)]
        stats = engine.run(jobs, StatsReducer(engine=engine))
        dispatch = engine.dispatch_stats
        assert dispatch.batches == 1
        assert dispatch.jobs == len(jobs)
        assert dispatch.units == len(plan_units(jobs, 2))
        # One batch: every unit beyond a worker's first was a steal.
        assert dispatch.steals == dispatch.units - len(dispatch.per_worker)
        assert dispatch.busy_seconds > 0.0
        assert dispatch.idle_seconds >= 0.0
        per_worker = dispatch.per_worker.values()
        assert sum(w.units for w in per_worker) == dispatch.units
        assert sum(w.jobs for w in per_worker) == dispatch.jobs
        assert sum(w.steals for w in per_worker) == dispatch.steals
        # The reducer snapshot mirrors the live accounting and carries the
        # calibration learned from this batch.
        assert stats.dispatch == dispatch.describe()
        assert stats.cost_calibration["pr-nibble/python"]["samples"] == len(jobs)

    def test_serial_backend_reports_no_dispatch(self):
        engine = BatchEngine(GRAPH, include_vectors=False)
        stats = engine.run([pr_job()], StatsReducer(engine=engine))
        assert engine.dispatch_stats is None
        assert stats.dispatch is None


@pytest.fixture(scope="module")
def stealing_session():
    """One long-lived stealing pool session shared by every example, so
    the cost model calibrates across batches like a serving process."""
    backend = ProcessPoolBackend(workers=3, schedule="cost")
    session = backend.open_session(GRAPH, parallel=True, include_vectors=False)
    yield backend, session
    session.close()


class TestStealingBitIdentical:
    """Satellite contract: steal-order execution is bit-identical to serial
    for all four methods, across kernels (every available one), shard
    counts (below), and start methods (CI re-runs under forced spawn)."""

    @settings(max_examples=8, deadline=None)
    @given(jobs=st.lists(diffusion_jobs(), min_size=1, max_size=12))
    def test_pool_outcomes_match_serial(self, stealing_session, jobs):
        _, session = stealing_session
        outcomes = list(session.run(jobs))
        assert [o.index for o in outcomes] == list(range(len(jobs)))
        for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
            reference = run_job(GRAPH, job, index=index, include_vector=False)
            assert outcome.pushes == reference.pushes
            assert outcome.iterations == reference.iterations
            assert outcome.support_size == reference.support_size
            if reference.sweep is None:
                assert outcome.sweep is None
            else:
                assert np.array_equal(outcome.cluster, reference.cluster)
                assert outcome.conductance == reference.conductance

    def test_session_calibrated_across_batches(self, stealing_session):
        # Ordered after the property test: by now the session has served
        # many batches and its model must have learned from all of them.
        backend, _ = stealing_session
        assert backend.cost_model.observations > 0
        assert backend.dispatch.batches > 1
        assert backend.dispatch.jobs == backend.cost_model.observations
        snapshot = backend.cost_model.snapshot()
        assert all(entry["samples"] >= 1 for entry in snapshot.values())

    @settings(max_examples=6, deadline=None)
    @given(
        jobs=st.lists(diffusion_jobs(), min_size=1, max_size=8),
        shards=st.integers(1, 4),
    )
    def test_sharded_routing_matches_serial(self, jobs, shards):
        engine = BatchEngine(
            GRAPH, backend="sharded", shards=shards, include_vectors=False
        )
        outcomes = engine.run(jobs)
        for index, (job, outcome) in enumerate(zip(jobs, outcomes)):
            reference = run_job(GRAPH, job, index=index, include_vector=False)
            assert outcome.index == index
            assert outcome.pushes == reference.pushes
            assert outcome.support_size == reference.support_size
            if reference.sweep is not None:
                assert np.array_equal(outcome.cluster, reference.cluster)
                assert outcome.conductance == reference.conductance
