"""Tests for parallel sorting primitives (repro.prims.sort)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.prims import (
    comparison_sort,
    comparison_sort_order,
    integer_sort,
    integer_sort_order,
)
from repro.runtime import track

nonneg_arrays = npst.arrays(
    np.int64, st.integers(0, 300), elements=st.integers(0, 2**40)
)


class TestComparisonSort:
    @given(npst.arrays(np.float64, st.integers(0, 200), elements=st.floats(-1e9, 1e9)))
    def test_matches_npsort(self, values):
        assert np.array_equal(comparison_sort(values), np.sort(values))

    @given(npst.arrays(np.int64, st.integers(1, 100), elements=st.integers(-50, 50)))
    def test_order_is_stable_permutation(self, keys):
        order = comparison_sort_order(keys)
        assert sorted(order.tolist()) == list(range(len(keys)))
        sorted_keys = keys[order]
        assert np.array_equal(sorted_keys, np.sort(keys))
        # Stability: equal keys keep their original relative order.
        for value in np.unique(keys):
            positions = order[sorted_keys == value]
            assert np.array_equal(positions, np.sort(positions))

    def test_records_nlogn_work(self):
        with track() as tracker:
            comparison_sort(np.arange(256))
        assert tracker.work == 256 * 8


class TestIntegerSort:
    @given(nonneg_arrays)
    def test_matches_npsort(self, keys):
        assert np.array_equal(integer_sort(keys), np.sort(keys))

    @given(nonneg_arrays.filter(lambda a: len(a) > 0))
    def test_order_is_stable_permutation(self, keys):
        order = integer_sort_order(keys)
        assert sorted(order.tolist()) == list(range(len(keys)))
        sorted_keys = keys[order]
        assert np.array_equal(sorted_keys, np.sort(keys))
        for value in np.unique(keys):
            positions = order[sorted_keys == value]
            assert np.array_equal(positions, np.sort(positions))

    def test_empty(self):
        assert len(integer_sort(np.array([], dtype=np.int64))) == 0

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            integer_sort(np.array([1, -2, 3]))

    def test_rejects_float_keys(self):
        with pytest.raises(TypeError):
            integer_sort(np.array([1.0, 2.0]))

    def test_max_key_hint_small_range_single_pass_work(self):
        # Keys below the radix (2^11) need one pass; a huge max_key forces
        # more passes and thus more recorded work.
        keys = np.arange(1000)[::-1].copy()
        with track() as one_pass:
            integer_sort(keys, max_key=999)
        with track() as many_pass:
            integer_sort(keys, max_key=2**40)
        assert one_pass.work < many_pass.work

    @given(st.integers(1, 10**6))
    def test_single_value_arrays(self, value):
        keys = np.full(17, value, dtype=np.int64)
        assert np.array_equal(integer_sort(keys), keys)
