"""Tests for the result cache (repro.cache).

The load-bearing properties: cache keys collide exactly when results are
guaranteed bit-identical (defaults filled, numerics normalised, seed sets
canonicalised); hits replay outcomes bit-identically through any backend;
a repeated ``ncp_profile`` grid on a cached engine performs *zero*
diffusion calls on the second run; and the disk layer round-trips
outcomes exactly and survives the process.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np
import pytest

import repro.engine.executor as executor_module
from repro.cache import (
    CachingBackend,
    DiskStore,
    LRUStore,
    ResultCache,
    cache_key_for,
    load_outcome,
    outcome_nbytes,
    resolve_cache,
    save_outcome,
)
from repro.core import cluster_many, local_cluster, ncp_profile
from repro.engine import BatchEngine, DiffusionJob, NCPReducer, job_grid, run_job
from repro.graph import CSRGraph, barbell_graph, planted_partition
from repro.graph.io import load_npz, save_npz


@pytest.fixture(scope="module")
def graph():
    return planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)


@pytest.fixture(scope="module")
def outcome(graph):
    return run_job(graph, DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-4}))


def make_outcome(graph, seed=0, include_vector=True):
    job = DiffusionJob.make(seed, params={"alpha": 0.05, "eps": 1e-4})
    return run_job(graph, job, include_vector=include_vector)


class TestFingerprint:
    def test_memoised_and_stable(self, graph):
        first = graph.fingerprint()
        assert graph.fingerprint() is first  # memo returns the same object
        assert len(first) == 40 and int(first, 16) >= 0

    def test_equal_for_equal_graphs(self, graph):
        rebuilt = planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)
        assert rebuilt is not graph
        assert rebuilt.fingerprint() == graph.fingerprint()

    def test_differs_for_different_graphs(self, graph):
        other = planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=6)
        assert other.fingerprint() != graph.fingerprint()

    def test_differs_for_shifted_structure(self):
        # Same array lengths, one edge rewired.
        path = CSRGraph([0, 1, 3, 4], [1, 0, 2, 1])
        other = CSRGraph([0, 1, 2, 4], [2, 2, 0, 1])
        assert path.fingerprint() != other.fingerprint()

    def test_survives_npz_round_trip(self, graph, tmp_path):
        save_npz(graph, tmp_path / "g.npz")
        assert load_npz(tmp_path / "g.npz").fingerprint() == graph.fingerprint()

    def test_worker_reconstructed_graph(self, graph):
        # The pool initializer builds graphs via __new__; the memo slot is
        # simply unset there and must not break fingerprinting.
        shell = CSRGraph.__new__(CSRGraph)
        shell.offsets = graph.offsets
        shell.neighbors = graph.neighbors
        assert shell.fingerprint() == graph.fingerprint()


class TestCacheKey:
    FP = "f" * 40

    def test_defaults_are_filled(self):
        explicit = DiffusionJob.make(3, params={"alpha": 0.01, "eps": 1e-6})
        implicit = DiffusionJob.make(3)
        assert cache_key_for(self.FP, explicit, True, True) == cache_key_for(
            self.FP, implicit, True, True
        )

    def test_numeric_normalisation(self):
        as_int = DiffusionJob.make(3, params={"beta": 1, "eps": 1e-4})
        as_float = DiffusionJob.make(3, params={"beta": 1.0, "eps": 0.0001})
        assert cache_key_for(self.FP, as_int, True, True) == cache_key_for(
            self.FP, as_float, True, True
        )

    def test_seed_order_and_duplicates_collapse(self):
        a = DiffusionJob.make([5, 1, 5, 3])
        b = DiffusionJob.make([1, 3, 5])
        assert cache_key_for(self.FP, a, True, True) == cache_key_for(
            self.FP, b, True, True
        )

    def test_tag_is_excluded(self):
        a = DiffusionJob.make(1, tag="experiment-A")
        b = DiffusionJob.make(1, tag={"unhashable": []})
        assert cache_key_for(self.FP, a, True, True) == cache_key_for(
            self.FP, b, True, True
        )

    def test_distinct_params_distinct_keys(self):
        a = DiffusionJob.make(1, params={"eps": 1e-4})
        b = DiffusionJob.make(1, params={"eps": 1e-5})
        assert cache_key_for(self.FP, a, True, True) != cache_key_for(
            self.FP, b, True, True
        )

    def test_rng_ignored_for_deterministic_methods(self):
        a = DiffusionJob.make(1, rng=0)
        b = DiffusionJob.make(1, rng=99)
        assert cache_key_for(self.FP, a, True, True) == cache_key_for(
            self.FP, b, True, True
        )

    def test_rng_kept_for_randomized_methods(self):
        a = DiffusionJob.make(1, method="rand-hk-pr", rng=0)
        b = DiffusionJob.make(1, method="rand-hk-pr", rng=99)
        assert cache_key_for(self.FP, a, True, True) != cache_key_for(
            self.FP, b, True, True
        )

    def test_parallel_and_vectors_partition_the_key_space(self):
        job = DiffusionJob.make(1)
        keys = {
            cache_key_for(self.FP, job, parallel, vectors)
            for parallel in (True, False)
            for vectors in (True, False)
        }
        assert len(keys) == 4

    def test_digest_stable_and_distinct(self):
        a = cache_key_for(self.FP, DiffusionJob.make(1), True, True)
        b = cache_key_for(self.FP, DiffusionJob.make(2), True, True)
        assert a.digest() == cache_key_for(self.FP, DiffusionJob.make(1), True, True).digest()
        assert a.digest() != b.digest()

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            cache_key_for(self.FP, DiffusionJob.make(1, method="page-rank"), True, True)


class TestLRUStore:
    def _key(self, seed):
        return cache_key_for("f" * 40, DiffusionJob.make(seed), True, True)

    def test_put_get_and_miss(self, graph, outcome):
        store = LRUStore()
        key = self._key(0)
        assert store.get(key) is None
        store.put(key, outcome)
        assert store.get(key) is outcome
        assert len(store) == 1 and store.nbytes >= outcome_nbytes(outcome)

    def test_entry_eviction_is_lru(self, graph, outcome):
        store = LRUStore(max_entries=2)
        keys = [self._key(s) for s in range(3)]
        store.put(keys[0], outcome)
        store.put(keys[1], outcome)
        assert store.get(keys[0]) is outcome  # refresh 0; 1 becomes LRU
        store.put(keys[2], outcome)
        assert store.get(keys[1]) is None
        assert store.get(keys[0]) is outcome and store.get(keys[2]) is outcome
        assert store.evictions == 1

    def test_byte_budget_keeps_newest(self, graph, outcome):
        store = LRUStore(max_bytes=outcome_nbytes(outcome) + 1)
        store.put(self._key(0), outcome)
        store.put(self._key(1), outcome)
        assert store.get(self._key(0)) is None
        assert store.get(self._key(1)) is outcome  # newest always retained

    def test_clear(self, graph, outcome):
        store = LRUStore()
        store.put(self._key(0), outcome)
        assert store.clear() == 1
        assert len(store) == 0 and store.nbytes == 0

    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            LRUStore(max_entries=0)
        with pytest.raises(ValueError):
            LRUStore(max_bytes=0)


class TestDiskStore:
    def _key(self, seed):
        return cache_key_for("f" * 40, DiffusionJob.make(seed), True, True)

    def assert_outcomes_identical(self, a, b, compare_vectors=True):
        assert a.support_size == b.support_size
        assert a.iterations == b.iterations
        assert a.pushes == b.pushes
        assert a.touched_edges == b.touched_edges
        assert a.residual_mass == b.residual_mass
        assert (a.sweep is None) == (b.sweep is None)
        if a.sweep is not None:
            assert np.array_equal(a.sweep.order, b.sweep.order)
            assert np.array_equal(a.sweep.conductances, b.sweep.conductances)
            assert np.array_equal(a.sweep.volumes, b.sweep.volumes)
            assert np.array_equal(a.sweep.cuts, b.sweep.cuts)
            assert a.sweep.best_index == b.sweep.best_index
        if compare_vectors:
            assert np.array_equal(a.vector_keys, b.vector_keys)
            assert np.array_equal(a.vector_values, b.vector_values)

    def test_round_trip_bit_identical(self, graph, outcome, tmp_path):
        path = tmp_path / "entry.npz"
        save_outcome(path, outcome)
        loaded = load_outcome(path)
        self.assert_outcomes_identical(outcome, loaded)
        assert loaded.job.seeds == outcome.job.seeds
        assert loaded.job.params == outcome.job.params

    def test_round_trip_without_vector(self, graph, tmp_path):
        slim = make_outcome(graph, include_vector=False)
        save_outcome(tmp_path / "slim.npz", slim)
        loaded = load_outcome(tmp_path / "slim.npz")
        assert loaded.vector_keys is None and loaded.vector_values is None
        self.assert_outcomes_identical(slim, loaded, compare_vectors=False)

    def test_persists_across_instances(self, graph, outcome, tmp_path):
        key = self._key(0)
        DiskStore(tmp_path).put(key, outcome)
        fresh = DiskStore(tmp_path)
        loaded = fresh.get(key)
        assert loaded is not None
        self.assert_outcomes_identical(outcome, loaded)

    def test_corrupt_entry_reads_as_miss_and_is_dropped(self, graph, outcome, tmp_path):
        store = DiskStore(tmp_path)
        key = self._key(0)
        store.put(key, outcome)
        path = store._path(key)
        path.write_bytes(b"not an npz payload")
        assert store.get(key) is None
        assert not path.exists()

    def test_numpy_scalar_params_round_trip(self, graph, tmp_path):
        # Params often arrive as numpy scalars (e.g. a sweep over
        # np.linspace values); the disk payload must serialise them.
        job = DiffusionJob.make(
            0, params={"alpha": np.float64(0.05), "eps": np.float64(1e-4)}
        )
        saved = run_job(graph, job)
        save_outcome(tmp_path / "np.npz", saved)
        loaded = load_outcome(tmp_path / "np.npz")
        assert loaded.job.params == {"alpha": 0.05, "eps": 1e-4}

    def test_create_false_rejects_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            DiskStore(tmp_path / "no-such-dir", create=False)
        DiskStore(tmp_path / "made")  # default still creates
        assert DiskStore(tmp_path / "made", create=False).directory.is_dir()

    def test_entry_eviction_removes_oldest(self, graph, outcome, tmp_path):
        import os

        store = DiskStore(tmp_path, max_entries=2)
        keys = [self._key(s) for s in range(3)]
        for age, key in enumerate(keys):
            store.put(key, outcome)
            # Make mtimes strictly increasing regardless of filesystem
            # timestamp resolution.
            os.utime(store._path(key), (age, age))
        store.put(keys[2], outcome)  # re-put triggers eviction pass
        assert store.get(keys[0]) is None
        assert store.get(keys[1]) is not None and store.get(keys[2]) is not None
        assert store.evictions == 1


class TestResultCache:
    def _key(self, seed):
        return cache_key_for("f" * 40, DiffusionJob.make(seed), True, True)

    def test_stats_counting(self, graph, outcome):
        cache = ResultCache()
        key = self._key(0)
        assert cache.get(key) is None
        cache.put(key, outcome)
        assert cache.get(key) is outcome
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.requests == 2 and stats.hit_rate == 0.5
        assert "50%" in stats.describe()

    def test_peek_does_not_count(self, graph, outcome):
        cache = ResultCache()
        assert cache.peek(self._key(0)) is None
        assert cache.stats.requests == 0

    def test_disk_hit_promotes_to_memory(self, graph, outcome, tmp_path):
        seeded = ResultCache.with_dir(tmp_path)
        seeded.put(self._key(0), outcome)
        fresh = ResultCache.with_dir(tmp_path)
        assert len(fresh.memory) == 0
        assert fresh.get(self._key(0)) is not None
        assert len(fresh.memory) == 1  # promoted: second hit skips the disk
        assert fresh.memory.get(self._key(0)) is not None

    def test_clear_empties_both_layers(self, graph, outcome, tmp_path):
        cache = ResultCache.with_dir(tmp_path)
        cache.put(self._key(0), outcome)
        assert cache.clear() == 1
        assert len(cache) == 0 and cache.get(self._key(0)) is None

    def test_resolve_cache_specs(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert isinstance(resolve_cache(True), ResultCache)
        disk_backed = resolve_cache(str(tmp_path / "c"))
        assert disk_backed.disk is not None
        ready = ResultCache()
        assert resolve_cache(ready) is ready
        with pytest.raises(ValueError, match="unknown cache spec"):
            resolve_cache(42)


class TestCachingBackend:
    GRID: ClassVar[dict] = {"alpha": (0.05, 0.01), "eps": (1e-4,)}

    def _jobs(self, seeds=(0, 100, 200)):
        return list(job_grid(seeds, "pr-nibble", self.GRID))

    def test_second_run_is_all_hits_and_zero_diffusions(self, graph, monkeypatch):
        cache = ResultCache()
        engine = BatchEngine(graph, cache=cache, include_vectors=False)
        jobs = self._jobs()
        first = engine.run(jobs, NCPReducer(graph.num_vertices))
        assert cache.stats.misses == len(jobs) and cache.stats.hits == 0

        calls = []
        real_run_job = executor_module.run_job
        monkeypatch.setattr(
            executor_module, "run_job", lambda *a, **k: calls.append(a) or real_run_job(*a, **k)
        )
        second = engine.run(jobs, NCPReducer(graph.num_vertices))
        assert calls == []  # zero diffusion calls on the warm run
        assert cache.stats.hits == len(jobs)
        assert second.runs == first.runs
        assert np.array_equal(second.conductance, first.conductance)

    def test_cached_flag_marks_replays(self, graph):
        engine = BatchEngine(graph, cache=True)
        jobs = [DiffusionJob.make(0)]
        assert [o.cached for o in engine.run(jobs)] == [False]
        assert [o.cached for o in engine.run(jobs)] == [True]

    def test_stats_reducer_excludes_replayed_counters(self, graph):
        """A cache hit echoes the *original* run's counters; BatchStats
        must not fold them into this run's work totals (the same exclusion
        rule BatchEngine.run applies to the recorded work-depth cost)."""
        from repro.engine import StatsReducer

        engine = BatchEngine(graph, cache=True)
        jobs = [DiffusionJob.make(0), DiffusionJob.make(100)]
        cold = engine.run(jobs, StatsReducer())
        warm = engine.run([*jobs, DiffusionJob.make(200)], StatsReducer())
        assert cold.cache_hits == 0
        assert cold.total_pushes > 0 and cold.job_seconds > 0
        fresh = engine.run([DiffusionJob.make(200)], StatsReducer())  # all-hit run
        assert fresh.cache_hits == 1
        # the warm run performed exactly one fresh diffusion (seed 200);
        # the two replays count as jobs + cache_hits, never as work.
        assert warm.jobs == 3
        assert warm.completed == 3
        assert warm.cache_hits == 2
        assert warm.by_method == {"pr-nibble": 3}
        uncached = BatchEngine(graph).run([DiffusionJob.make(200)], StatsReducer())
        assert warm.total_pushes == uncached.total_pushes
        assert warm.total_touched_edges == uncached.total_touched_edges
        assert warm.total_work == pytest.approx(uncached.total_work)
        assert warm.max_depth == pytest.approx(uncached.max_depth)

    def test_caching_session_replays_hits_across_batches(self, graph, monkeypatch):
        """The session protocol composes with caching: consecutive batches
        share one inner session and hot queries never reach it."""
        cache = ResultCache()
        engine = BatchEngine(graph, cache=cache)
        calls = []
        real_run_job = executor_module.run_job
        monkeypatch.setattr(
            executor_module, "run_job", lambda *a, **k: calls.append(a) or real_run_job(*a, **k)
        )
        with engine.open_session() as session:
            first = list(session.run([DiffusionJob.make(0), DiffusionJob.make(100)]))
            assert len(calls) == 2
            second = list(session.run([DiffusionJob.make(0), DiffusionJob.make(100)]))
            assert len(calls) == 2  # all hits: the inner session saw nothing
            assert session.batches == 1  # inner batches count dispatched misses
        assert session.closed
        assert [o.cached for o in first] == [False, False]
        assert [o.cached for o in second] == [True, True]
        for a, b in zip(first, second):
            assert np.array_equal(a.cluster, b.cluster)
        with pytest.raises(RuntimeError, match="closed"):
            session.run([DiffusionJob.make(0)])

    def test_duplicates_coalesce_within_one_batch(self, graph, monkeypatch):
        cache = ResultCache()
        engine = BatchEngine(graph, cache=cache)
        calls = []
        real_run_job = executor_module.run_job
        monkeypatch.setattr(
            executor_module, "run_job", lambda *a, **k: calls.append(a) or real_run_job(*a, **k)
        )
        jobs = [
            DiffusionJob.make(0, tag="first"),
            DiffusionJob.make(0, tag="second"),
            DiffusionJob.make([0, 0], tag="third"),  # same canonical seed set
        ]
        outcomes = engine.run(jobs)
        assert len(calls) == 1  # one diffusion served all three
        assert cache.stats.coalesced == 2
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.job.tag for o in outcomes] == ["first", "second", "third"]
        assert [o.cached for o in outcomes] == [False, True, True]
        for other in outcomes[1:]:
            assert np.array_equal(outcomes[0].cluster, other.cluster)

    def test_composes_with_process_backend(self, graph):
        cache = ResultCache()
        engine = BatchEngine(
            graph, backend="process", workers=2, cache=cache, include_vectors=False
        )
        jobs = self._jobs()
        cold = engine.run(jobs, NCPReducer(graph.num_vertices))
        warm = engine.run(jobs, NCPReducer(graph.num_vertices))
        assert engine.workers == 2
        assert cache.stats.hits == len(jobs)
        assert np.array_equal(cold.conductance, warm.conductance)
        serial = BatchEngine(graph, include_vectors=False).run(
            self._jobs(), NCPReducer(graph.num_vertices)
        )
        assert np.array_equal(cold.conductance, serial.conductance)

    def test_partial_overlap_dispatches_only_new_jobs(self, graph):
        cache = ResultCache()
        engine = BatchEngine(graph, cache=cache, include_vectors=False)
        engine.run(self._jobs(seeds=(0, 100)))
        engine.run(self._jobs(seeds=(0, 100, 200)))
        stats = cache.stats
        assert stats.hits == 2 * len(self.GRID["alpha"])
        assert stats.misses == 3 * len(self.GRID["alpha"])

    def test_vectorless_entry_cannot_serve_vector_request(self, graph):
        cache = ResultCache()
        slim = BatchEngine(graph, cache=cache, include_vectors=False)
        full = BatchEngine(graph, cache=cache, include_vectors=True)
        jobs = [DiffusionJob.make(0)]
        slim.run(jobs)
        outcomes = full.run(jobs)  # distinct key: must re-run, not replay
        assert not outcomes[0].cached
        assert outcomes[0].vector_keys is not None

    def test_wrapping_is_explicit_on_engine(self, graph):
        engine = BatchEngine(graph, cache=True)
        assert isinstance(engine.backend, CachingBackend)
        assert engine.cache is engine.backend.cache
        assert BatchEngine(graph).cache is None


class TestCachedAPIs:
    def test_ncp_profile_cached_bit_identical_to_uncached(self, graph):
        seeds = np.asarray([0, 150, 300, 450, 599])
        uncached = ncp_profile(graph, seeds=seeds, alphas=(0.05,), eps_values=(1e-4,))
        cache = ResultCache()
        cold = ncp_profile(
            graph, seeds=seeds, alphas=(0.05,), eps_values=(1e-4,), cache=cache
        )
        warm = ncp_profile(
            graph, seeds=seeds, alphas=(0.05,), eps_values=(1e-4,), cache=cache
        )
        assert cache.stats.hits == len(seeds)
        assert cold.runs == warm.runs == uncached.runs
        assert np.array_equal(cold.conductance, uncached.conductance)
        assert np.array_equal(warm.conductance, uncached.conductance)

    def test_cluster_many_cached_matches_local_cluster(self, graph):
        cache = ResultCache()
        seeds = [0, 100, 200]
        cold = cluster_many(graph, seeds, alpha=0.05, eps=1e-4, cache=cache)
        warm = cluster_many(graph, seeds, alpha=0.05, eps=1e-4, cache=cache)
        assert cache.stats.hits == len(seeds)
        for seed, a, b in zip(seeds, cold, warm):
            reference = local_cluster(graph, seed, alpha=0.05, eps=1e-4)
            assert np.array_equal(a.cluster, reference.cluster)
            assert np.array_equal(b.cluster, reference.cluster)
            assert a.conductance == b.conductance == reference.conductance

    def test_disk_cache_serves_fresh_process(self, graph, tmp_path):
        seeds = np.asarray([0, 150, 300])
        cold = ncp_profile(
            graph, seeds=seeds, alphas=(0.05,), eps_values=(1e-4,), cache=str(tmp_path)
        )
        fresh = ResultCache.with_dir(tmp_path)  # simulates a new process
        warm = ncp_profile(
            graph, seeds=seeds, alphas=(0.05,), eps_values=(1e-4,), cache=fresh
        )
        assert fresh.stats.misses == 0 and fresh.stats.hits == len(seeds)
        assert np.array_equal(cold.conductance, warm.conductance)

    def test_barbell_smoke_with_cache_true(self):
        graph = barbell_graph(8)
        first = cluster_many(graph, [0, 15], cache=True)
        assert [sorted(r.cluster.tolist()) for r in first] == [
            list(range(8)),
            list(range(8, 16)),
        ]
