"""Unit tests for the kernel plane's selection machinery (repro.kernels).

The contract: ``kernel=None`` is exactly the historical Python behaviour,
``"auto"`` degrades gracefully (never raises, silently picks ``"python"``
when no compiled backend exists), explicitly requesting an unavailable
backend fails loudly with an actionable message, and unknown names are a
``ValueError`` everywhere the knob surfaces (core, engine, serve, CLI).

Availability-dependent behaviour is tested twice: once against whatever
this environment really provides, and once against *simulated*
availability (monkeypatched probe caches), so the no-numba CI job and the
numba CI job both exercise every branch.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels_mod
from repro.engine import BatchEngine, DiffusionJob
from repro.engine.scheduler import KERNEL_COST_SCALE, estimate_cost, kernel_cost_scale
from repro.graph import CSRGraph, ShardedCSR, barbell_graph
from repro.kernels import (
    KERNELS,
    KernelUnavailableError,
    available_kernels,
    csr_arrays,
    ensure_warm,
    get_kernels,
    resolve_kernel,
)


def simulate(monkeypatch, available: tuple[str, ...]) -> None:
    """Pretend exactly ``available`` compiled backends probe successfully."""
    sets = {"python": kernels_mod._SETS["python"]}
    errors: dict[str, Exception] = {}
    for name in ("numba", "c"):
        if name in available:
            sets[name] = kernels_mod._SETS.get(name, object())
        else:
            errors[name] = KernelUnavailableError(
                kernels_mod._unavailable_message(name, ImportError("simulated"))
            )
    monkeypatch.setattr(kernels_mod, "_SETS", sets)
    monkeypatch.setattr(kernels_mod, "_ERRORS", errors)
    monkeypatch.setattr(kernels_mod, "_AUTO", None)


class TestResolveKernel:
    def test_none_and_python_mean_python(self):
        assert resolve_kernel(None) == "python"
        assert resolve_kernel("python") == "python"

    def test_unknown_kernel_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("fortran")

    def test_auto_resolves_to_an_available_kernel(self):
        assert resolve_kernel("auto") in available_kernels()

    def test_python_always_available(self):
        assert "python" in available_kernels()
        assert set(available_kernels()) <= set(KERNELS)

    def test_auto_prefers_numba_then_c_then_python(self, monkeypatch):
        simulate(monkeypatch, ("numba", "c"))
        assert resolve_kernel("auto") == "numba"
        simulate(monkeypatch, ("c",))
        assert resolve_kernel("auto") == "c"

    def test_auto_silently_falls_back_to_python(self, monkeypatch):
        simulate(monkeypatch, ())
        assert resolve_kernel("auto") == "python"
        # memoised: the second resolution must not re-probe
        assert resolve_kernel("auto") == "python"

    def test_explicit_numba_raises_actionable_error_when_missing(self, monkeypatch):
        simulate(monkeypatch, ())
        with pytest.raises(KernelUnavailableError, match=r"repro\[kernels\]"):
            resolve_kernel("numba")

    def test_explicit_c_raises_actionable_error_when_missing(self, monkeypatch):
        simulate(monkeypatch, ())
        with pytest.raises(KernelUnavailableError, match="compiler"):
            resolve_kernel("c")

    def test_environment_matches_probe(self):
        # Whatever this host really has: requesting each available kernel
        # succeeds, requesting each unavailable one raises.
        ready = available_kernels()
        for name in KERNELS:
            if name in ready:
                assert resolve_kernel(name) == name
                assert get_kernels(name) is not None
            else:
                with pytest.raises(KernelUnavailableError):
                    resolve_kernel(name)


class TestCSRArrays:
    def test_csr_graph_exposes_arrays(self):
        graph = barbell_graph(6)
        arrays = csr_arrays(graph)
        assert arrays is not None
        offsets, neighbors = arrays
        assert offsets is graph.offsets and neighbors is graph.neighbors

    def test_shard_view_escalates_to_python(self):
        graph = barbell_graph(6)
        with ShardedCSR.create(graph, shards=2) as sharded:
            with sharded.view() as view:
                assert csr_arrays(view) is None

    def test_non_graph_objects_return_none(self):
        assert csr_arrays(object()) is None
        assert csr_arrays(None) is None


class TestEnsureWarm:
    def test_memoised_second_call_is_free(self):
        first = ensure_warm("python")
        assert first >= 0.0
        assert ensure_warm("python") == 0.0
        for name in available_kernels():
            ensure_warm(name)
            assert ensure_warm(name) == 0.0

    def test_unknown_kernel_still_raises(self):
        with pytest.raises(ValueError):
            ensure_warm("fortran")


class TestExtraCflags:
    """The sanitizer hook: extra build flags come from the environment,
    land in the cache tag, and can never relax IEEE-754 strictness."""

    def test_absent_env_means_no_extra_flags(self, monkeypatch):
        from repro.kernels import _ckernels

        monkeypatch.delenv(_ckernels.EXTRA_CFLAGS_ENV, raising=False)
        assert _ckernels._extra_cflags() == []

    def test_flags_are_shlex_split(self, monkeypatch):
        from repro.kernels import _ckernels

        monkeypatch.setenv(
            _ckernels.EXTRA_CFLAGS_ENV, "-g -fsanitize=address,undefined"
        )
        assert _ckernels._extra_cflags() == ["-g", "-fsanitize=address,undefined"]

    @pytest.mark.parametrize(
        "flag", ["-ffast-math", "-Ofast", "-ffp-contract=fast"]
    )
    def test_fast_math_injection_rejected(self, monkeypatch, flag):
        """Regression (invariant `fast-math`): the determinism contract is
        not environment-overridable — a value-changing FP flag raises
        before any compiler runs."""
        from repro.kernels import _ckernels

        monkeypatch.setenv(_ckernels.EXTRA_CFLAGS_ENV, f"-g {flag}")
        with pytest.raises(_ckernels.KernelBuildError, match="bit-identity"):
            _ckernels._extra_cflags()

    def test_cflags_keep_the_determinism_pins(self):
        from repro.kernels import _ckernels

        assert "-ffp-contract=off" in _ckernels.CFLAGS
        assert "-fno-fast-math" in _ckernels.CFLAGS
        for flag in _ckernels.CFLAGS:
            assert flag not in _ckernels._FORBIDDEN_CFLAGS


class TestSchedulerScale:
    def test_python_and_none_scale_is_unity(self):
        assert kernel_cost_scale(None) == 1.0
        assert kernel_cost_scale("python") == 1.0

    def test_compiled_kernels_scale_below_unity(self, monkeypatch):
        simulate(monkeypatch, ("numba", "c"))
        assert kernel_cost_scale("numba") == KERNEL_COST_SCALE["numba"] < 1.0
        assert kernel_cost_scale("c") == KERNEL_COST_SCALE["c"] < 1.0

    def test_bad_kernels_never_raise_in_scheduling(self, monkeypatch):
        simulate(monkeypatch, ())
        assert kernel_cost_scale("fortran") == 1.0
        assert kernel_cost_scale("numba") == 1.0  # unavailable -> python-like

    def test_estimate_cost_scales_by_job_kernel(self, monkeypatch):
        simulate(monkeypatch, ("c",))
        python_job = DiffusionJob.make(0, params={"alpha": 0.05, "eps": 1e-6})
        compiled_job = DiffusionJob.make(
            0, params={"alpha": 0.05, "eps": 1e-6}, kernel="c"
        )
        assert estimate_cost(compiled_job) == pytest.approx(
            KERNEL_COST_SCALE["c"] * estimate_cost(python_job)
        )


class TestKnobSurfaces:
    """The knob is validated eagerly at every layer it surfaces."""

    def test_engine_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            BatchEngine(barbell_graph(4), kernel="fortran")

    def test_engine_rejects_unavailable_kernel(self, monkeypatch):
        simulate(monkeypatch, ())
        with pytest.raises(KernelUnavailableError):
            BatchEngine(barbell_graph(4), kernel="numba")

    def test_local_cluster_rejects_unknown_kernel(self):
        from repro import local_cluster

        with pytest.raises(ValueError, match="unknown kernel"):
            local_cluster(barbell_graph(4), 0, kernel="fortran")

    def test_parallel_paths_validate_but_ignore(self):
        # The BSP diffusions and the parallel sweep have no compiled twin;
        # the knob must still be validated there, not silently dropped.
        from repro import local_cluster

        with pytest.raises(ValueError, match="unknown kernel"):
            local_cluster(barbell_graph(4), 0, parallel=True, kernel="fortran")
        result = local_cluster(barbell_graph(4), 0, parallel=True, kernel="auto")
        assert result.size > 0

    def test_methods_without_twins_accept_the_knob(self):
        from repro import local_cluster

        for method in ("nibble", "hk-pr"):
            plain = local_cluster(barbell_graph(6), 0, method=method, parallel=False)
            knobbed = local_cluster(
                barbell_graph(6), 0, method=method, parallel=False, kernel="auto"
            )
            assert np.array_equal(plain.cluster, knobbed.cluster)
            with pytest.raises(ValueError, match="unknown kernel"):
                local_cluster(
                    barbell_graph(6), 0, method=method, parallel=False, kernel="fortran"
                )

    def test_service_validates_kernel_synchronously(self):
        import asyncio

        from repro.serve import DiffusionService

        async def scenario():
            async with DiffusionService(barbell_graph(6)) as service:
                with pytest.raises(ValueError, match="unknown kernel"):
                    service.submit_query(0, kernel="fortran")
                outcome = await service.submit_query(0, kernel="auto", eps=1e-4)
                return outcome.size

        assert asyncio.run(scenario()) > 0

    def test_cli_kernels_command(self, capsys):
        from repro.cli import main

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "python" in out and "auto ->" in out

    def test_cli_cluster_accepts_kernel_flag(self, capsys, tmp_path):
        from repro.cli import main

        graph = barbell_graph(8)
        from repro.graph import save_npz

        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert main(["cluster", str(path), "--kernel", "auto", "--param", "eps=1e-5"]) == 0
        assert "cluster:" in capsys.readouterr().out


class TestGraphIntegration:
    def test_kernels_see_shared_memory_graphs(self):
        # A zero-copy attached graph exposes ndarray offsets/neighbors, so
        # compiled kernels engage on it exactly as on the original.
        from repro.graph.shared import SharedCSR

        graph = barbell_graph(8)
        with graph.share() as shared:
            with SharedCSR.attach(shared.handle()) as attached:
                assert isinstance(attached.graph, CSRGraph)
                arrays = csr_arrays(attached.graph)
                assert arrays is not None
                assert np.array_equal(arrays[0], graph.offsets)
