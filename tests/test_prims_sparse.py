"""Tests for the sparse sets (repro.prims.sparse)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prims import SparseDict, SparseVector


class TestSparseDict:
    def test_missing_key_reads_bottom(self):
        p = SparseDict()
        assert p[123] == 0.0
        assert 123 not in p  # reading does not materialise an entry
        assert len(p) == 0

    def test_set_and_add(self):
        p = SparseDict()
        p[1] = 2.0
        p.add(1, 0.5)
        p.add(2, 1.0)
        assert p[1] == 2.5
        assert p[2] == 1.0
        assert p.nnz == 2

    def test_copy_is_independent(self):
        p = SparseDict({1: 1.0})
        q = p.copy()
        q[1] = 9.0
        assert p[1] == 1.0

    def test_l1_norm(self):
        p = SparseDict({1: 0.5, 2: -0.25})
        assert p.l1_norm() == 0.75

    def test_items_and_iter(self):
        p = SparseDict({1: 1.0, 2: 2.0})
        assert dict(p.items()) == {1: 1.0, 2: 2.0}
        assert sorted(p) == [1, 2]
        assert sorted(p.keys()) == [1, 2]

    def test_to_dict_detached(self):
        p = SparseDict({3: 1.0})
        d = p.to_dict()
        d[3] = 5.0
        assert p[3] == 1.0


class TestSparseVector:
    def test_bottom_semantics(self):
        v = SparseVector()
        assert v[55] == 0.0
        assert v.get(np.array([1, 2])).tolist() == [0.0, 0.0]
        assert len(v) == 0

    def test_from_pairs_and_items(self):
        v = SparseVector.from_pairs(np.array([4, 2]), np.array([1.0, 2.0]))
        assert v.to_dict() == {4: 1.0, 2: 2.0}

    def test_from_pairs_broadcast_scalar(self):
        v = SparseVector.from_pairs(np.array([1, 2, 3]), 0.25)
        assert v.to_dict() == {1: 0.25, 2: 0.25, 3: 0.25}

    def test_from_dict(self):
        v = SparseVector.from_dict({7: 1.5, 8: 2.5})
        assert v.to_dict() == {7: 1.5, 8: 2.5}

    def test_add_aggregates_duplicates(self):
        v = SparseVector()
        v.add(np.array([3, 3, 4]), np.array([0.5, 0.5, 1.0]))
        assert v.to_dict() == {3: 1.0, 4: 1.0}

    def test_set_then_get_roundtrip(self):
        v = SparseVector()
        keys = np.arange(100, dtype=np.int64) * 7
        values = np.linspace(0, 1, 100)
        v.set(keys, values)
        assert np.allclose(v.get(keys), values)

    def test_scalar_interface(self):
        v = SparseVector()
        v[9] = 1.0
        v.add_scalar(9, 0.5)
        assert v[9] == 1.5
        assert 9 in v and 10 not in v

    def test_copy_is_independent(self):
        v = SparseVector.from_pairs(np.array([1]), np.array([1.0]))
        w = v.copy()
        w.add(np.array([1]), np.array([1.0]))
        assert v[1] == 1.0
        assert w[1] == 2.0

    def test_l1_norm_and_nnz(self):
        v = SparseVector.from_pairs(np.array([1, 2]), np.array([0.5, -0.5]))
        assert v.l1_norm() == 1.0
        assert v.nnz == 2

    def test_keys_match_items(self):
        v = SparseVector.from_pairs(np.array([10, 20, 30]), 1.0)
        assert sorted(v.keys().tolist()) == [10, 20, 30]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            max_size=100,
        )
    )
    def test_add_matches_dict_model(self, updates):
        v = SparseVector()
        model: dict[int, float] = {}
        if updates:
            keys = np.asarray([k for k, _ in updates], dtype=np.int64)
            deltas = np.asarray([d for _, d in updates])
            v.add(keys, deltas)
            for k, d in updates:
                model[k] = model.get(k, 0.0) + d
        assert v.nnz == len(model)
        for k, value in model.items():
            assert v[k] == pytest.approx(value, rel=1e-9, abs=1e-12)
