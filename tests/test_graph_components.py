"""Tests for connected components and subgraph extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    component_sizes,
    connected_components,
    from_edge_list,
    induced_subgraph,
    largest_component_vertices,
)


@pytest.fixture
def two_triangles():
    # Components {0,1,2} and {3,4,5}, plus isolated vertex 6.
    return from_edge_list([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], num_vertices=7)


class TestConnectedComponents:
    def test_labels_two_triangles(self, two_triangles):
        labels = connected_components(two_triangles)
        assert labels.tolist() == [0, 0, 0, 3, 3, 3, 6]

    def test_component_sizes(self, two_triangles):
        sizes = component_sizes(connected_components(two_triangles))
        assert sizes == {0: 3, 3: 3, 6: 1}

    def test_edgeless_graph(self):
        graph = from_edge_list([], num_vertices=4)
        assert connected_components(graph).tolist() == [0, 1, 2, 3]

    def test_giant_component(self, planted):
        labels = connected_components(planted)
        # Planted partition with inter-community edges has a giant
        # component covering almost all vertices (stray degree-0 vertices
        # can occur under binomial edge sampling).
        _, counts = np.unique(labels, return_counts=True)
        assert counts.max() >= 0.99 * planted.num_vertices

    def test_long_path_converges(self):
        # Pointer jumping must handle diameter >> number of rounds naively.
        n = 500
        graph = from_edge_list([(i, i + 1) for i in range(n - 1)])
        labels = connected_components(graph)
        assert (labels == 0).all()


class TestLargestComponent:
    def test_largest_of_unbalanced(self):
        graph = from_edge_list([(0, 1), (2, 3), (3, 4), (2, 4)], num_vertices=5)
        assert largest_component_vertices(graph).tolist() == [2, 3, 4]


class TestInducedSubgraph:
    def test_extract_triangle(self, two_triangles):
        subgraph, old_ids = induced_subgraph(two_triangles, np.array([3, 4, 5]))
        assert subgraph.num_vertices == 3
        assert subgraph.num_edges == 3
        assert old_ids.tolist() == [3, 4, 5]

    def test_cross_edges_dropped(self, two_triangles):
        subgraph, _ = induced_subgraph(two_triangles, np.array([0, 1, 3]))
        assert subgraph.num_edges == 1  # only (0, 1) survives

    def test_matches_networkx(self, planted):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(0)
        chosen = rng.choice(planted.num_vertices, size=50, replace=False)
        subgraph, old_ids = induced_subgraph(planted, chosen)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(planted.num_vertices))
        sources, targets = planted.gather_edges(np.arange(planted.num_vertices))
        nx_graph.add_edges_from(zip(sources.tolist(), targets.tolist()))
        nx_sub = nx_graph.subgraph(old_ids.tolist())
        assert subgraph.num_edges == nx_sub.number_of_edges()
