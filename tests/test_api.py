"""Tests for the high-level API (repro.core.api)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LocalClusterer, local_cluster
from repro.core import ALGORITHMS
from repro.core.quality import cluster_stats


class TestLocalCluster:
    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_every_method_finds_barbell_clique(self, barbell, method):
        overrides = {"eps": 1e-5} if method in ("nibble", "pr-nibble") else {}
        result = local_cluster(barbell, 0, method=method, **overrides)
        assert sorted(result.cluster.tolist()) == list(range(10))
        assert result.conductance == pytest.approx(1 / 91)
        assert result.algorithm == method
        assert result.size == 10

    def test_reported_conductance_is_consistent(self, planted):
        result = local_cluster(planted, 0, method="pr-nibble", eps=1e-5)
        stats = cluster_stats(planted, result.cluster)
        assert stats.conductance == pytest.approx(result.conductance)

    def test_unknown_method_rejected(self, barbell):
        with pytest.raises(ValueError, match="unknown method"):
            local_cluster(barbell, 0, method="spectral")

    def test_bad_param_override_raises(self, barbell):
        with pytest.raises(TypeError):
            local_cluster(barbell, 0, method="pr-nibble", nonsense=3)

    def test_sequential_mode(self, barbell):
        result = local_cluster(barbell, 0, method="nibble", parallel=False, eps=1e-5)
        assert sorted(result.cluster.tolist()) == list(range(10))

    def test_param_overrides_propagate(self, planted):
        result = local_cluster(planted, 0, method="pr-nibble", alpha=0.2, eps=1e-4)
        assert result.params["alpha"] == 0.2
        assert result.params["eps"] == 1e-4

    def test_cluster_sorted_by_vertex_id(self, planted):
        result = local_cluster(planted, 0, method="pr-nibble", eps=1e-5)
        assert np.array_equal(result.cluster, np.sort(result.cluster))

    def test_multi_seed(self, planted):
        result = local_cluster(planted, np.array([0, 1]), method="hk-pr", t=5.0, eps=1e-4)
        assert result.size >= 1

    def test_str(self, barbell):
        result = local_cluster(barbell, 0, method="pr-nibble", eps=1e-5)
        assert "pr-nibble" in str(result)
        assert "phi=" in str(result)

    def test_rng_controls_randomized_method(self, planted):
        a = local_cluster(planted, 0, method="rand-hk-pr", rng=5, num_walks=2000)
        b = local_cluster(planted, 0, method="rand-hk-pr", rng=5, num_walks=2000)
        assert np.array_equal(a.cluster, b.cluster)


class TestLocalClusterer:
    def test_all_methods(self, barbell):
        clusterer = LocalClusterer(barbell)
        results = clusterer.all_methods(0)
        assert set(results) == set(ALGORITHMS)
        for result in results.values():
            assert result.size >= 1

    def test_individual_methods(self, planted):
        clusterer = LocalClusterer(planted)
        assert clusterer.nibble(0, eps=1e-5).size >= 1
        assert clusterer.pr_nibble(0, eps=1e-5).size >= 1
        assert clusterer.hk_pr(0, t=5.0, eps=1e-4).size >= 1
        assert clusterer.rand_hk_pr(0, num_walks=2000).size >= 1

    def test_sequential_clusterer(self, barbell):
        clusterer = LocalClusterer(barbell, parallel=False)
        result = clusterer.pr_nibble(0, eps=1e-5)
        assert sorted(result.cluster.tolist()) == list(range(10))
