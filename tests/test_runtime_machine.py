"""Tests for the simulated multicore machine (repro.runtime.machine)."""

from __future__ import annotations

import pytest

from repro.runtime import DEFAULT_CONTENTION, PAPER_MACHINE, MachineModel, WorkDepthTracker


def _profile(work: float, depth: float, category: str = "misc") -> WorkDepthTracker:
    tracker = WorkDepthTracker()
    tracker.record(work, depth, category=category)
    return tracker


class TestThreadAccounting:
    def test_threads_for_cores_paper_convention(self):
        # One thread per core below the core count; hyper-threading at the top.
        assert PAPER_MACHINE.threads_for_cores(1) == 1
        assert PAPER_MACHINE.threads_for_cores(16) == 16
        assert PAPER_MACHINE.threads_for_cores(40) == 80

    def test_threads_for_cores_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.threads_for_cores(0)

    def test_raw_parallelism_linear_then_smt(self):
        assert PAPER_MACHINE.raw_parallelism(10) == 10
        assert PAPER_MACHINE.raw_parallelism(40) == 40
        # 80 threads = 40 cores + 40 hyper-threads at smt_gain each.
        expected = 40 + PAPER_MACHINE.smt_gain * 40
        assert PAPER_MACHINE.raw_parallelism(80) == pytest.approx(expected)

    def test_raw_parallelism_caps_at_max_threads(self):
        assert PAPER_MACHINE.raw_parallelism(1000) == PAPER_MACHINE.raw_parallelism(80)

    def test_effective_parallelism_below_raw(self):
        for threads in (2, 8, 40, 80):
            raw = PAPER_MACHINE.raw_parallelism(threads)
            for category in DEFAULT_CONTENTION:
                assert PAPER_MACHINE.effective_parallelism(threads, category) <= raw

    def test_contention_ordering(self):
        # Independent random walks contend less than scattered edge updates.
        walks = PAPER_MACHINE.effective_parallelism(80, "walk")
        edges = PAPER_MACHINE.effective_parallelism(80, "edge_map")
        assert walks > edges


class TestSimulatedTime:
    def test_monotone_decreasing_in_cores_for_work_heavy_profile(self):
        profile = _profile(work=1e8, depth=100)
        times = [PAPER_MACHINE.simulated_time_on_cores(profile, c) for c in (1, 2, 4, 8, 16, 40)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_depth_dominated_profile_does_not_speed_up(self):
        # Tiny work, long critical path: the paper's 3D-grid / nlpkkt240
        # situation ("not enough work to benefit from parallelism").
        profile = _profile(work=10, depth=1e6)
        assert PAPER_MACHINE.self_relative_speedup(profile, 40) < 1.5

    def test_speedup_bands_match_paper(self):
        # Work-dominated edge_map-heavy profile: the diffusions' regime.
        diffusion = _profile(work=1e9, depth=1e3, category="edge_map")
        speedup = PAPER_MACHINE.self_relative_speedup(diffusion, 40)
        assert 9.0 <= speedup <= 35.0
        # Walk-dominated profile: rand-HK-PR exceeds 40x thanks to SMT.
        walks = _profile(work=1e9, depth=1e3, category="walk")
        assert PAPER_MACHINE.self_relative_speedup(walks, 40) > 40.0

    def test_speedup_curve_shape(self):
        profile = _profile(work=1e9, depth=1e3, category="edge_map")
        curve = PAPER_MACHINE.speedup_curve(profile, [1, 2, 4, 8, 16, 24, 32, 40])
        assert curve[0] == pytest.approx(1.0)
        assert all(b > a for a, b in zip(curve, curve[1:]))

    def test_mixed_categories_sum(self):
        tracker = WorkDepthTracker()
        tracker.record(1e6, 10, category="sort")
        tracker.record(1e6, 10, category="walk")
        mixed = PAPER_MACHINE.simulated_time(tracker, 40)
        sort_only = PAPER_MACHINE.simulated_time(_profile(1e6, 10, "sort"), 40)
        walk_only = PAPER_MACHINE.simulated_time(_profile(1e6, 10, "walk"), 40)
        # Work terms add; the shared depth term is counted once per record.
        assert mixed == pytest.approx(sort_only + walk_only, rel=1e-9)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.simulated_time(_profile(1, 1), threads=0)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MachineModel(physical_cores=0)
        with pytest.raises(ValueError):
            MachineModel(smt_per_core=0)
        with pytest.raises(ValueError):
            MachineModel(smt_gain=1.5)

    def test_custom_machine(self):
        laptop = MachineModel(physical_cores=4, smt_per_core=2, smt_gain=0.2)
        assert laptop.max_threads == 8
        assert laptop.threads_for_cores(4) == 8
        profile = _profile(1e8, 10, "scan")
        assert laptop.self_relative_speedup(profile, 4) < PAPER_MACHINE.self_relative_speedup(
            profile, 40
        )
