"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph import (
    barbell_graph,
    cycle_graph,
    paper_figure1_graph,
    planted_partition,
)

# Hypothesis: the property tests exercise numpy-heavy code whose first call
# can be slow (allocation, caching); disable the deadline and the
# too-slow health check so CI machines of any speed pass deterministically.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def figure1():
    """The paper's Figure 1 example graph (n=8, m=8, vertices A..H = 0..7)."""
    return paper_figure1_graph()


@pytest.fixture
def barbell():
    """Two 10-cliques joined by one bridge edge; the clique is the best cut."""
    return barbell_graph(10)


@pytest.fixture
def small_cycle():
    return cycle_graph(12)


@pytest.fixture(scope="session")
def planted():
    """Planted-partition graph: 20 communities of 100 vertices each.

    Session-scoped: several modules use it for end-to-end recovery tests
    and it is deterministic.
    """
    return planted_partition(2000, 20, intra_degree=8.0, inter_degree=1.0, seed=7)


@pytest.fixture(scope="session")
def planted_community():
    """Ground-truth community of vertex 0 in the ``planted`` fixture."""
    return np.arange(100, dtype=np.int64)
