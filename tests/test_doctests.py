"""Execute the runnable examples embedded in module docstrings.

The newest planes (serving, scheduler, shared-memory and sharded graph)
document themselves with small executable examples; this hook runs them
as part of tier-1 so a drifting API breaks the docs loudly instead of
silently.  Each listed module must contain at least one example — an
empty doctest run would mean the documentation was deleted, which is as
much a failure as a wrong one.
"""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.engine
import repro.engine.scheduler
import repro.graph.shared
import repro.graph.sharded
import repro.kernels
import repro.prims.scan
import repro.serve.service

MODULES = [
    repro,
    repro.engine,
    repro.engine.scheduler,
    repro.graph.shared,
    repro.graph.sharded,
    repro.kernels,
    repro.prims.scan,
    repro.serve.service,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert result.attempted > 0, (
        f"{module.__name__} documents no runnable examples; add one to its "
        "docstring (and keep this hook honest)"
    )
    assert result.failed == 0
