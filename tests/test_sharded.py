"""Tests for the sharded graph plane (repro.graph.sharded).

The contract under test: a :class:`ShardedCSR` partitions the CSR into
contiguous vertex-range shards whose lazily attaching
:class:`ShardedGraphView` answers every graph read — and therefore every
diffusion + sweep — **bit-identically** to the unsharded graph, including
the recorded work-depth profile; residency caps and spill thresholds
change memory behaviour, never results; and shard segments never leak
(the same ``/dev/shm`` audit the PR-3 graph plane is held to).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DiffusionJob
from repro.engine.executor import run_job
from repro.graph import (
    CSRGraph,
    ShardedCSR,
    ShardSpill,
    barbell_graph,
    rand_local,
    star_graph,
)
from repro.graph.sharded import ShardMap, plan_boundaries
from repro.graph.shared import SEGMENT_PREFIX


def shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-POSIX host
        pytest.skip("no /dev/shm to audit on this platform")
    return [f for f in os.listdir("/dev/shm") if f.startswith(SEGMENT_PREFIX)]


@pytest.fixture(scope="module")
def graph():
    return rand_local(1500, seed=9)


def assert_outcome_identical(a, b):
    assert np.array_equal(a.cluster, b.cluster)
    assert a.conductance == b.conductance
    assert a.pushes == b.pushes
    assert a.iterations == b.iterations
    assert a.support_size == b.support_size
    assert a.work == b.work and a.depth == b.depth
    assert np.array_equal(a.vector_keys, b.vector_keys)
    assert np.array_equal(a.vector_values, b.vector_values)


class TestPlanBoundaries:
    def test_boundaries_cover_vertex_range(self, graph):
        bounds = plan_boundaries(graph.offsets, 4)
        assert bounds[0] == 0 and bounds[-1] == graph.num_vertices
        assert len(bounds) == 5
        assert all(b1 <= b2 for b1, b2 in zip(bounds, bounds[1:]))

    def test_shards_are_volume_balanced(self, graph):
        bounds = plan_boundaries(graph.offsets, 4)
        volumes = [
            int(graph.offsets[hi] - graph.offsets[lo])
            for lo, hi in zip(bounds, bounds[1:])
        ]
        mean = graph.total_volume / 4
        # linspace cuts land within one vertex's degree of the ideal split
        assert max(volumes) <= 2 * mean

    def test_more_shards_than_vertices_clamps(self):
        tiny = barbell_graph(3)  # n = 6
        bounds = plan_boundaries(tiny.offsets, 100)
        assert bounds[-1] == tiny.num_vertices
        assert len(bounds) <= tiny.num_vertices + 1

    def test_single_shard_is_whole_graph(self, graph):
        assert plan_boundaries(graph.offsets, 1) == (0, graph.num_vertices)


class TestShardMap:
    def test_shard_of_routes_every_vertex(self, graph):
        sharded_map = ShardMap(plan_boundaries(graph.offsets, 5))
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        owners = sharded_map.shard_of(vertices)
        for k in range(sharded_map.num_shards):
            lo, hi = sharded_map.span(k)
            assert np.all(owners[lo:hi] == k)

    def test_scalar_and_vector_agree(self, graph):
        sharded_map = ShardMap(plan_boundaries(graph.offsets, 3))
        for v in (0, 1, graph.num_vertices - 1, graph.num_vertices // 2):
            assert sharded_map.shard_of(v) == int(
                sharded_map.shard_of(np.asarray([v]))[0]
            )

    def test_shards_of_seed_sets(self, graph):
        sharded_map = ShardMap(plan_boundaries(graph.offsets, 4))
        lo, hi = sharded_map.span(2)
        assert sharded_map.shards_of([lo]) == (2,)
        assert sharded_map.shards_of([0, lo, graph.num_vertices - 1]) == (
            0,
            2,
            sharded_map.num_shards - 1,
        )
        assert sharded_map.shards_of([]) == ()


class TestViewReads:
    """Every read the algorithms perform, view vs unsharded graph."""

    def test_degrees_neighbors_gather(self, graph):
        rng = np.random.default_rng(3)
        vertices = rng.integers(0, graph.num_vertices, 400).astype(np.int64)
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view() as view:
                assert view.num_vertices == graph.num_vertices
                assert view.num_edges == graph.num_edges
                assert view.total_volume == graph.total_volume
                assert view.fingerprint() == graph.fingerprint()
                assert np.array_equal(view.degrees(vertices), graph.degrees(vertices))
                assert np.array_equal(view.degrees(), graph.degrees())
                assert view.volume(vertices) == graph.volume(vertices)
                sources, targets = view.gather_edges(vertices)
                ref_sources, ref_targets = graph.gather_edges(vertices)
                assert np.array_equal(sources, ref_sources)
                assert np.array_equal(targets, ref_targets)
                for v in vertices[:25].tolist():
                    assert np.array_equal(view.neighbors_of(v), graph.neighbors_of(v))
                    assert view.degree(v) == graph.degree(v)

    def test_neighbor_at_and_has_edge(self, graph):
        rng = np.random.default_rng(4)
        vertices = rng.integers(0, graph.num_vertices, 200).astype(np.int64)
        degrees = graph.degrees(vertices)
        keep = degrees > 0
        vertices, degrees = vertices[keep], degrees[keep]
        pick = (rng.random(len(vertices)) * degrees).astype(np.int64)
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view() as view:
                assert np.array_equal(
                    view.neighbor_at(vertices, pick), graph.neighbor_at(vertices, pick)
                )
                for v in vertices[:10].tolist():
                    w = int(graph.neighbors_of(v)[0])
                    assert view.has_edge(v, w) and graph.has_edge(v, w)
                    assert view.has_edge(v, v) == graph.has_edge(v, v)

    def test_empty_inputs(self, graph):
        with ShardedCSR.create(graph, shards=3) as sharded:
            with sharded.view() as view:
                none = np.empty(0, dtype=np.int64)
                assert np.array_equal(view.degrees(none), graph.degrees(none))
                sources, targets = view.gather_edges(none)
                assert len(sources) == 0 and len(targets) == 0

    def test_star_graph_with_empty_shards(self):
        """A degree-skewed graph can produce empty shards; routing and
        reads must still be exact."""
        star = star_graph(64)
        with ShardedCSR.create(star, shards=8) as sharded:
            with sharded.view() as view:
                everything = np.arange(star.num_vertices, dtype=np.int64)
                assert np.array_equal(view.degrees(everything), star.degrees(everything))
                sources, targets = view.gather_edges(everything)
                ref = star.gather_edges(everything)
                assert np.array_equal(sources, ref[0])
                assert np.array_equal(targets, ref[1])


class TestJobEquivalence:
    @pytest.mark.parametrize(
        "method,params",
        [
            ("pr-nibble", {"eps": 1e-5}),
            ("nibble", {}),
            ("hk-pr", {}),
            ("rand-hk-pr", {"num_walks": 400}),
        ],
    )
    def test_all_methods_bit_identical(self, graph, method, params):
        job = DiffusionJob.make(11, method=method, params=params, rng=5)
        reference = run_job(graph, job)
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view() as view:
                outcome = run_job(view, job)
        assert_outcome_identical(reference, outcome)

    def test_eviction_under_max_resident_is_exact(self, graph):
        job = DiffusionJob.make(7, params={"alpha": 0.01, "eps": 1e-6})
        reference = run_job(graph, job)
        with ShardedCSR.create(graph, shards=6) as sharded:
            with sharded.view(max_resident=1) as view:
                outcome = run_job(view, job)
                assert view.resident_shards <= 1
                assert view.detaches > 0  # the cap actually bit
        assert_outcome_identical(reference, outcome)


class TestShardBoundaryProperty:
    """The ISSUE's acceptance property: seeds adjacent to a shard cut."""

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=60, max_value=400),
        graph_seed=st.integers(min_value=0, max_value=2**16),
        eps=st.sampled_from([1e-3, 1e-4, 1e-5]),
    )
    def test_cut_adjacent_seeds_bit_identical(self, n, graph_seed, eps):
        graph = rand_local(n, seed=graph_seed)
        with ShardedCSR.create(graph, shards=2) as sharded:
            cut = sharded.map.boundaries[1]
            # Seeds adjacent to the cut: the last vertex of shard 0 and the
            # first of shard 1, plus a vertex with a genuinely crossing
            # edge when one exists — pushes from these leave their home
            # shard in the first wave.
            seeds = {max(cut - 1, 0), min(cut, n - 1)}
            sources, targets = graph.gather_edges(np.arange(n, dtype=np.int64))
            crossing = sources[(sources < cut) & (targets >= cut)]
            if len(crossing):
                seeds.add(int(crossing[0]))
            for seed in sorted(seeds):
                job = DiffusionJob.make(seed, params={"alpha": 0.05, "eps": eps})
                reference = run_job(graph, job)
                with sharded.view() as view:
                    outcome = run_job(view, job)
                assert_outcome_identical(reference, outcome)


class TestSpill:
    def test_spill_raises_when_job_crosses_threshold(self, graph):
        with ShardedCSR.create(graph, shards=6) as sharded:
            with sharded.view(spill_shards=1) as view:
                # An expensive diffusion from a cut-adjacent seed must
                # touch a second shard and trip the threshold.
                cut = sharded.map.boundaries[1]
                job = DiffusionJob.make(cut - 1, params={"alpha": 0.005, "eps": 1e-7})
                with pytest.raises(ShardSpill):
                    run_job(view, job)

    def test_reset_spill_scopes_accounting_per_job(self, graph):
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view(spill_shards=2) as view:
                view.degrees(np.asarray([0]))
                view.degrees(np.asarray([graph.num_vertices - 1]))
                with pytest.raises(ShardSpill):
                    view.degrees(np.asarray([sharded.map.boundaries[2]]))
                view.reset_spill()
                # a fresh scope re-admits resident shards without spilling
                view.degrees(np.asarray([0, graph.num_vertices - 1]))

    def test_spill_budget_is_independent_of_residency(self, graph):
        """A job's spill budget counts ITS shards, not what earlier jobs
        left resident — with no residency cap, shards accumulate, and a
        later single-shard job must not inherit the batch's footprint."""
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view(spill_shards=2) as view:
                view.degrees(np.asarray([0]))                        # shard 0
                view.degrees(np.asarray([graph.num_vertices - 1]))   # shard 3
                assert view.resident_shards == 2
                view.reset_spill()
                # single-shard job: footprint 1 <= 2, must not spill even
                # though two shards from the previous job are resident
                view.degrees(np.asarray([sharded.map.boundaries[2]]))  # shard 2

    def test_validation(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            with pytest.raises(ValueError):
                sharded.view(max_resident=0)
            with pytest.raises(ValueError):
                sharded.view(spill_shards=0)
        with pytest.raises(ValueError):
            from repro.engine import ShardRouter

            ShardRouter(shards=0)


class TestHalo:
    """The boundary-row cache: repeat cross-shard reads are served from a
    small LRU of copied adjacency rows — no attach, no spill contribution,
    bit-identical rows — and a byte budget bounds it."""

    def test_hit_serves_row_without_attach(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            cut = sharded.map.boundaries[1]
            home, away = cut - 1, cut  # last vertex of shard 0, first of 1
            with sharded.view(max_resident=1) as view:
                view.neighbors_of(home)  # miss: attach shard 0, cache row
                view.neighbors_of(away)  # miss: attach shard 1 (evicts 0)
                attaches = view.attaches
                assert view.halo_misses == 2 and view.halo_hits == 0
                row = view.neighbors_of(home)  # shard 0 gone: halo serves it
                assert view.attaches == attaches  # no new attach
                assert view.halo_hits == 1
                assert np.array_equal(row, graph.neighbors_of(home))
                assert view.degree(home) == graph.degree(home)

    def test_resident_shard_reads_bypass_halo(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            with sharded.view() as view:
                view.neighbors_of(0)
                misses = view.halo_misses
                view.neighbors_of(0)  # shard now resident: halo not consulted
                assert view.halo_hits == 0
                assert view.halo_misses == misses

    def test_tiny_budget_evicts_and_stays_exact(self, graph):
        job = DiffusionJob.make(7, params={"alpha": 0.01, "eps": 1e-6})
        reference = run_job(graph, job)
        with ShardedCSR.create(graph, shards=6) as sharded:
            with sharded.view(max_resident=1, halo_bytes=256) as view:
                outcome = run_job(view, job)
                assert view.halo_evictions > 0  # the budget actually bit
                assert view._halo_nbytes <= view.halo_bytes + 8 * graph.num_vertices
        assert_outcome_identical(reference, outcome)

    def test_zero_budget_disables_cache(self, graph):
        job = DiffusionJob.make(7, params={"alpha": 0.01, "eps": 1e-6})
        reference = run_job(graph, job)
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view(max_resident=1, halo_bytes=0) as view:
                outcome = run_job(view, job)
                assert view.halo_hits == 0 and view.halo_misses == 0
                assert view.halo_evictions == 0
        assert_outcome_identical(reference, outcome)

    def test_negative_budget_rejected(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            with pytest.raises(ValueError, match="halo_bytes"):
                sharded.view(halo_bytes=-1)

    def test_halo_hits_do_not_count_toward_spill(self, graph):
        """A halo-served read never touches the neighbour shard, so it must
        not contribute to a job's spill footprint either."""
        with ShardedCSR.create(graph, shards=2) as sharded:
            cut = sharded.map.boundaries[1]
            home, away = cut - 1, cut
            with sharded.view(max_resident=1, spill_shards=1) as view:
                view.neighbors_of(away)  # warm the halo with shard 1's row
                view.reset_spill()
                view.neighbors_of(home)  # shard 0 attaches (evicts shard 1)
                view.reset_spill()
                # One job reading both sides of the cut: the shard-1 row
                # comes from the halo, so footprint stays at one shard.
                view.neighbors_of(home)
                view.neighbors_of(away)  # would spill without the halo
                assert view.halo_hits > 0
                assert view.resident_shards <= 1

    def test_vectorized_reads_consistent_with_scalar(self, graph):
        rng = np.random.default_rng(7)
        vertices = rng.integers(0, graph.num_vertices, 300).astype(np.int64)
        with ShardedCSR.create(graph, shards=4) as sharded:
            with sharded.view(max_resident=1) as view:
                # Two passes: the second is served largely from the halo.
                for _ in range(2):
                    assert np.array_equal(
                        view.degrees(vertices), graph.degrees(vertices)
                    )
                    sources, targets = view.gather_edges(vertices)
                    ref_sources, ref_targets = graph.gather_edges(vertices)
                    assert np.array_equal(sources, ref_sources)
                    assert np.array_equal(targets, ref_targets)
                assert view.halo_hits > 0

    def test_close_clears_halo(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            view = sharded.view(max_resident=1)
            cut = sharded.map.boundaries[1]
            view.neighbors_of(cut)
            view.neighbors_of(0)
            view.close()
            assert view._halo_nbytes == 0
            with pytest.raises(RuntimeError):
                view.neighbors_of(cut)  # halo gone; closed views stay closed


class TestLifecycle:
    def test_context_manager_unlinks_every_shard(self, graph):
        with ShardedCSR.create(graph, shards=3) as sharded:
            assert len(shm_entries()) == 6  # offsets + neighbors per shard
            assert len(sharded.segment_names()) == 6
        assert shm_entries() == []

    def test_lazy_views_never_leak_segments(self, graph):
        """The ISSUE's audit: lazily attached shard segments are names the
        *owner* holds; views attach and close mappings only."""
        with ShardedCSR.create(graph, shards=4) as sharded:
            before = sorted(shm_entries())
            with sharded.view(max_resident=2) as view:
                view.degrees()  # attach (and evict) across all shards
                assert sorted(shm_entries()) == before  # no new names
            assert sorted(shm_entries()) == before
        assert shm_entries() == []

    def test_abandoned_view_cannot_pin_names(self, graph):
        sharded = ShardedCSR.create(graph, shards=2)
        view = sharded.view()
        view.degrees(np.asarray([0]))
        sharded.unlink()  # owner tears down while the view is still open
        assert shm_entries() == []
        view.close()

    def test_unlink_is_idempotent(self, graph):
        sharded = ShardedCSR.create(graph, shards=2)
        sharded.unlink()
        sharded.unlink()
        assert shm_entries() == []

    def test_closed_view_rejects_reads(self, graph):
        with ShardedCSR.create(graph, shards=2) as sharded:
            view = sharded.view()
            view.close()
            with pytest.raises(RuntimeError):
                view.degrees(np.asarray([0]))

    def test_handle_is_picklable_and_attaches_in_place(self, graph):
        import pickle

        with ShardedCSR.create(graph, shards=3) as sharded:
            payload = pickle.dumps(sharded.handle())
            assert len(payload) < 4096
            handle = pickle.loads(payload)
            from repro.graph import ShardedGraphView

            with ShardedGraphView(handle) as view:
                assert np.array_equal(view.degrees(), graph.degrees())

    def test_failed_create_cleans_up(self, monkeypatch):
        """If exporting shard k fails, shards 0..k-1 are unlinked."""
        from repro.graph import shared as shared_module

        graph = rand_local(300, seed=1)
        original = shared_module.SharedCSR.create.__func__
        calls = {"n": 0}

        def failing(cls, piece):
            calls["n"] += 1
            if calls["n"] >= 3:
                raise OSError("simulated shm exhaustion")
            return original(cls, piece)

        monkeypatch.setattr(
            shared_module.SharedCSR, "create", classmethod(failing)
        )
        with pytest.raises(OSError):
            ShardedCSR.create(graph, shards=4)
        monkeypatch.undo()
        assert shm_entries() == []


class TestShardPieces:
    def test_pieces_store_global_neighbor_ids(self, graph):
        """The exactness mechanism: shard-local offsets, global targets."""
        with ShardedCSR.create(graph, shards=3) as sharded:
            handle = sharded.handle()
            lo, hi = sharded.map.span(1)
            attached = CSRGraph.attach(handle.shards[1])
            try:
                piece = attached.graph
                assert len(piece.offsets) == hi - lo + 1
                assert piece.offsets[0] == 0
                span = graph.offsets[hi] - graph.offsets[lo]
                assert piece.offsets[-1] == span
                assert np.array_equal(
                    piece.neighbors,
                    graph.neighbors[graph.offsets[lo] : graph.offsets[hi]],
                )
            finally:
                attached.close()
