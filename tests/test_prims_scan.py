"""Tests for prefix sums (repro.prims.scan)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.prims import (
    argmin_via_scan,
    exclusive_prefix_sum,
    prefix_max,
    prefix_min,
    prefix_sum,
)
from repro.runtime import track

float_arrays = npst.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
int_arrays = npst.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.integers(min_value=-10**6, max_value=10**6),
)


class TestPrefixSum:
    def test_example_from_docstring(self):
        assert prefix_sum(np.array([1, 2, 3])).tolist() == [1, 3, 6]

    def test_empty(self):
        assert len(prefix_sum(np.array([], dtype=np.int64))) == 0

    @given(int_arrays)
    def test_matches_cumsum(self, values):
        assert np.array_equal(prefix_sum(values), np.cumsum(values))

    @given(float_arrays)
    def test_min_operator(self, values):
        result = prefix_min(values)
        assert np.array_equal(result, np.minimum.accumulate(values)) or len(values) == 0

    @given(float_arrays)
    def test_max_operator(self, values):
        result = prefix_max(values)
        assert np.array_equal(result, np.maximum.accumulate(values)) or len(values) == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            prefix_sum(np.zeros((2, 2)))

    def test_records_linear_work_log_depth(self):
        with track() as tracker:
            prefix_sum(np.arange(1024))
        assert tracker.work == 1024
        assert tracker.depth == 10


class TestExclusivePrefixSum:
    def test_example(self):
        offsets, total = exclusive_prefix_sum(np.array([2, 3, 1]))
        assert offsets.tolist() == [0, 2, 5]
        assert total == 6

    def test_empty(self):
        offsets, total = exclusive_prefix_sum(np.array([], dtype=np.int64))
        assert len(offsets) == 0
        assert total == 0

    @given(int_arrays)
    def test_relation_to_inclusive(self, values):
        offsets, total = exclusive_prefix_sum(values)
        if len(values) == 0:
            return
        inclusive = np.cumsum(values)
        assert offsets[0] == 0
        assert np.array_equal(offsets[1:], inclusive[:-1])
        assert total == inclusive[-1]


class TestArgminViaScan:
    def test_simple(self):
        assert argmin_via_scan(np.array([3.0, 1.0, 2.0])) == 1

    def test_tie_resolves_to_earliest(self):
        assert argmin_via_scan(np.array([2.0, 1.0, 1.0])) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            argmin_via_scan(np.array([]))

    @given(float_arrays.filter(lambda a: len(a) > 0))
    def test_matches_argmin(self, values):
        assert argmin_via_scan(values) == int(np.argmin(values))
