"""Tests for the `repro analyze` / `python -m repro.analysis` front end.

The contract tooling relies on: exit code 0 when every analyzed file is
clean, 1 when findings are reported, 2 when the run itself fails (bad
path, unknown rule id); `--json` emits the versioned machine-readable
report; suppression comments flow through to the exit code.
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL, main, run
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(root: Path, relative: str, code: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return path


CLEAN = """
def fine():
    return 1
"""

DIRTY = """
import time

def diffuse():
    return time.time()
"""


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        write(tmp_path, "core/mod.py", CLEAN)
        assert main([str(tmp_path)]) == EXIT_CLEAN

    def test_findings_exit_one(self, tmp_path):
        write(tmp_path, "core/mod.py", DIRTY)
        assert main([str(tmp_path)]) == EXIT_FINDINGS

    def test_missing_path_exits_two(self, tmp_path):
        stderr = io.StringIO()
        code = run([str(tmp_path / "missing")], stderr=stderr)
        assert code == EXIT_INTERNAL
        assert "does not exist" in stderr.getvalue()

    def test_unknown_rule_exits_two(self, tmp_path):
        write(tmp_path, "core/mod.py", CLEAN)
        stderr = io.StringIO()
        code = run([str(tmp_path)], select="no-such-rule", stderr=stderr)
        assert code == EXIT_INTERNAL
        assert "unknown rule id" in stderr.getvalue()

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        write(tmp_path, "mod.py", "def broken(:\n")
        assert main([str(tmp_path)]) == EXIT_FINDINGS


class TestJsonOutput:
    def test_schema(self, tmp_path):
        write(tmp_path, "core/mod.py", DIRTY)
        stdout = io.StringIO()
        code = run([str(tmp_path)], as_json=True, stdout=stdout)
        assert code == EXIT_FINDINGS
        payload = json.loads(stdout.getvalue())
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["suppressed"] == 0
        assert set(payload["rules"]) >= {"wall-clock", "resource-lifecycle"}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message"}
        assert finding["rule"] == "wall-clock"
        assert finding["path"].endswith("core/mod.py")
        assert finding["line"] == 5

    def test_clean_json(self, tmp_path):
        write(tmp_path, "core/mod.py", CLEAN)
        stdout = io.StringIO()
        assert run([str(tmp_path)], as_json=True, stdout=stdout) == EXIT_CLEAN
        payload = json.loads(stdout.getvalue())
        assert payload["findings"] == []


class TestSuppressions:
    def test_suppressed_finding_exits_clean_and_is_counted(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import time

            def diffuse():
                return time.time()  # repro: ignore[wall-clock]
            """,
        )
        stdout = io.StringIO()
        code = run([str(tmp_path)], as_json=True, stdout=stdout)
        assert code == EXIT_CLEAN
        assert json.loads(stdout.getvalue())["suppressed"] == 1

    def test_suppression_for_other_rule_does_not_apply(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import time

            def diffuse():
                return time.time()  # repro: ignore[global-random]
            """,
        )
        assert main([str(tmp_path)]) == EXIT_FINDINGS


class TestFrontEnds:
    def test_list_rules(self):
        stdout = io.StringIO()
        assert run([], list_rules=True, stdout=stdout) == EXIT_CLEAN
        listing = stdout.getvalue()
        for rule_id in (
            "knob-threading",
            "wire-schema",
            "resource-lifecycle",
            "unordered-iter",
            "global-random",
            "wall-clock",
            "fast-math",
            "error-surface",
        ):
            assert f"{rule_id}:" in listing

    def test_select_limits_rules(self, tmp_path):
        write(tmp_path, "core/mod.py", DIRTY)
        assert main([str(tmp_path), "--select", "global-random"]) == EXIT_CLEAN
        assert main([str(tmp_path), "--select", "wall-clock"]) == EXIT_FINDINGS

    def test_repro_cli_analyze_subcommand(self, tmp_path, capsys):
        write(tmp_path, "core/mod.py", DIRTY)
        code = repro_main(["analyze", str(tmp_path), "--json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "wall-clock"

    def test_python_dash_m_entry_point(self, tmp_path):
        write(tmp_path, "core/mod.py", CLEAN)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True,
            text=True,
            env={
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
        )
        assert completed.returncode == EXIT_CLEAN, completed.stderr
        assert "clean" in completed.stdout

    def test_default_paths_cover_the_installed_package(self):
        from repro.analysis.cli import default_paths

        (default,) = default_paths()
        assert Path(default).name == "repro"
