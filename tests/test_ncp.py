"""Tests for the network community profile driver (repro.core.ncp)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NCPResult, log_binned, ncp_profile


@pytest.fixture(scope="module")
def planted_ncp(request):
    from repro.graph import planted_partition

    graph = planted_partition(1000, 10, intra_degree=8.0, inter_degree=1.0, seed=11)
    profile = ncp_profile(
        graph,
        num_seeds=12,
        alphas=(0.05,),
        eps_values=(1e-5,),
        rng=0,
    )
    return graph, profile


class TestProfile:
    def test_runs_counted(self, planted_ncp):
        _, profile = planted_ncp
        assert profile.runs == 12

    def test_profile_shape(self, planted_ncp):
        graph, profile = planted_ncp
        assert profile.max_size == graph.num_vertices
        assert len(profile.conductance) == graph.num_vertices
        sizes, phis = profile.series()
        assert len(sizes) == len(phis)
        assert (phis > 0).all() and (phis <= 1.0).all()

    def test_dip_near_community_size(self, planted_ncp):
        # The NCP of a planted-partition graph dips at the community scale
        # (the Figure 12 "good communities are small" shape).
        _, profile = planted_ncp
        sizes, phis = profile.series()
        near_community = (sizes >= 80) & (sizes <= 120)
        small = sizes <= 5
        assert near_community.any()
        assert phis[near_community].min() < phis[small].min() / 2

    def test_best_at(self, planted_ncp):
        _, profile = planted_ncp
        sizes = profile.sizes()
        first = int(sizes[0])
        assert np.isfinite(profile.best_at(first))
        with pytest.raises(ValueError):
            profile.best_at(0)

    def test_max_size_truncation(self):
        from repro.graph import planted_partition

        graph = planted_partition(500, 5, 8.0, 1.0, seed=2)
        profile = ncp_profile(
            graph, num_seeds=3, alphas=(0.05,), eps_values=(1e-4,), max_size=50, rng=1
        )
        assert profile.max_size == 50
        assert len(profile.conductance) == 50

    def test_explicit_seeds(self):
        from repro.graph import planted_partition

        graph = planted_partition(500, 5, 8.0, 1.0, seed=2)
        profile = ncp_profile(
            graph, alphas=(0.05,), eps_values=(1e-4,), seeds=[0, 100, 200], rng=1
        )
        assert profile.runs == 3


class TestLogBinning:
    def test_binned_profile(self, planted_ncp):
        _, profile = planted_ncp
        centers, minima = log_binned(profile)
        assert len(centers) == len(minima)
        assert len(centers) <= len(profile.sizes())
        assert (np.diff(centers) > 0).all()

    def test_binned_minima_are_lower_envelopes(self, planted_ncp):
        _, profile = planted_ncp
        _, minima = log_binned(profile)
        sizes, phis = profile.series()
        assert minima.min() == pytest.approx(phis.min())

    def test_empty_profile(self):
        empty = NCPResult(max_size=10, conductance=np.full(10, np.inf), runs=0)
        centers, minima = log_binned(empty)
        assert len(centers) == 0 and len(minima) == 0
