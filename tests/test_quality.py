"""Tests for cluster quality metrics against the paper's Figure 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ClusterStats, boundary_size, cluster_stats, conductance, volume
from repro.graph import complete_graph, from_edge_list, planted_partition


class TestFigure1Values:
    """The exact values printed in the paper's Figure 1 table."""

    def test_volume(self, figure1):
        assert volume(figure1, [0]) == 2
        assert volume(figure1, [0, 1]) == 4
        assert volume(figure1, [0, 1, 2]) == 7
        assert volume(figure1, [0, 1, 2, 3]) == 11

    def test_boundary(self, figure1):
        assert boundary_size(figure1, [0]) == 2
        assert boundary_size(figure1, [0, 1]) == 2
        assert boundary_size(figure1, [0, 1, 2]) == 1
        assert boundary_size(figure1, [0, 1, 2, 3]) == 3

    def test_conductance(self, figure1):
        assert conductance(figure1, [0]) == pytest.approx(2 / min(2, 14))
        assert conductance(figure1, [0, 1]) == pytest.approx(2 / min(4, 12))
        assert conductance(figure1, [0, 1, 2]) == pytest.approx(1 / min(7, 9))
        assert conductance(figure1, [0, 1, 2, 3]) == pytest.approx(3 / min(11, 5))


class TestEdgeCases:
    def test_empty_cluster_rejected(self, figure1):
        with pytest.raises(ValueError):
            conductance(figure1, [])

    def test_whole_graph_conductance_is_one(self, figure1):
        assert conductance(figure1, np.arange(8)) == 1.0

    def test_duplicate_vertices_ignored(self, figure1):
        assert volume(figure1, [0, 0, 1]) == 4

    def test_isolated_vertex(self):
        graph = from_edge_list([(0, 1)], num_vertices=3)
        assert volume(graph, [2]) == 0
        assert boundary_size(graph, [2]) == 0
        assert conductance(graph, [2]) == 1.0  # 0/0 convention

    def test_half_of_clique(self):
        graph = complete_graph(6)
        half = np.arange(3)
        # 3x3 crossing edges; each side has volume 15.
        assert boundary_size(graph, half) == 9
        assert conductance(graph, half) == pytest.approx(9 / 15)


class TestClusterStats:
    def test_consistent_with_parts(self, figure1):
        stats = cluster_stats(figure1, [0, 1, 2])
        assert stats == ClusterStats(size=3, volume=7, boundary=1, conductance=1 / 7)
        assert "phi=" in str(stats)

    def test_symmetry_of_cut(self, planted):
        # |∂(S)| = |∂(V \ S)| — the boundary is shared.
        inside = np.arange(100)
        outside = np.arange(100, planted.num_vertices)
        assert boundary_size(planted, inside) == boundary_size(planted, outside)

    @given(st.lists(st.integers(0, 199), min_size=1, max_size=50))
    def test_matches_bruteforce_on_planted(self, vertices):
        graph = planted_partition(200, 4, 6.0, 1.0, seed=3)
        cluster = np.unique(np.asarray(vertices, dtype=np.int64))
        members = set(cluster.tolist())
        brute_cut = 0
        brute_vol = 0
        for v in members:
            for w in graph.neighbors_of(v).tolist():
                if w not in members:
                    brute_cut += 1
            brute_vol += graph.degree(v)
        assert boundary_size(graph, cluster) == brute_cut
        assert volume(graph, cluster) == brute_vol
