"""Tests for randomized heat kernel PageRank (repro.core.rand_hk_pr)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    RandHKPRParams,
    aggregate_by_fetch_add,
    aggregate_by_sort,
    rand_hk_pr,
    rand_hk_pr_parallel,
    rand_hk_pr_sequential,
    sample_walk_lengths,
    sweep_cut,
)
from repro.core.result import vector_items
from repro.graph import cycle_graph, path_graph


def _as_array(graph, result):
    dense = np.zeros(graph.num_vertices)
    keys, values = vector_items(result.vector)
    dense[keys] = values
    return dense


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandHKPRParams(t=0.0)
        with pytest.raises(ValueError):
            RandHKPRParams(max_walk_length=-1)
        with pytest.raises(ValueError):
            RandHKPRParams(num_walks=0)


class TestWalkLengths:
    def test_truncated_at_k(self, rng):
        params = RandHKPRParams(t=10.0, max_walk_length=5, num_walks=10_000)
        lengths = sample_walk_lengths(rng, params)
        assert lengths.max() <= 5
        assert lengths.min() >= 0

    def test_poisson_mean_before_truncation(self, rng):
        # With K far above t the truncation is immaterial: mean ~ t.
        params = RandHKPRParams(t=4.0, max_walk_length=50, num_walks=50_000)
        lengths = sample_walk_lengths(rng, params)
        assert lengths.mean() == pytest.approx(4.0, abs=0.1)


class TestDistribution:
    def test_mass_is_exactly_one(self, planted):
        params = RandHKPRParams(t=5.0, max_walk_length=8, num_walks=5_000)
        for parallel in (True, False):
            result = rand_hk_pr(planted, 0, params, parallel=parallel, rng=1)
            _, values = vector_items(result.vector)
            assert values.sum() == pytest.approx(1.0)

    def test_support_within_k_hops(self):
        graph = path_graph(30)
        params = RandHKPRParams(t=2.0, max_walk_length=4, num_walks=2_000)
        result = rand_hk_pr(graph, 15, params, rng=0)
        keys, _ = vector_items(result.vector)
        assert (np.abs(keys - 15) <= 4).all()

    def test_matches_exact_heat_kernel_statistically(self):
        # On a cycle, compare the empirical distribution against the exact
        # truncated heat kernel e^{-t} sum t^k/k! P^k s (total variation).
        graph = cycle_graph(12)
        t, k_max = 3.0, 20
        params = RandHKPRParams(t=t, max_walk_length=k_max, num_walks=200_000)
        result = rand_hk_pr_parallel(graph, 0, params, rng=7)
        empirical = _as_array(graph, result)

        n = graph.num_vertices
        adjacency = np.zeros((n, n))
        for v in range(n):
            adjacency[graph.neighbors_of(v), v] = 1.0
        walk = adjacency / graph.degrees()[None, :]
        seed_vec = np.zeros(n)
        seed_vec[0] = 1.0
        exact = np.zeros(n)
        term = seed_vec.copy()
        tail = 1.0
        for k in range(k_max):
            weight = math.exp(-t) * t**k / math.factorial(k)
            exact += weight * term
            tail -= weight
            term = walk @ term
        exact += tail * term  # truncated mass lands at length-K walks
        total_variation = 0.5 * np.abs(empirical - exact).sum()
        assert total_variation < 0.01

    def test_sequential_and_parallel_similar(self, planted):
        params = RandHKPRParams(t=4.0, max_walk_length=8, num_walks=3_000)
        seq = _as_array(planted, rand_hk_pr_sequential(planted, 0, params, rng=3))
        par = _as_array(planted, rand_hk_pr_parallel(planted, 0, params, rng=4))
        total_variation = 0.5 * np.abs(seq - par).sum()
        assert total_variation < 0.25  # same distribution, independent samples

    def test_deterministic_given_rng_seed(self, planted):
        params = RandHKPRParams(t=4.0, max_walk_length=6, num_walks=2_000)
        a = _as_array(planted, rand_hk_pr_parallel(planted, 0, params, rng=9))
        b = _as_array(planted, rand_hk_pr_parallel(planted, 0, params, rng=9))
        assert np.array_equal(a, b)


class TestAggregation:
    def test_sort_and_fetch_add_agree(self, rng):
        destinations = rng.integers(0, 50, size=5_000)
        by_sort = aggregate_by_sort(destinations, 5_000)
        by_add = aggregate_by_fetch_add(destinations, 5_000)
        assert by_sort.to_dict() == pytest.approx(by_add.to_dict())

    def test_sort_aggregation_counts(self):
        destinations = np.array([3, 1, 3, 3, 1, 9])
        vector = aggregate_by_sort(destinations, 6)
        assert vector.to_dict() == pytest.approx({1: 2 / 6, 3: 3 / 6, 9: 1 / 6})

    def test_invalid_aggregation_rejected(self, planted):
        with pytest.raises(ValueError):
            rand_hk_pr_parallel(
                planted, 0, RandHKPRParams(num_walks=10), aggregation="bogus"
            )


class TestRecovery:
    def test_finds_planted_community(self, planted, planted_community):
        params = RandHKPRParams(t=5.0, max_walk_length=10, num_walks=20_000)
        result = rand_hk_pr(planted, 0, params, rng=0)
        sweep = sweep_cut(planted, result.vector)
        found = set(sweep.best_cluster.tolist())
        truth = set(planted_community.tolist())
        assert len(found & truth) / len(found | truth) > 0.7

    def test_dead_end_walks_stop(self):
        graph = path_graph(2)  # walks bounce between two vertices
        params = RandHKPRParams(t=1.0, max_walk_length=3, num_walks=500)
        result = rand_hk_pr(graph, 0, params, rng=0)
        _, values = vector_items(result.vector)
        assert values.sum() == pytest.approx(1.0)
