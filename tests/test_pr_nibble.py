"""Tests for PR-Nibble (repro.core.pr_nibble), both rules, both schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PRNibbleParams,
    pr_nibble,
    pr_nibble_parallel,
    pr_nibble_sequential,
    sweep_cut,
)
from repro.core.result import vector_items


def _total_mass(result):
    _, p_values = vector_items(result.vector)
    return p_values.sum() + result.extras["residual_mass"]


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            PRNibbleParams(alpha=0.0)
        with pytest.raises(ValueError):
            PRNibbleParams(alpha=1.0)
        with pytest.raises(ValueError):
            PRNibbleParams(eps=0.0)
        with pytest.raises(ValueError):
            PRNibbleParams(beta=0.0)
        with pytest.raises(ValueError):
            PRNibbleParams(beta=1.2)
        with pytest.raises(ValueError):
            PRNibbleParams(max_iterations=0)


class TestMassConservation:
    """Both update rules conserve |p|_1 + |r|_1 = 1 exactly (Section 3.3)."""

    @pytest.mark.parametrize("optimized", [True, False])
    @pytest.mark.parametrize("parallel", [True, False])
    def test_invariant(self, planted, optimized, parallel):
        params = PRNibbleParams(alpha=0.05, eps=1e-5, optimized=optimized)
        result = pr_nibble(planted, 0, params, parallel=parallel)
        assert _total_mass(result) == pytest.approx(1.0, abs=1e-9)


class TestTermination:
    @pytest.mark.parametrize("parallel", [True, False])
    def test_all_residuals_below_threshold(self, planted, parallel):
        params = PRNibbleParams(alpha=0.05, eps=1e-5)
        result = pr_nibble(planted, 0, params, parallel=parallel)
        residual = result.extras["residual"]
        keys, values = vector_items(residual)
        degrees = planted.degrees(keys)
        assert (values < params.eps * degrees + 1e-15).all()

    def test_work_bound_theorem3(self, planted):
        # Total pushed volume is at most 1/(eps*alpha) for both schedules.
        params = PRNibbleParams(alpha=0.05, eps=1e-5)
        for parallel in (True, False):
            result = pr_nibble(planted, 0, params, parallel=parallel)
            assert result.touched_edges <= 1.0 / (params.eps * params.alpha)


class TestTable1Shape:
    """The relationships the paper's Table 1 reports."""

    def test_parallel_pushes_modestly_higher(self, planted):
        params = PRNibbleParams(alpha=0.05, eps=1e-6)
        seq = pr_nibble_sequential(planted, 0, params)
        par = pr_nibble_parallel(planted, 0, params)
        assert par.pushes >= seq.pushes
        assert par.pushes <= 3.0 * seq.pushes  # paper: at most ~1.6x, usually less
        # Iterations are far fewer than pushes: parallelism is abundant.
        assert par.iterations < par.pushes / 5
        # Sequential "iterations" equal pushes by convention.
        assert seq.iterations == seq.pushes


class TestUpdateRules:
    def test_optimized_and_original_find_same_cluster(self, planted, planted_community):
        # "both versions return clusters with the same conductance" (Fig 4).
        truth = set(planted_community.tolist())
        clusters = {}
        for optimized in (True, False):
            params = PRNibbleParams(alpha=0.05, eps=1e-6, optimized=optimized)
            result = pr_nibble(planted, 0, params)
            sweep = sweep_cut(planted, result.vector)
            clusters[optimized] = sweep.best_conductance
            found = set(sweep.best_cluster.tolist())
            assert len(found & truth) / len(found | truth) > 0.8
        assert clusters[True] == pytest.approx(clusters[False], rel=0.1)

    def test_optimized_needs_fewer_pushes(self, planted):
        # The optimization zeroes the residual per push instead of halving
        # it, so it needs strictly fewer pushes (the Figure 4 speedup).
        slow = pr_nibble_sequential(planted, 0, PRNibbleParams(0.05, 1e-6, optimized=False))
        fast = pr_nibble_sequential(planted, 0, PRNibbleParams(0.05, 1e-6, optimized=True))
        assert fast.pushes < slow.pushes

    def test_smaller_eps_does_more_work(self, planted):
        # Figure 8(c): decreasing eps increases running time.
        coarse = pr_nibble(planted, 0, PRNibbleParams(0.05, 1e-4))
        fine = pr_nibble(planted, 0, PRNibbleParams(0.05, 1e-6))
        assert fine.touched_edges > coarse.touched_edges
        assert fine.support_size() >= coarse.support_size()


class TestBetaVariant:
    def test_beta_one_matches_default(self, planted):
        a = pr_nibble_parallel(planted, 0, PRNibbleParams(0.05, 1e-5, beta=1.0))
        b = pr_nibble_parallel(planted, 0, PRNibbleParams(0.05, 1e-5))
        assert a.pushes == b.pushes
        assert a.iterations == b.iterations

    def test_beta_fraction_trades_iterations_for_work(self, planted):
        full = pr_nibble_parallel(planted, 0, PRNibbleParams(0.05, 1e-5, beta=1.0))
        half = pr_nibble_parallel(planted, 0, PRNibbleParams(0.05, 1e-5, beta=0.5))
        assert half.iterations >= full.iterations
        # Still terminates with the residual invariant intact.
        assert _total_mass(half) == pytest.approx(1.0, abs=1e-9)

    def test_beta_still_meets_work_bound(self, planted):
        params = PRNibbleParams(alpha=0.05, eps=1e-5, beta=0.3)
        result = pr_nibble_parallel(planted, 0, params)
        assert result.touched_edges <= 1.0 / (params.eps * params.alpha)


class TestSchedulesAgree:
    def test_sequential_and_parallel_find_same_cluster(self, planted):
        params = PRNibbleParams(alpha=0.05, eps=1e-6)
        seq = sweep_cut(planted, pr_nibble_sequential(planted, 0, params).vector)
        par = sweep_cut(planted, pr_nibble_parallel(planted, 0, params).vector)
        seq_set = set(seq.best_cluster.tolist())
        par_set = set(par.best_cluster.tolist())
        assert len(seq_set & par_set) / len(seq_set | par_set) > 0.8
        assert seq.best_conductance == pytest.approx(par.best_conductance, rel=0.15)


class TestSeeds:
    def test_multi_seed_mass_split(self, planted):
        result = pr_nibble(planted, np.array([0, 150]), PRNibbleParams(0.05, 1e-5))
        assert _total_mass(result) == pytest.approx(1.0, abs=1e-9)

    def test_empty_seed_rejected(self, planted):
        with pytest.raises(ValueError):
            pr_nibble(planted, np.array([], dtype=np.int64), PRNibbleParams())

    def test_max_iterations_caps_parallel_loop(self, planted):
        params = PRNibbleParams(alpha=0.05, eps=1e-7, max_iterations=3)
        result = pr_nibble_parallel(planted, 0, params)
        assert result.iterations == 3

    def test_isolated_seed_terminates_and_matches_sequential(self):
        # Regression: a degree-0 seed has push threshold eps * 0 = 0, so
        # it used to stay frontier-eligible for max_iterations (10^9 —
        # effectively a hang) while wrongly accumulating pagerank mass.
        # Unpushable vertices must keep their mass in the residual, as
        # the sequential reference does.
        from repro.graph import from_edge_list

        graph = from_edge_list([(0, 1)], num_vertices=4)
        params = PRNibbleParams(alpha=0.1, eps=1e-3)
        parallel = pr_nibble_parallel(graph, 3, params)
        assert parallel.iterations == 0
        assert parallel.support_size() == 0
        assert parallel.extras["residual_mass"] == pytest.approx(1.0)
        mixed_par = pr_nibble_parallel(graph, np.array([0, 3]), params)
        mixed_seq = pr_nibble_sequential(graph, np.array([0, 3]), params)
        assert _total_mass(mixed_par) == pytest.approx(_total_mass(mixed_seq))
        assert mixed_par.vector[3] == 0.0 and mixed_seq.vector[3] == 0.0
