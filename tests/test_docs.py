"""Tier-1 wrapper around the docs link/anchor checker (tools/check_docs.py).

CI has a dedicated docs job, but a stale anchor should fail the ordinary
test run too — documentation drift is a regression like any other.  The
negative cases keep the checker itself honest: a tool that never fails
would green-light anything.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(spec)
sys.modules["check_docs"] = check_docs
spec.loader.exec_module(check_docs)


class TestRepoDocs:
    def test_every_link_and_anchor_resolves(self, capsys):
        assert check_docs.main([]) == 0
        assert "docs OK" in capsys.readouterr().out

    def test_doc_set_includes_the_new_guides(self):
        files = {path.name for path in check_docs.gather_default_files()}
        assert {"README.md", "index.md", "architecture.md", "sharding.md",
                "serving.md"} <= files


class TestCheckerCatchesBreakage:
    def test_broken_file_link(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](nope.md)\n")
        errors = check_docs.check_file(page)
        assert len(errors) == 1 and "broken link" in errors[0]

    def test_stale_anchor(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# Real Heading\n")
        page = tmp_path / "page.md"
        page.write_text("see [it](target.md#wrong-heading)\n")
        errors = check_docs.check_file(page)
        assert len(errors) == 1 and "stale anchor" in errors[0]

    def test_valid_anchor_and_same_file_fragment(self, tmp_path):
        target = tmp_path / "target.md"
        target.write_text("# One: Two `three`\n\n## One: Two `three`\n")
        page = tmp_path / "page.md"
        page.write_text(
            "[a](target.md#one-two-three) [b](target.md#one-two-three-1)\n"
            "# Local\n[c](#local)\n"
        )
        assert check_docs.check_file(page) == []

    def test_links_inside_code_fences_are_ignored(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[not a link](nope.md)\n```\n")
        assert check_docs.check_file(page) == []

    def test_external_links_are_skipped(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[site](https://example.invalid/never-fetched)\n")
        assert check_docs.check_file(page) == []


class TestSlugRules:
    def test_github_slugging(self):
        cases = {
            "Sessions: pool lifecycle split from batch streaming":
                "sessions-pool-lifecycle-split-from-batch-streaming",
            "The batch engine: jobs and reducers":
                "the-batch-engine-jobs-and-reducers",
            "Using `max_batch_cost`!": "using-max_batch_cost",
        }
        for heading, slug in cases.items():
            assert check_docs.github_slug(heading) == slug
