"""Tests for graph serialisation (repro.graph.io)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    grid_3d,
    load_npz,
    paper_figure1_graph,
    rand_local,
    read_adjacency_graph,
    read_edge_list,
    save_npz,
    write_adjacency_graph,
    write_edge_list,
)


def _assert_same_graph(a, b):
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.neighbors, b.neighbors)


class TestEdgeList:
    def test_round_trip(self, tmp_path, figure1):
        path = tmp_path / "graph.txt"
        write_edge_list(figure1, path, comment="figure 1")
        _assert_same_graph(read_edge_list(path, num_vertices=8), figure1)

    def test_comment_header_present(self, tmp_path, figure1):
        path = tmp_path / "graph.txt"
        write_edge_list(figure1, path, comment="hello\nworld")
        text = path.read_text()
        assert text.startswith("# hello\n# world\n")
        assert "# Nodes: 8 Edges: 8" in text

    def test_reads_snap_style_whitespace(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# SNAP header\n0\t1\n1 2\n\n2\t0\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestAdjacencyGraph:
    def test_round_trip(self, tmp_path, figure1):
        path = tmp_path / "graph.adj"
        write_adjacency_graph(figure1, path)
        _assert_same_graph(read_adjacency_graph(path), figure1)

    def test_header_format(self, tmp_path, figure1):
        path = tmp_path / "graph.adj"
        write_adjacency_graph(figure1, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "AdjacencyGraph"
        assert lines[1] == "8"
        assert lines[2] == "16"

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("NotAGraph\n1\n0\n0\n")
        with pytest.raises(ValueError):
            read_adjacency_graph(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "short.adj"
        path.write_text("AdjacencyGraph\n2\n2\n0\n")
        with pytest.raises(ValueError):
            read_adjacency_graph(path)

    def test_round_trip_larger_graph(self, tmp_path):
        graph = grid_3d(4)
        path = tmp_path / "grid.adj"
        write_adjacency_graph(graph, path)
        _assert_same_graph(read_adjacency_graph(path), graph)


class TestNpz:
    def test_round_trip(self, tmp_path):
        graph = rand_local(300, seed=0)
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        _assert_same_graph(load_npz(path), graph)

    def test_figure1(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        assert load_npz(path).num_edges == 8
