"""Determinism matrix: kernel x backend x schedule, plus cache agnosticism.

Every cell of the (kernel, backend, schedule) matrix must produce the
same outcome stream as the serial-Python reference — byte-for-byte on
vectors and counters — because the kernel knob, the executor backend and
the chunk schedule are all pure *speed* knobs.  On top of the matrix:

* cache entries are kernel-agnostic: an entry written under one kernel
  replays under any other, in both directions, because ``cache_key_for``
  excludes ``kernel`` exactly as it excludes ``tag``;
* the scheduler's per-kernel cost scale keeps mixed-kernel batches
  balanced (a compiled job no longer weighs as much as a Python one);
* warm-up accounting: JIT/compile time is excluded from ``job_seconds``
  and tallied separately, and cache hits contribute to neither —
  mirroring the PR-4 cache-hit exclusion rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import ResultCache
from repro.cache.keys import cache_key_for
from repro.core.result import SweepResult
from repro.engine import (
    BatchEngine,
    DiffusionJob,
    JobOutcome,
    StatsReducer,
    job_grid,
)
from repro.engine.scheduler import (
    KERNEL_COST_SCALE,
    chunk_costs,
    estimate_cost,
    plan_chunks,
)
from repro.graph import rand_local
from repro.kernels import available_kernels

KERNEL_VALUES = available_kernels() + ("auto",)

#: (backend, schedule) cells; schedule only configures the process pool.
CELLS = [
    ("serial", None),
    ("process", "cost"),
    ("process", "fifo"),
    ("sharded", None),
]


@pytest.fixture(scope="module")
def graph():
    return rand_local(600, seed=11)


@pytest.fixture(scope="module")
def jobs():
    return list(
        job_grid(
            [3, 50, 200, 400, 599],
            "pr-nibble",
            {"alpha": (0.1,), "eps": (1e-4, 1e-5)},
        )
    )


@pytest.fixture(scope="module")
def reference(graph, jobs):
    """The serial-Python outcome stream every matrix cell must equal."""
    return BatchEngine(graph).run(jobs)


def make_engine(graph, backend, schedule, kernel, cache=None):
    if backend == "process":
        return BatchEngine(
            graph, backend="process", workers=2, schedule=schedule,
            cache=cache, kernel=kernel,
        )
    if backend == "sharded":
        return BatchEngine(graph, backend="sharded", shards=3, cache=cache, kernel=kernel)
    return BatchEngine(graph, cache=cache, kernel=kernel)


def assert_outcomes_identical(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.index == b.index
        assert np.array_equal(a.vector_keys, b.vector_keys)
        assert np.array_equal(a.vector_values, b.vector_values)
        assert a.pushes == b.pushes
        assert a.touched_edges == b.touched_edges
        assert a.work == b.work and a.depth == b.depth
        assert a.conductance == b.conductance
        assert np.array_equal(a.cluster, b.cluster)


class TestMatrix:
    @pytest.mark.parametrize("kernel", KERNEL_VALUES)
    @pytest.mark.parametrize("backend,schedule", CELLS)
    def test_cell_equals_serial_python_reference(
        self, graph, jobs, reference, kernel, backend, schedule
    ):
        engine = make_engine(graph, backend, schedule, kernel)
        assert_outcomes_identical(engine.run(jobs), reference)

    @pytest.mark.parametrize("kernel", KERNEL_VALUES)
    def test_per_job_kernel_override_beats_engine_default(
        self, graph, jobs, reference, kernel
    ):
        # Explicit job-level kernels survive the engine default stamping.
        stamped = [DiffusionJob.make(j.seeds, params=j.params, kernel=kernel) for j in jobs]
        engine = BatchEngine(graph, kernel="python")
        assert_outcomes_identical(engine.run(stamped), reference)


class TestCacheKernelAgnostic:
    def test_cache_key_excludes_kernel(self, jobs):
        plain = jobs[0]
        for kernel in ("python", "numba", "c", "auto"):
            stamped = DiffusionJob.make(plain.seeds, params=plain.params, kernel=kernel)
            assert cache_key_for("fp", stamped, True, True) == cache_key_for(
                "fp", plain, True, True
            )

    @pytest.mark.parametrize("writer,reader", [("python", "auto"), ("auto", "python")])
    def test_entries_replay_across_kernels(self, graph, jobs, reference, writer, reader):
        cache = ResultCache()
        first = BatchEngine(graph, cache=cache, kernel=writer).run(jobs)
        assert not any(o.cached for o in first)
        replayed = BatchEngine(graph, cache=cache, kernel=reader).run(jobs)
        assert all(o.cached for o in replayed)
        assert_outcomes_identical(replayed, reference)
        # and the replayed job echoes the *requesting* kernel, like tag
        assert all(o.job.kernel == reader for o in replayed)

    def test_disk_entries_replay_across_kernels(self, graph, jobs, reference, tmp_path):
        BatchEngine(graph, cache=str(tmp_path), kernel="auto").run(jobs)
        replayed = BatchEngine(graph, cache=str(tmp_path), kernel="python").run(jobs)
        assert all(o.cached for o in replayed)
        assert_outcomes_identical(replayed, reference)


class TestSchedulerBalance:
    """Regression: ``schedule="cost"`` must not overweight compiled jobs."""

    # A mixed batch where raw work bounds and wall time *disagree*: the
    # compiled jobs have 10x the raw push bound (tighter eps) but a
    # fraction of the wall time.  Odd class counts force chunks to mix
    # the classes, which is where an unscaled estimator misbalances.
    def _mixed_jobs(self):
        python = [
            DiffusionJob.make(i, params={"alpha": 0.05, "eps": 1e-5})
            for i in range(2)
        ]
        compiled = [
            DiffusionJob.make(100 + i, params={"alpha": 0.05, "eps": 1e-6}, kernel="c")
            for i in range(3)
        ]
        return python + compiled

    def _force_c_available(self, monkeypatch):
        import repro.kernels as kernels_mod

        monkeypatch.setattr(
            kernels_mod, "_SETS", {**kernels_mod._SETS, "c": object()}
        )
        monkeypatch.setattr(kernels_mod, "_ERRORS", {})

    @staticmethod
    def _unscaled(job):
        # The pre-kernel estimator: same params, kernel annotation dropped.
        return estimate_cost(DiffusionJob.make(job.seeds, params=job.params))

    def test_scaled_plan_balances_wall_time(self, monkeypatch):
        self._force_c_available(monkeypatch)
        jobs = self._mixed_jobs()
        chunks = plan_chunks(jobs, workers=2, chunk_size=3)
        covered = sorted(index for chunk in chunks for index, _ in chunk)
        assert covered == list(range(len(jobs)))
        # Judge both plans by the *scaled* estimate — the wall-time proxy.
        true_costs = chunk_costs(chunks, estimate_cost)
        mean = sum(true_costs) / len(true_costs)
        assert max(true_costs) <= 2.0 * mean  # the LPT 2-approximation bound

    def test_unscaled_estimator_would_misbalance(self, monkeypatch):
        # The regression this scale fixes: planning by raw work bounds
        # packs both Python stragglers together, so the batch's wall time
        # is strictly worse than the kernel-aware plan's.
        self._force_c_available(monkeypatch)
        jobs = self._mixed_jobs()
        scaled_plan = plan_chunks(jobs, workers=2, chunk_size=3)
        unscaled_plan = plan_chunks(
            jobs, workers=2, chunk_size=3, estimator=self._unscaled
        )
        scaled_makespan = max(chunk_costs(scaled_plan, estimate_cost))
        unscaled_makespan = max(chunk_costs(unscaled_plan, estimate_cost))
        assert scaled_makespan < unscaled_makespan

    def test_scale_values_are_sane(self):
        assert KERNEL_COST_SCALE["python"] == 1.0
        assert 0.0 < KERNEL_COST_SCALE["numba"] < 1.0
        assert 0.0 < KERNEL_COST_SCALE["c"] < 1.0


def _outcome(index, wall, warmup, cached=False):
    sweep = SweepResult(
        order=np.asarray([0], dtype=np.int64),
        conductances=np.asarray([0.5]),
        volumes=np.asarray([2], dtype=np.int64),
        cuts=np.asarray([1], dtype=np.int64),
        best_index=0,
    )
    return JobOutcome(
        index=index,
        job=DiffusionJob.make(0),
        support_size=1,
        iterations=1,
        pushes=5,
        touched_edges=9,
        residual_mass=0.0,
        work=9.0,
        depth=0.0,
        wall_seconds=wall,
        sweep=sweep,
        cached=cached,
        warmup_seconds=warmup,
    )


class TestWarmupAccounting:
    def test_warmup_tallied_separately_from_job_seconds(self):
        reducer = StatsReducer()
        reducer.update(_outcome(0, wall=0.5, warmup=2.0))  # first job pays JIT
        reducer.update(_outcome(1, wall=0.5, warmup=0.0))
        stats = reducer.finalize()
        assert stats.job_seconds == pytest.approx(1.0)
        assert stats.warmup_seconds == pytest.approx(2.0)

    def test_cache_hits_contribute_no_warmup(self):
        # Mirrors the PR-4 cache-hit rule: a replayed outcome echoes the
        # original execution's counters and must not inflate this run.
        reducer = StatsReducer()
        reducer.update(_outcome(0, wall=0.5, warmup=2.0, cached=True))
        stats = reducer.finalize()
        assert stats.cache_hits == 1
        assert stats.job_seconds == 0.0
        assert stats.warmup_seconds == 0.0

    def test_engine_excludes_warmup_from_wall_seconds(self, graph):
        # End to end: run_job warms before starting the job clock, so even
        # the very first compiled job's wall_seconds is steady-state (far
        # below any compile time) and warmup lands in its own field.
        job = DiffusionJob.make(3, params={"alpha": 0.1, "eps": 1e-4}, kernel="auto")
        outcomes = BatchEngine(graph).run([job])
        assert outcomes[0].warmup_seconds >= 0.0
        assert outcomes[0].wall_seconds < 60.0
