"""Tests for the batched atomic analogues (repro.prims.atomics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prims import combine_duplicates, compare_and_swap, fetch_and_add


class TestFetchAndAdd:
    def test_duplicates_accumulate(self):
        target = np.zeros(4)
        fetch_and_add(target, np.array([1, 1, 2]), np.array([1.0, 2.0, 3.0]))
        assert target.tolist() == [0.0, 3.0, 3.0, 0.0]

    def test_scalar_delta(self):
        target = np.zeros(3)
        fetch_and_add(target, np.array([0, 0, 2]), 1.0)
        assert target.tolist() == [2.0, 0.0, 1.0]

    @given(st.lists(st.integers(0, 9), max_size=50))
    def test_matches_sequential_loop(self, indices):
        target = np.zeros(10)
        fetch_and_add(target, np.asarray(indices, dtype=np.int64), 1.0)
        expected = np.zeros(10)
        for i in indices:
            expected[i] += 1.0
        assert np.array_equal(target, expected)


class TestCompareAndSwap:
    def test_success_and_failure(self):
        target = np.array([1.0, 2.0])
        assert compare_and_swap(target, 0, 1.0, 5.0)
        assert target[0] == 5.0
        assert not compare_and_swap(target, 1, 99.0, 7.0)
        assert target[1] == 2.0


class TestCombineDuplicates:
    def test_basic(self):
        keys, sums = combine_duplicates(np.array([5, 3, 5]), np.array([1.0, 2.0, 3.0]))
        assert keys.tolist() == [3, 5]
        assert sums.tolist() == [2.0, 4.0]

    def test_empty(self):
        keys, sums = combine_duplicates(np.array([], dtype=np.int64), np.array([]))
        assert len(keys) == 0 and len(sums) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            combine_duplicates(np.array([1]), np.array([1.0, 2.0]))

    @given(st.lists(st.tuples(st.integers(0, 20), st.floats(-5, 5)), max_size=80))
    def test_matches_dict_model(self, pairs):
        keys = np.asarray([k for k, _ in pairs], dtype=np.int64)
        values = np.asarray([v for _, v in pairs])
        got_keys, got_sums = combine_duplicates(keys, values)
        model: dict[int, float] = {}
        for k, v in pairs:
            model[k] = model.get(k, 0.0) + v
        assert got_keys.tolist() == sorted(model)
        for k, s in zip(got_keys.tolist(), got_sums.tolist()):
            assert s == pytest.approx(model[k], rel=1e-9, abs=1e-9)
