"""Tests for the evolving set process (repro.core.evolving_sets)."""

from __future__ import annotations

import pytest

from repro.core import EvolvingSetParams, evolving_set_process
from repro.core.quality import cluster_stats
from repro.graph import complete_graph


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            EvolvingSetParams(max_iterations=0)
        with pytest.raises(ValueError):
            EvolvingSetParams(target_conductance=1.5)


class TestProcess:
    def test_returns_valid_cluster(self, planted):
        result = evolving_set_process(planted, 0, EvolvingSetParams(max_iterations=30), rng=1)
        assert len(result.cluster) >= 1
        assert 0.0 <= result.conductance <= 1.0
        assert (result.cluster < planted.num_vertices).all()

    def test_reported_conductance_matches_cluster(self, planted):
        result = evolving_set_process(planted, 0, EvolvingSetParams(max_iterations=30), rng=2)
        stats = cluster_stats(planted, result.cluster)
        assert stats.conductance == pytest.approx(result.conductance)

    def test_trajectory_recorded(self, planted):
        result = evolving_set_process(planted, 0, EvolvingSetParams(max_iterations=30), rng=3)
        assert len(result.sizes) == len(result.conductances)
        assert len(result.sizes) <= result.iterations

    def test_dies_gracefully_when_set_empties(self, barbell):
        # With extinction retries disabled the plain ESP often absorbs at
        # the empty set immediately; the best set seen (the seed singleton)
        # is still returned.
        died = 0
        for seed in range(20):
            result = evolving_set_process(
                barbell, 0, EvolvingSetParams(max_iterations=5, extinction_retries=0), rng=seed
            )
            assert len(result.cluster) >= 1
            died += result.iterations < 5
        assert died > 0  # extinction is common for the plain process

    def test_high_variance_but_some_run_finds_barbell_cut(self, barbell):
        # The paper: "the behavior of the algorithm [varies] widely as the
        # random choices in each iteration can lead to very different
        # sets".  Across restarts, at least one run finds the clique cut
        # (conductance 1/91 for two 10-cliques and a bridge).
        best = min(
            evolving_set_process(
                barbell, 0, EvolvingSetParams(max_iterations=40), rng=seed
            ).conductance
            for seed in range(12)
        )
        assert best == pytest.approx(1 / 91)

    def test_target_conductance_stops_early(self, barbell):
        result = evolving_set_process(
            barbell, 0, EvolvingSetParams(max_iterations=500, target_conductance=0.2), rng=0
        )
        assert result.iterations <= 500
        if result.conductance <= 0.2:
            assert result.iterations < 500

    def test_volume_cap_bounds_growth(self, planted):
        result = evolving_set_process(
            planted, 0, EvolvingSetParams(max_iterations=200, volume_cap=50), rng=4
        )
        # The run stops within an iteration of exceeding the cap.
        assert result.iterations <= 200

    def test_zero_degree_seed_rejected(self):
        from repro.graph import from_edge_list

        graph = from_edge_list([(0, 1)], num_vertices=3)
        with pytest.raises(ValueError):
            evolving_set_process(graph, 2)

    def test_clique_is_absorbing_quality(self):
        # Inside a clique component every vertex has the same transition
        # probability, so once the set covers the clique it stays there.
        graph = complete_graph(8)
        result = evolving_set_process(graph, 0, EvolvingSetParams(max_iterations=50), rng=5)
        assert len(result.cluster) <= 8

    def test_str(self, planted):
        result = evolving_set_process(planted, 0, rng=0)
        assert "EvolvingSetResult" in str(result)
