"""Cross-cutting property tests: paper invariants on arbitrary random graphs.

Hypothesis drives graph topology (edge lists over a bounded vertex set) and
seeds; the properties are the ones the paper's analysis rests on, so they
must hold on *every* graph, not just the well-behaved fixtures:

* sweep conductances always in [0, 1] (0 only for whole components);
* PR-Nibble conserves mass and terminates below threshold;
* Nibble never creates mass;
* HK-PR parallel == sequential;
* the conductance metric agrees with its complement-set symmetry.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HKPRParams,
    NibbleParams,
    PRNibbleParams,
    boundary_size,
    hk_pr_parallel,
    hk_pr_sequential,
    nibble,
    pr_nibble,
    sweep_cut,
)
from repro.core.result import vector_items
from repro.graph import from_edge_list

edge_lists = st.lists(
    st.tuples(st.integers(0, 24), st.integers(0, 24)),
    min_size=1,
    max_size=120,
)


def _connected_seed(graph):
    degrees = graph.degrees()
    eligible = np.flatnonzero(degrees > 0)
    return None if len(eligible) == 0 else int(eligible[0])


@settings(max_examples=30)
@given(edge_lists)
def test_sweep_conductances_in_unit_interval(edges):
    graph = from_edge_list(edges, num_vertices=25)
    seed = _connected_seed(graph)
    if seed is None:
        return
    result = pr_nibble(graph, seed, PRNibbleParams(alpha=0.1, eps=1e-4))
    if result.support_size() == 0:
        return
    sweep = sweep_cut(graph, result.vector)
    assert (sweep.conductances >= 0).all()
    assert (sweep.conductances <= 1.0).all()
    assert 0 <= sweep.best_index < len(sweep.order)
    # Conductance 0 can only occur for a prefix with no boundary at all
    # (a union of whole connected components).
    zero = sweep.conductances == 0.0
    if zero.any():
        first_zero = int(np.flatnonzero(zero)[0])
        members = sweep.order[: first_zero + 1]
        assert boundary_size(graph, members) == 0


@settings(max_examples=30)
@given(edge_lists, st.booleans(), st.booleans())
def test_pr_nibble_mass_and_termination(edges, optimized, parallel):
    graph = from_edge_list(edges, num_vertices=25)
    seed = _connected_seed(graph)
    if seed is None:
        return
    params = PRNibbleParams(alpha=0.1, eps=1e-4, optimized=optimized)
    result = pr_nibble(graph, seed, params, parallel=parallel)
    _, p_values = vector_items(result.vector)
    total = p_values.sum() + result.extras["residual_mass"]
    assert total == pytest.approx(1.0, abs=1e-9)
    res_keys, res_values = vector_items(result.extras["residual"])
    degrees = graph.degrees(res_keys)
    assert (res_values < params.eps * degrees + 1e-12).all()


@settings(max_examples=30)
@given(edge_lists, st.booleans())
def test_nibble_never_creates_mass(edges, parallel):
    graph = from_edge_list(edges, num_vertices=25)
    seed = _connected_seed(graph)
    if seed is None:
        return
    result = nibble(graph, seed, NibbleParams(max_iterations=8, eps=1e-4), parallel=parallel)
    _, values = vector_items(result.vector)
    assert values.sum() <= 1.0 + 1e-9
    assert (values >= 0).all()


@settings(max_examples=20)
@given(edge_lists)
def test_hk_pr_schedules_identical(edges):
    graph = from_edge_list(edges, num_vertices=25)
    seed = _connected_seed(graph)
    if seed is None:
        return
    params = HKPRParams(t=3.0, taylor_degree=6, eps=1e-3)
    seq_keys, seq_values = vector_items(hk_pr_sequential(graph, seed, params).vector)
    par_keys, par_values = vector_items(hk_pr_parallel(graph, seed, params).vector)
    seq = dict(zip(seq_keys.tolist(), seq_values.tolist()))
    par = dict(zip(par_keys.tolist(), par_values.tolist()))
    assert set(seq) == set(par)
    for key, value in seq.items():
        assert par[key] == pytest.approx(value, rel=1e-9, abs=1e-15)


@settings(max_examples=30)
@given(edge_lists, st.sets(st.integers(0, 24), min_size=1, max_size=12))
def test_boundary_symmetry(edges, vertex_set):
    graph = from_edge_list(edges, num_vertices=25)
    inside = np.asarray(sorted(vertex_set), dtype=np.int64)
    outside = np.setdiff1d(np.arange(25), inside)
    if len(outside) == 0:
        return
    assert boundary_size(graph, inside) == boundary_size(graph, outside)
