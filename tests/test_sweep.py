"""Tests for the sweep cut (repro.core.sweep), sequential and Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sweep_cut, sweep_cut_parallel, sweep_cut_sequential, sweep_order
from repro.graph import erdos_renyi, from_edge_list
from repro.prims import SparseDict, SparseVector

# Mass vector giving the sweep order {A, B, C, D} on the Figure-1 graph:
# scores p/d are A: 0.5, B: 0.45, C: 0.4, D: 0.375.
FIGURE1_VECTOR = {0: 1.0, 1: 0.9, 2: 1.2, 3: 1.5}


class TestPaperWorkedExample:
    """Section 3.1 works the algorithm on Figure 1 with order {A, B, C, D}."""

    def test_order(self, figure1):
        ordered, degrees = sweep_order(figure1, FIGURE1_VECTOR)
        assert ordered.tolist() == [0, 1, 2, 3]
        assert degrees.tolist() == [2, 2, 3, 4]

    def test_sequential_volumes_and_cuts(self, figure1):
        result = sweep_cut_sequential(figure1, FIGURE1_VECTOR)
        # "the array of degrees is [2, 2, 3, 4], and the result of the
        #  prefix sums is [2, 4, 7, 11]"
        assert result.volumes.tolist() == [2, 4, 7, 11]
        # "We find the number of crossing edges for the set {A} ... 2,
        #  {A,B} ... 2, {A,B,C} ... 1, and {A,B,C,D} ... 3."
        assert result.cuts.tolist() == [2, 2, 1, 3]
        assert result.conductances.tolist() == pytest.approx([1.0, 0.5, 1 / 7, 3 / 5])

    def test_parallel_matches_worked_example(self, figure1):
        result = sweep_cut_parallel(figure1, FIGURE1_VECTOR)
        assert result.volumes.tolist() == [2, 4, 7, 11]
        assert result.cuts.tolist() == [2, 2, 1, 3]
        assert result.conductances.tolist() == pytest.approx([1.0, 0.5, 1 / 7, 3 / 5])

    def test_best_set_is_abc(self, figure1):
        for parallel in (False, True):
            result = sweep_cut(figure1, FIGURE1_VECTOR, parallel=parallel)
            assert sorted(result.best_cluster.tolist()) == [0, 1, 2]
            assert result.best_conductance == pytest.approx(1 / 7)


class TestInputHandling:
    def test_accepts_sparse_dict(self, figure1):
        vector = SparseDict(FIGURE1_VECTOR)
        assert sweep_cut(figure1, vector).best_conductance == pytest.approx(1 / 7)

    def test_accepts_sparse_vector(self, figure1):
        vector = SparseVector.from_dict(FIGURE1_VECTOR)
        assert sweep_cut(figure1, vector).best_conductance == pytest.approx(1 / 7)

    def test_zero_and_negative_mass_excluded(self, figure1):
        vector = dict(FIGURE1_VECTOR)
        vector[6] = 0.0
        vector[7] = -1.0
        result = sweep_cut(figure1, vector)
        assert result.num_candidates == 4

    def test_zero_degree_vertices_excluded(self):
        graph = from_edge_list([(0, 1)], num_vertices=3)
        result = sweep_cut(graph, {0: 1.0, 2: 5.0})
        assert result.order.tolist() == [0]

    def test_empty_vector_rejected(self, figure1):
        with pytest.raises(ValueError):
            sweep_cut(figure1, {})
        with pytest.raises(ValueError):
            sweep_cut(figure1, {0: 0.0})

    def test_tie_break_by_vertex_id(self, small_cycle):
        # All scores equal: order must be by ascending id in both variants.
        vector = {v: 1.0 for v in range(6)}
        seq = sweep_cut_sequential(small_cycle, vector)
        par = sweep_cut_parallel(small_cycle, vector)
        assert seq.order.tolist() == list(range(6))
        assert par.order.tolist() == list(range(6))


class TestSequentialParallelEquivalence:
    @settings(max_examples=25)
    @given(st.integers(0, 10**6), st.integers(2, 60))
    def test_random_graphs_and_vectors(self, seed, support):
        rng = np.random.default_rng(seed)
        graph = erdos_renyi(120, 400, seed=rng.integers(2**31))
        degrees = graph.degrees()
        eligible = np.flatnonzero(degrees > 0)
        if len(eligible) == 0:
            return
        chosen = rng.choice(eligible, size=min(support, len(eligible)), replace=False)
        vector = {int(v): float(rng.random() + 1e-6) for v in chosen}
        seq = sweep_cut_sequential(graph, vector)
        par = sweep_cut_parallel(graph, vector)
        assert np.array_equal(seq.order, par.order)
        assert np.array_equal(seq.volumes, par.volumes)
        assert np.array_equal(seq.cuts, par.cuts)
        assert np.allclose(seq.conductances, par.conductances)
        assert seq.best_index == par.best_index

    def test_larger_planted_graph(self, planted):
        rng = np.random.default_rng(42)
        vector = {int(v): float(rng.random()) + 0.01 for v in range(0, 400)}
        seq = sweep_cut_sequential(planted, vector)
        par = sweep_cut_parallel(planted, vector)
        assert np.array_equal(seq.cuts, par.cuts)
        assert seq.best_index == par.best_index


class TestSweepSemantics:
    def test_full_graph_prefix_gets_conductance_one(self, figure1):
        # Sweeping a vector supported on every vertex: the last prefix has
        # vol = 2m, denominator 0, conductance 1 by convention.
        vector = {v: 1.0 for v in range(8)}
        result = sweep_cut(figure1, vector)
        assert result.conductances[-1] == 1.0

    def test_finds_planted_cut(self, planted, planted_community):
        # Indicator mass on the planted community must recover it exactly.
        vector = {int(v): 1.0 for v in planted_community}
        result = sweep_cut(planted, vector)
        assert sorted(result.best_cluster.tolist()) == planted_community.tolist()

    def test_result_str(self, figure1):
        text = str(sweep_cut(figure1, FIGURE1_VECTOR))
        assert "N=4" in text and "phi*=" in text
