"""Tests for the AST invariant checker (repro.analysis) rule families.

Each rule gets minimal should-fail and should-pass fixture snippets,
written to a tmp tree and analyzed through the public entry point.  The
knob-threading/wire-schema/error-surface families additionally run
against *mutated copies of the real sources* — the acceptance bar is
that deliberately introducing each historical bug class (an unthreaded
``EngineOptions`` field, an un-torn-down ``SharedMemory``, a
``time.time()`` in ``core/pr_nibble.py``, a ``RequestError`` naming a
nonexistent field) makes the corresponding rule fail.  Finally, the
shipped tree itself must analyze clean — the same gate CI enforces.
"""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, analyze

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def write(root: Path, relative: str, code: str) -> Path:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return path


def rules_of(report) -> list[str]:
    return [finding.rule for finding in report.findings]


def copy_real_sources(root: Path) -> dict[str, Path]:
    """A fixture tree mirroring the real five-layer knob surface."""
    mapping = {
        "core/options.py": REPO_SRC / "repro/core/options.py",
        "engine/executor.py": REPO_SRC / "repro/engine/executor.py",
        "serve/service.py": REPO_SRC / "repro/serve/service.py",
        "cli.py": REPO_SRC / "repro/cli.py",
    }
    copies = {}
    for relative, source in mapping.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source, target)
        copies[relative] = target
    return copies


class TestResourceLifecycle:
    def test_discarded_creation_flagged(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(nbytes):
                SharedMemory(create=True, size=nbytes)
            """,
        )
        report = analyze([tmp_path])
        assert rules_of(report) == ["resource-lifecycle"]

    def test_local_without_teardown_flagged(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            def serve(context, jobs):
                pool = context.Pool(4)
                for job in jobs:
                    job()
                pool.terminate()  # straight-line close: leaks if a job raises
            """,
        )
        report = analyze([tmp_path])
        assert rules_of(report) == ["resource-lifecycle"]

    def test_try_finally_teardown_passes(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            def serve(context, jobs):
                pool = context.Pool(4)
                try:
                    for job in jobs:
                        job()
                finally:
                    pool.terminate()
            """,
        )
        assert analyze([tmp_path]).clean

    def test_with_block_passes(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def export(nbytes):
                with SharedMemory(create=True, size=nbytes) as segment:
                    return segment.name
            """,
        )
        assert analyze([tmp_path]).clean

    def test_ownership_transfer_passes(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            import atexit
            from multiprocessing.shared_memory import SharedMemory

            def export(nbytes):
                segment = SharedMemory(create=True, size=nbytes)
                atexit.register(segment.unlink)
                return segment

            def attach(name):
                return SharedMemory(name=name)

            class Holder:
                def __init__(self, graph):
                    self._session = graph.open_session()
            """,
        )
        assert analyze([tmp_path]).clean

    def test_unclosed_session_flagged(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            def run(engine, jobs):
                session = engine.open_session()
                return list(session.run(jobs))
            """,
        )
        report = analyze([tmp_path])
        assert rules_of(report) == ["resource-lifecycle"]

    def test_suppression_comment_honoured(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            """
            def run(engine, jobs):
                session = engine.open_session()  # repro: ignore[resource-lifecycle]
                return list(session.run(jobs))
            """,
        )
        report = analyze([tmp_path])
        assert report.clean
        assert report.suppressed == 1


class TestDeterminism:
    def test_wall_clock_in_core_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import time

            def diffuse(graph):
                started = time.time()
                return started
            """,
        )
        report = analyze([tmp_path])
        assert rules_of(report) == ["wall-clock"]

    def test_wall_clock_in_real_pr_nibble_flagged(self, tmp_path):
        """The acceptance-criteria mutation: time.time() in core/pr_nibble.py."""
        target = tmp_path / "core/pr_nibble.py"
        target.parent.mkdir(parents=True)
        original = (REPO_SRC / "repro/core/pr_nibble.py").read_text()
        mutated = original.replace(
            "def pr_nibble", "import time\n\n\ndef pr_nibble", 1
        )
        assert mutated != original
        lines = mutated.splitlines()
        for number, line in enumerate(lines):
            if line.startswith("import time"):
                lines.insert(number + 1, "_NOW = time.time()")
                break
        target.write_text("\n".join(lines))
        report = analyze([tmp_path])
        assert "wall-clock" in rules_of(report)

    def test_from_import_perf_counter_flagged(self, tmp_path):
        write(
            tmp_path,
            "prims/mod.py",
            """
            from time import perf_counter

            def scan(xs):
                return perf_counter()
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["wall-clock"]

    def test_wall_clock_outside_hot_dirs_ignored(self, tmp_path):
        write(
            tmp_path,
            "bench/mod.py",
            """
            import time

            def probe():
                return time.perf_counter()
            """,
        )
        assert analyze([tmp_path]).clean

    def test_global_numpy_random_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["global-random"]

    def test_global_random_module_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import random

            def pick(xs):
                random.shuffle(xs)
                return xs
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["global-random"]

    def test_explicit_generator_passes(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import numpy as np

            def sample(n, seed):
                rng = np.random.default_rng(seed)
                return rng.random(n)
            """,
        )
        assert analyze([tmp_path]).clean

    def test_set_iteration_flagged(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            def visit(frontier):
                out = []
                for vertex in set(frontier):
                    out.append(vertex)
                return [v for v in {1, 2, 3}] + out
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["unordered-iter"] * 2

    def test_sorted_set_iteration_passes(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            def visit(frontier):
                return [vertex for vertex in sorted(set(frontier))]
            """,
        )
        assert analyze([tmp_path]).clean


class TestFastMath:
    def test_forbidden_flag_flagged(self, tmp_path):
        write(
            tmp_path,
            "kernels/build.py",
            """
            CFLAGS = ["-O3", "-shared", "-fPIC", "-ffp-contract=off",
                      "-fno-fast-math", "-ffast-math"]
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["fast-math"]

    def test_missing_determinism_pin_flagged(self, tmp_path):
        write(
            tmp_path,
            "kernels/build.py",
            """
            CFLAGS = ["-O3", "-shared", "-fPIC"]
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["fast-math"] * 2

    def test_fast_math_in_command_string_flagged(self, tmp_path):
        write(
            tmp_path,
            "build.py",
            """
            import subprocess

            def build(cc, out):
                subprocess.run([cc, "-O3 -ffast-math", "-o", out])
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["fast-math"]

    def test_real_cflags_pass(self, tmp_path):
        target = tmp_path / "kernels/_ckernels.py"
        target.parent.mkdir(parents=True)
        shutil.copyfile(REPO_SRC / "repro/kernels/_ckernels.py", target)
        report = analyze([tmp_path])
        assert report.clean


class TestKnobThreading:
    def add_engine_knob(self, options_path: Path, thread_wire: bool = True) -> None:
        text = options_path.read_text()
        mutated = text.replace(
            '    graph_version: int | None = None\n\n    def resolved_backend',
            '    graph_version: int | None = None\n'
            '    new_knob: int | None = None\n'
            '\n    def resolved_backend',
            1,
        )
        assert mutated != text, "EngineOptions anchor moved; update the test"
        if thread_wire:
            wired = mutated.replace(
                '"graph_version",\n)', '"graph_version",\n    "new_knob",\n)', 1
            )
            if wired == mutated:
                wired = mutated.replace(
                    '"graph_version")', '"graph_version", "new_knob")', 1
                )
            mutated = wired
        options_path.write_text(mutated)

    def test_clean_copies_pass(self, tmp_path):
        copy_real_sources(tmp_path)
        report = analyze([tmp_path])
        assert report.clean, report.render()

    def test_unthreaded_field_flagged_in_every_layer(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        self.add_engine_knob(copies["core/options.py"])
        report = analyze([tmp_path])
        flagged = {
            (finding.path.split("/", 1)[-1], finding.rule)
            for finding in report.findings
        }
        assert ("engine/executor.py", "knob-threading") in flagged
        assert ("serve/service.py", "knob-threading") in flagged
        assert ("cli.py", "knob-threading") in flagged
        messages = " ".join(finding.message for finding in report.findings)
        assert "BatchEngine.__init__" in messages
        assert "resolve_engine" in messages
        assert "DiffusionService.__init__" in messages

    def test_knob_missing_from_wire_tuple_flagged(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        self.add_engine_knob(copies["core/options.py"], thread_wire=False)
        report = analyze([tmp_path])
        messages = [
            finding.message
            for finding in report.findings
            if finding.rule == "knob-threading"
        ]
        assert any("_ENGINE_KNOBS" in message for message in messages)

    # The graph_version knob rides the same five-layer surface as every
    # other EngineOptions field; these mutations prove that dropping it
    # from any single layer is caught by the rule (the gate the evolving
    # plane relies on — see docs/evolving.md).

    def knob_messages(self, report) -> list[str]:
        return [
            finding.message
            for finding in report.findings
            if finding.rule == "knob-threading"
        ]

    def test_graph_version_dropped_from_wire_tuple_flagged(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        options = copies["core/options.py"]
        text = options.read_text()
        mutated = text.replace(
            '    "kernel",\n    "graph_version",\n)', '    "kernel",\n)', 1
        )
        assert mutated != text, "_ENGINE_KNOBS anchor moved; update the test"
        options.write_text(mutated)
        messages = self.knob_messages(analyze([tmp_path]))
        assert any(
            "graph_version" in message and "_ENGINE_KNOBS" in message
            for message in messages
        ), messages

    def test_graph_version_dropped_from_service_flagged(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        service = copies["serve/service.py"]
        text = service.read_text()
        mutated = text.replace(
            "        graph_version: int | None = None,\n", "", 1
        )
        assert mutated != text, "DiffusionService anchor moved; update the test"
        service.write_text(mutated)
        messages = self.knob_messages(analyze([tmp_path]))
        assert any(
            "DiffusionService.__init__" in message and "'graph_version'" in message
            for message in messages
        ), messages

    def test_graph_version_cli_flag_removal_flagged(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        cli = copies["cli.py"]
        text = cli.read_text()
        mutated = text.replace('"--at-version",', '"--was-at-version",', 1)
        assert mutated != text, "--at-version anchor moved; update the test"
        cli.write_text(mutated)
        messages = self.knob_messages(analyze([tmp_path]))
        assert any(
            "--graph-version or --at-version" in message for message in messages
        ), messages


class TestWireSchema:
    def test_request_field_missing_from_known_set_flagged(self, tmp_path):
        copies = copy_real_sources(tmp_path)
        options = copies["core/options.py"]
        text = options.read_text()
        mutated = text.replace(
            "    id: Any = None\n",
            "    id: Any = None\n    trace: str | None = None\n",
            1,
        )
        assert mutated != text
        options.write_text(mutated)
        report = analyze([tmp_path])
        wire = [f for f in report.findings if f.rule == "wire-schema"]
        assert wire, report.render()
        assert any("'trace'" in finding.message for finding in wire)


class TestErrorSurface:
    def copy_options(self, tmp_path: Path) -> None:
        target = tmp_path / "core/options.py"
        target.parent.mkdir(parents=True)
        shutil.copyfile(REPO_SRC / "repro/core/options.py", target)

    def test_nonexistent_field_flagged(self, tmp_path):
        self.copy_options(tmp_path)
        write(
            tmp_path,
            "serve/handlers.py",
            """
            from ..core.options import RequestError

            def reject(value):
                raise RequestError("bogus_field", f"bad value {value!r}")
            """,
        )
        report = analyze([tmp_path])
        assert rules_of(report) == ["error-surface"]
        assert "bogus_field" in report.findings[0].message

    def test_canonical_fields_pass(self, tmp_path):
        self.copy_options(tmp_path)
        write(
            tmp_path,
            "serve/handlers.py",
            """
            from ..core.options import RequestError

            def reject(name, value):
                if value is None:
                    raise RequestError(None, "payload must be an object")
                if name == "seeds":
                    raise RequestError("seeds", "seeds must be integers")
                if name == "alpha":
                    raise RequestError("params.alpha", "alpha out of range")
                raise RequestError(f"params.{name}", "unknown parameter")
            """,
        )
        assert analyze([tmp_path]).clean

    def test_keyword_field_argument_checked(self, tmp_path):
        self.copy_options(tmp_path)
        write(
            tmp_path,
            "serve/handlers.py",
            """
            from ..core.options import RequestError

            def reject():
                raise RequestError(field="not_a_field", message="nope")
            """,
        )
        assert rules_of(analyze([tmp_path])) == ["error-surface"]


class TestFramework:
    def test_syntax_error_becomes_finding(self, tmp_path):
        write(tmp_path, "mod.py", "def broken(:\n")
        report = analyze([tmp_path])
        assert rules_of(report) == ["syntax-error"]

    def test_missing_path_raises_analysis_error(self, tmp_path):
        from repro.analysis import AnalysisError

        with pytest.raises(AnalysisError):
            analyze([tmp_path / "nope"])

    def test_select_subset_of_rules(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import time

            def f(engine):
                session = engine.open_session()
                return time.time(), session
            """,
        )
        wall_only = [rule for rule in ALL_RULES if rule.id == "wall-clock"]
        report = analyze([tmp_path], wall_only)
        assert rules_of(report) == ["wall-clock"]

    def test_ignore_all_suppresses_any_rule(self, tmp_path):
        write(
            tmp_path,
            "core/mod.py",
            """
            import time

            def f():
                return time.time()  # repro: ignore[all]
            """,
        )
        report = analyze([tmp_path])
        assert report.clean
        assert report.suppressed == 1


class TestShippedTree:
    def test_repro_package_analyzes_clean(self):
        """The CI gate: the shipped tree has zero findings."""
        report = analyze([REPO_SRC])
        assert report.clean, report.render()
