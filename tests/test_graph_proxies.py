"""Tests for the Table-2 proxy registry (repro.graph.proxies)."""

from __future__ import annotations

import pytest

from repro.graph import PROXIES, load_proxy, proxy_names
from repro.graph.proxies import default_scale


class TestRegistry:
    def test_table2_rows_present(self):
        # All ten Table-2 graphs, in row order.
        assert proxy_names() == [
            "soc-LJ",
            "cit-Patents",
            "com-LJ",
            "com-Orkut",
            "nlpkkt240",
            "Twitter",
            "com-friendster",
            "Yahoo",
            "randLocal",
            "3D-grid",
        ]

    def test_paper_sizes_recorded(self):
        spec = PROXIES["Yahoo"]
        assert spec.paper_vertices == 1_413_511_391
        assert spec.paper_edges == 6_434_561_035
        assert "Yahoo" in spec.describe()

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_proxy("no-such-graph")


class TestLoading:
    @pytest.mark.parametrize("name", proxy_names())
    def test_every_proxy_builds(self, name):
        graph = load_proxy(name, scale=0.05)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_cache_returns_same_object(self):
        a = load_proxy("3D-grid", scale=0.1)
        b = load_proxy("3D-grid", scale=0.1)
        assert a is b

    def test_scale_changes_size(self):
        small = load_proxy("randLocal", scale=0.05)
        large = load_proxy("randLocal", scale=0.2)
        assert large.num_vertices > small.num_vertices

    def test_seed_changes_graph(self):
        a = load_proxy("soc-LJ", scale=0.05, seed=0)
        b = load_proxy("soc-LJ", scale=0.05, seed=1)
        assert a is not b

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert default_scale() == 0.25

    def test_mesh_proxy_is_regular(self):
        graph = load_proxy("nlpkkt240", scale=0.1)
        assert (graph.degrees() == 6).all()
