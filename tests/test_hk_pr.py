"""Tests for deterministic heat kernel PageRank (repro.core.hk_pr)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    HKPRParams,
    hk_pr,
    hk_pr_parallel,
    hk_pr_sequential,
    psi_coefficients,
    sweep_cut,
)
from repro.core.result import vector_items
from repro.graph import cycle_graph


def _as_dict(result):
    keys, values = vector_items(result.vector)
    return dict(zip(keys.tolist(), values.tolist()))


class TestPsiCoefficients:
    def test_direct_sum_formula(self):
        # psi_k = sum_{m=0}^{N-k} k!/(m+k)! t^m, checked term by term.
        t, n = 3.0, 12
        psi = psi_coefficients(t, n)
        for k in range(n + 1):
            direct = sum(
                math.factorial(k) / math.factorial(m + k) * t**m for m in range(n - k + 1)
            )
            assert psi[k] == pytest.approx(direct, rel=1e-12)

    def test_boundary_values(self):
        psi = psi_coefficients(10.0, 40)
        assert psi[40] == 1.0
        # psi_0 = sum_{m<=N} t^m/m! converges to e^t as N grows.
        assert psi[0] == pytest.approx(math.exp(10.0), rel=1e-6)

    def test_monotone_decreasing_in_k(self):
        psi = psi_coefficients(5.0, 15)
        assert all(a > b for a, b in zip(psi, psi[1:]))


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            HKPRParams(t=0.0)
        with pytest.raises(ValueError):
            HKPRParams(taylor_degree=0)
        with pytest.raises(ValueError):
            HKPRParams(eps=2.0)


class TestSequentialParallelEquivalence:
    """Section 3.4: the parallel algorithm "applies the same updates as the
    sequential algorithm and thus the vector returned is the same"."""

    @pytest.mark.parametrize("eps", [1e-3, 1e-4, 1e-5])
    def test_identical_vectors(self, planted, eps):
        params = HKPRParams(t=5.0, taylor_degree=10, eps=eps)
        seq = _as_dict(hk_pr_sequential(planted, 0, params))
        par = _as_dict(hk_pr_parallel(planted, 0, params))
        assert set(seq) == set(par)
        for key, value in seq.items():
            assert par[key] == pytest.approx(value, rel=1e-9, abs=1e-15)

    def test_same_push_counts(self, planted):
        params = HKPRParams(t=5.0, taylor_degree=10, eps=1e-4)
        seq = hk_pr_sequential(planted, 0, params)
        par = hk_pr_parallel(planted, 0, params)
        assert seq.pushes == par.pushes
        assert par.iterations <= params.taylor_degree


class TestApproximationQuality:
    def test_approximates_truncated_heat_kernel(self):
        # On a small cycle, compare against the exact series the push
        # procedure targets, computed with dense matrix powers.  Levels
        # 0..N-1 contribute t^k/k! P^k s; the last-level rule
        # "p[w] += r[(v, N-1)] / d(v)" distributes the level-(N-1) mass
        # through P once more with unit weight, adding
        # t^{N-1}/(N-1)! P^N s.  The degree-normalised residual error is
        # bounded by the push thresholds (eps at the e^t scale).
        graph = cycle_graph(20)
        t, taylor_degree, eps = 2.0, 15, 1e-4
        params = HKPRParams(t=t, taylor_degree=taylor_degree, eps=eps)
        result = hk_pr(graph, 0, params)

        n = graph.num_vertices
        adjacency = np.zeros((n, n))
        for v in range(n):
            adjacency[graph.neighbors_of(v), v] = 1.0
        walk = adjacency / graph.degrees()[None, :]  # P = A D^-1 acting on columns
        seed_vec = np.zeros(n)
        seed_vec[0] = 1.0
        exact = np.zeros(n)
        term = seed_vec.copy()
        for k in range(taylor_degree):
            exact += term * t**k / math.factorial(k)
            term = walk @ term
        # term now holds P^N s.
        exact += term * t ** (taylor_degree - 1) / math.factorial(taylor_degree - 1)
        approx = np.zeros(n)
        keys, values = vector_items(result.vector)
        approx[keys] = values
        error = np.abs(approx - exact) / graph.degrees()
        assert error.max() <= eps * math.exp(t)

    def test_tighter_eps_means_more_work_and_support(self, planted):
        coarse = hk_pr(planted, 0, HKPRParams(5.0, 10, 1e-3))
        fine = hk_pr(planted, 0, HKPRParams(5.0, 10, 1e-5))
        assert fine.touched_edges >= coarse.touched_edges
        assert fine.support_size() >= coarse.support_size()

    def test_larger_taylor_degree_refines(self, planted):
        shallow = hk_pr(planted, 0, HKPRParams(5.0, 3, 1e-4))
        deep = hk_pr(planted, 0, HKPRParams(5.0, 15, 1e-4))
        assert deep.extras.get("levels", deep.iterations) >= shallow.extras.get(
            "levels", shallow.iterations
        )


class TestRecovery:
    def test_finds_planted_community(self, planted, planted_community):
        result = hk_pr(planted, 0, HKPRParams(t=5.0, taylor_degree=12, eps=1e-5))
        sweep = sweep_cut(planted, result.vector)
        found = set(sweep.best_cluster.tolist())
        truth = set(planted_community.tolist())
        assert len(found & truth) / len(found | truth) > 0.8

    def test_multi_seed(self, planted):
        result = hk_pr(planted, np.array([0, 5]), HKPRParams(3.0, 8, 1e-4))
        assert result.support_size() > 2

    def test_seed_level_zero_always_processed(self, small_cycle):
        # Even with a huge eps the seed itself is diffused once.
        result = hk_pr(small_cycle, 0, HKPRParams(t=1.0, taylor_degree=5, eps=0.9))
        assert result.pushes >= 1
        assert result.support_size() >= 1
