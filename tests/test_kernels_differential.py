"""Cross-kernel differential harness: compiled kernels vs the Python loops.

Hypothesis generates random CSR graphs (edge lists over a bounded vertex
set, the same strategy as the PR-5 property suite) and drives every
compiled kernel available in this environment through seed/alpha/eps
grids, asserting **bit identity** with ``kernel="python"`` — not
approximate equality.  The compiled kernels replicate the reference
loops' IEEE-754 operation order exactly, so any divergence is a kernel
bug, never a tolerance question.  Checked per case:

* the ``p`` and ``r`` sparse vectors: values *and* entry order (entry
  order is what ``vector_items`` serialises into caches and across
  process boundaries);
* the sweep profile: order, volumes, cuts, conductances, best index;
* the counters: pushes, touched edges;
* the recorded work/depth profile (cost accounting must not depend on
  the kernel, or cache entries would disagree);
* rand-HK-PR walks: same rng seed => same destination histogram.

On hosts with no compiled backend the cross-kernel cases skip, but the
array-twin cases (``repro.kernels.reference`` vs the object-level core
loops — two independent Python renderings of the same algorithm) always
run, so the harness is never vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PRNibbleParams,
    RandHKPRParams,
    pr_nibble,
    rand_hk_pr,
    sweep_cut,
)
from repro.core.result import vector_items
from repro.core.sweep import sweep_order
from repro.graph import ShardedCSR, barbell_graph, from_edge_list
from repro.kernels import available_kernels, reference
from repro.runtime import track

COMPILED = tuple(name for name in available_kernels() if name != "python")

compiled_kernels = pytest.mark.parametrize(
    "kernel",
    COMPILED
    or [pytest.param("none", marks=pytest.mark.skip(reason="no compiled kernel"))],
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 24), st.integers(0, 24)),
    min_size=1,
    max_size=120,
)

param_grid = st.sampled_from(
    [
        (0.1, 1e-4, False),
        (0.1, 1e-4, True),
        (0.05, 1e-5, False),
        (0.05, 1e-5, True),
        (0.2, 1e-3, True),
    ]
)


def _connected_seed(graph):
    degrees = graph.degrees()
    eligible = np.flatnonzero(degrees > 0)
    return None if len(eligible) == 0 else int(eligible[0])


def assert_diffusions_identical(a, b):
    a_keys, a_values = vector_items(a.vector)
    b_keys, b_values = vector_items(b.vector)
    assert np.array_equal(a_keys, b_keys), "p entry order diverged"
    assert np.array_equal(a_values, b_values), "p values diverged"
    assert a.pushes == b.pushes
    assert a.touched_edges == b.touched_edges
    assert a.iterations == b.iterations


def assert_residuals_identical(a, b):
    a_keys, a_values = vector_items(a.extras["residual"])
    b_keys, b_values = vector_items(b.extras["residual"])
    assert np.array_equal(a_keys, b_keys), "r entry order diverged"
    assert np.array_equal(a_values, b_values), "r values diverged"
    assert a.extras["residual_mass"] == b.extras["residual_mass"]


def assert_sweeps_identical(a, b):
    assert np.array_equal(a.order, b.order)
    assert np.array_equal(a.volumes, b.volumes)
    assert np.array_equal(a.cuts, b.cuts)
    assert np.array_equal(a.conductances, b.conductances)
    assert a.best_index == b.best_index


class TestArrayTwinVsCoreLoop:
    """reference.py vs repro.core: two independent Python renderings."""

    @settings(max_examples=30, deadline=None)
    @given(edge_lists, param_grid)
    def test_ppr_push_twin_matches_core(self, edges, grid):
        alpha, eps, optimized = grid
        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        params = PRNibbleParams(alpha=alpha, eps=eps, optimized=optimized)
        core = pr_nibble(graph, seed, params, parallel=False)
        seeds = np.asarray([seed], dtype=np.int64)
        p_keys, p_values, r_keys, r_values, pushes, touched = reference.ppr_push(
            graph.offsets, graph.neighbors, seeds, alpha, eps, optimized
        )
        core_p_keys, core_p_values = vector_items(core.vector)
        assert np.array_equal(p_keys, core_p_keys)
        assert np.array_equal(p_values, core_p_values)
        core_r_keys, core_r_values = vector_items(core.extras["residual"])
        assert np.array_equal(r_keys, core_r_keys)
        assert np.array_equal(r_values, core_r_values)
        assert pushes == core.pushes and touched == core.touched_edges

    @settings(max_examples=30, deadline=None)
    @given(edge_lists)
    def test_sweep_scan_twin_matches_core(self, edges):
        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        result = pr_nibble(graph, seed, PRNibbleParams(alpha=0.1, eps=1e-4))
        if result.support_size() == 0:
            return
        core = sweep_cut(graph, result.vector, parallel=False)
        ordered, degrees = sweep_order(graph, result.vector)
        volumes, cuts = reference.sweep_scan(
            graph.offsets, graph.neighbors, ordered, degrees
        )
        assert np.array_equal(volumes, core.volumes)
        assert np.array_equal(cuts, core.cuts)


class TestPRNibbleDifferential:
    @compiled_kernels
    @settings(max_examples=25, deadline=None)
    @given(edge_lists, param_grid)
    def test_bit_identical_p_r_and_counters(self, kernel, edges, grid):
        alpha, eps, optimized = grid
        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        params = PRNibbleParams(alpha=alpha, eps=eps, optimized=optimized)
        with track() as py_profile:
            python = pr_nibble(graph, seed, params, parallel=False, kernel="python")
        with track() as k_profile:
            compiled = pr_nibble(graph, seed, params, parallel=False, kernel=kernel)
        assert_diffusions_identical(python, compiled)
        assert_residuals_identical(python, compiled)
        assert k_profile.work == py_profile.work
        assert k_profile.depth == py_profile.depth

    @compiled_kernels
    @settings(max_examples=15, deadline=None)
    @given(edge_lists, st.sets(st.integers(0, 24), min_size=2, max_size=4))
    def test_multi_seed_sets(self, kernel, edges, seed_set):
        graph = from_edge_list(edges, num_vertices=25)
        degrees = graph.degrees()
        seeds = np.asarray(sorted(s for s in seed_set if degrees[s] > 0), dtype=np.int64)
        if len(seeds) == 0:
            return
        params = PRNibbleParams(alpha=0.1, eps=1e-4)
        python = pr_nibble(graph, seeds, params, parallel=False, kernel="python")
        compiled = pr_nibble(graph, seeds, params, parallel=False, kernel=kernel)
        assert_diffusions_identical(python, compiled)
        assert_residuals_identical(python, compiled)


class TestSweepDifferential:
    @compiled_kernels
    @settings(max_examples=25, deadline=None)
    @given(edge_lists)
    def test_bit_identical_sweep_profile(self, kernel, edges):
        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        result = pr_nibble(graph, seed, PRNibbleParams(alpha=0.1, eps=1e-4))
        if result.support_size() == 0:
            return
        with track() as py_profile:
            python = sweep_cut(graph, result.vector, parallel=False, kernel="python")
        with track() as k_profile:
            compiled = sweep_cut(graph, result.vector, parallel=False, kernel=kernel)
        assert_sweeps_identical(python, compiled)
        assert k_profile.work == py_profile.work
        assert k_profile.depth == py_profile.depth


class TestRandWalkDifferential:
    @compiled_kernels
    @settings(max_examples=10, deadline=None)
    @given(edge_lists, st.integers(0, 2**31 - 1))
    def test_bit_identical_walks(self, kernel, edges, rng_seed):
        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        params = RandHKPRParams(t=3.0, max_walk_length=6, num_walks=200)
        python = rand_hk_pr(
            graph, seed, params, parallel=True, rng=rng_seed, kernel="python"
        )
        compiled = rand_hk_pr(
            graph, seed, params, parallel=True, rng=rng_seed, kernel=kernel
        )
        assert_diffusions_identical(python, compiled)


class TestShardEscalation:
    """Cut-adjacent seeds on 2-shard graphs: the compiled whole-graph path
    must agree bit-for-bit with the shard view's Python escalation."""

    @compiled_kernels
    def test_boundary_seeds_agree_across_planes(self, kernel):
        from repro.engine import DiffusionJob
        from repro.engine.executor import run_job

        graph = barbell_graph(16)  # the bridge edge is the natural cut
        with ShardedCSR.create(graph, shards=2) as sharded:
            boundary = sharded.handle().boundaries[1]
            seeds = [boundary - 1, boundary]  # one seed each side of the cut
            with sharded.view() as view:
                for seed in seeds:
                    job = DiffusionJob.make(
                        seed, params={"alpha": 0.1, "eps": 1e-5}, kernel=kernel
                    )
                    whole = run_job(graph, job, parallel=False, include_vector=True)
                    shard = run_job(view, job, parallel=False, include_vector=True)
                    assert np.array_equal(whole.vector_keys, shard.vector_keys)
                    assert np.array_equal(whole.vector_values, shard.vector_values)
                    assert whole.pushes == shard.pushes
                    assert whole.work == shard.work
                    assert whole.conductance == shard.conductance
                    assert np.array_equal(whole.cluster, shard.cluster)

    @compiled_kernels
    @settings(max_examples=10, deadline=None)
    @given(edge_lists)
    def test_random_graphs_across_planes(self, kernel, edges):
        from repro.engine import DiffusionJob
        from repro.engine.executor import run_job

        graph = from_edge_list(edges, num_vertices=25)
        seed = _connected_seed(graph)
        if seed is None:
            return
        job = DiffusionJob.make(seed, params={"alpha": 0.1, "eps": 1e-4}, kernel=kernel)
        whole = run_job(graph, job, parallel=False, include_vector=True)
        with ShardedCSR.create(graph, shards=2) as sharded:
            with sharded.view() as view:
                shard = run_job(view, job, parallel=False, include_vector=True)
        assert np.array_equal(whole.vector_keys, shard.vector_keys)
        assert np.array_equal(whole.vector_values, shard.vector_values)
        assert whole.work == shard.work and whole.depth == shard.depth
