"""Tests for the Ligra layer (repro.ligra)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ligra import VertexSubset, edge_map, edge_map_gather, expand_by_degree, vertex_map
from repro.runtime import track


class TestVertexSubset:
    def test_deduplicates_and_sorts(self):
        subset = VertexSubset(np.array([5, 1, 5, 3]))
        assert subset.vertices.tolist() == [1, 3, 5]
        assert len(subset) == 3

    def test_constructors(self):
        assert VertexSubset.empty().is_empty()
        assert VertexSubset.single(4).vertices.tolist() == [4]
        assert VertexSubset.of(2, 1).vertices.tolist() == [1, 2]

    def test_contains(self):
        subset = VertexSubset.of(1, 3, 5)
        assert 3 in subset
        assert 2 not in subset
        assert 99 not in subset

    def test_union(self):
        union = VertexSubset.of(1, 2).union(VertexSubset.of(2, 3))
        assert union.vertices.tolist() == [1, 2, 3]

    def test_where(self):
        subset = VertexSubset.of(1, 2, 3)
        assert subset.where(np.array([True, False, True])).vertices.tolist() == [1, 3]
        with pytest.raises(ValueError):
            subset.where(np.array([True]))

    def test_equality_and_hash(self):
        assert VertexSubset.of(1, 2) == VertexSubset.of(2, 1)
        assert hash(VertexSubset.of(1, 2)) == hash(VertexSubset.of(1, 2))
        assert VertexSubset.of(1) != VertexSubset.of(2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VertexSubset(np.array([-1]))

    def test_iteration(self):
        assert list(VertexSubset.of(3, 1)) == [1, 3]


class TestVertexMap:
    def test_applies_function_to_all_vertices(self, figure1):
        seen = []
        vertex_map(VertexSubset.of(0, 3), lambda vs: seen.append(vs.tolist()))
        assert seen == [[0, 3]]

    def test_output_subset_from_mask(self, figure1):
        subset = VertexSubset.of(0, 1, 2)
        out = vertex_map(subset, lambda vs: vs >= 1)
        assert out.vertices.tolist() == [1, 2]

    def test_none_return_gives_empty(self):
        out = vertex_map(VertexSubset.of(0), lambda vs: None)
        assert out.is_empty()

    def test_work_proportional_to_subset(self):
        with track() as tracker:
            vertex_map(VertexSubset(np.arange(100)), lambda vs: None)
        assert tracker.by_category["vertex_map"].work == 100


class TestEdgeMap:
    def test_applies_to_incident_edges(self, figure1):
        captured = {}

        def fn(sources, targets):
            captured["sources"] = sources.tolist()
            captured["targets"] = targets.tolist()

        edge_map(figure1, VertexSubset.of(0), fn)
        assert captured["sources"] == [0, 0]
        assert captured["targets"] == [1, 2]

    def test_output_frontier_from_edge_mask(self, figure1):
        out = edge_map(figure1, VertexSubset.of(3), lambda s, t: t > 4)
        assert out.vertices.tolist() == [5, 6]

    def test_duplicate_targets_deduplicated(self, figure1):
        # Vertices 0 and 1 both neighbor 2: the output subset holds 2 once.
        out = edge_map(figure1, VertexSubset.of(0, 1), lambda s, t: t == 2)
        assert out.vertices.tolist() == [2]

    def test_bad_mask_shape_rejected(self, figure1):
        with pytest.raises(ValueError):
            edge_map(figure1, VertexSubset.of(0), lambda s, t: np.array([True]))

    def test_work_proportional_to_frontier_volume(self, figure1):
        # Locality: edgeMap over {4} (degree 1) must record far less work
        # than edgeMap over all vertices (volume 16).
        with track() as small:
            edge_map(figure1, VertexSubset.of(4), lambda s, t: None)
        with track() as large:
            edge_map(figure1, VertexSubset(np.arange(8)), lambda s, t: None)
        assert small.work < large.work / 3


class TestGatherHelpers:
    def test_edge_map_gather(self, figure1):
        sources, targets = edge_map_gather(figure1, VertexSubset.of(0, 3))
        assert sources.tolist() == [0, 0, 3, 3, 3, 3]
        assert targets.tolist() == [1, 2, 2, 4, 5, 6]

    def test_expand_by_degree_alignment(self, figure1):
        subset = VertexSubset.of(0, 3)
        per_vertex = np.array([10.0, 20.0])
        expanded = expand_by_degree(figure1, subset, per_vertex)
        assert expanded.tolist() == [10.0, 10.0, 20.0, 20.0, 20.0, 20.0]

    def test_expand_rejects_wrong_length(self, figure1):
        with pytest.raises(ValueError):
            expand_by_degree(figure1, VertexSubset.of(0), np.array([1.0, 2.0]))
