"""End-to-end integration tests across modules.

These mirror the paper's usage patterns: recovering ground-truth clusters
from inside seeds, the interactive remove-and-recluster workflow of the
introduction, profiled runs driving the simulated machine, and running the
full pipeline over the Table-2 proxies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PAPER_MACHINE, LocalClusterer, local_cluster, track
from repro.core import (
    EvolvingSetParams,
    cluster_stats,
    evolving_set_process,
    sweep_cut,
    sweep_cut_sequential,
)
from repro.graph import induced_subgraph, load_proxy, proxy_names


class TestGroundTruthRecovery:
    """All four diffusions recover a planted community from an inside seed."""

    @pytest.mark.parametrize(
        "method, overrides",
        [
            ("nibble", {"eps": 1e-6}),
            ("pr-nibble", {"alpha": 0.05, "eps": 1e-6}),
            ("hk-pr", {"t": 5.0, "taylor_degree": 12, "eps": 1e-5}),
            ("rand-hk-pr", {"t": 5.0, "max_walk_length": 10, "num_walks": 20000}),
        ],
    )
    def test_recovery(self, planted, planted_community, method, overrides):
        result = local_cluster(planted, 0, method=method, **overrides)
        found = set(result.cluster.tolist())
        truth = set(planted_community.tolist())
        jaccard = len(found & truth) / len(found | truth)
        assert jaccard > 0.7, f"{method} found jaccard {jaccard:.2f}"
        assert result.conductance < 0.3

    def test_evolving_sets_recovery_with_restarts(self, planted, planted_community):
        best_phi = 1.0
        best_cluster: set[int] = set()
        for restart in range(10):
            result = evolving_set_process(
                planted, 0, EvolvingSetParams(max_iterations=60), rng=restart
            )
            if result.conductance < best_phi:
                best_phi = result.conductance
                best_cluster = set(result.cluster.tolist())
        truth = set(planted_community.tolist())
        assert best_phi < 0.4
        assert len(best_cluster & truth) / len(best_cluster | truth) > 0.4

    def test_different_methods_similar_clusters(self, planted):
        # Section 6: analysts can "use all of them to find slightly
        # different clusters of similar size from the same seed set".
        clusterer = LocalClusterer(planted)
        results = clusterer.all_methods(0)
        sizes = [r.size for r in results.values()]
        assert max(sizes) <= 3 * min(sizes)


class TestInteractiveWorkflow:
    def test_remove_cluster_and_recluster(self, planted):
        # The introduction's workflow: find a local cluster, remove it,
        # continue exploring the remainder.
        result = local_cluster(planted, 0, method="pr-nibble", alpha=0.05, eps=1e-6)
        remaining = np.setdiff1d(np.arange(planted.num_vertices), result.cluster)
        subgraph, old_ids = induced_subgraph(planted, remaining)
        assert subgraph.num_vertices == planted.num_vertices - result.size
        # A seed inside another community still finds a good cluster.
        new_seed = int(np.flatnonzero(old_ids >= 100)[0])
        second = local_cluster(subgraph, new_seed, method="pr-nibble", alpha=0.05, eps=1e-6)
        assert second.conductance < 0.5
        # Map back to original ids and verify disjointness.
        recovered = old_ids[second.cluster]
        assert len(np.intersect1d(recovered, result.cluster)) == 0


class TestCostModelIntegration:
    def test_diffusion_speedup_in_paper_band(self, planted):
        with track() as tracker:
            local_cluster(planted, 0, method="pr-nibble", alpha=0.05, eps=1e-7)
        speedup = PAPER_MACHINE.self_relative_speedup(tracker, 40)
        assert 2.0 <= speedup <= 52.0

    def test_parallel_work_exceeds_sequential_for_sweep(self, planted):
        vector = local_cluster(planted, 0, method="pr-nibble", eps=1e-6).diffusion.vector
        with track() as seq:
            sweep_cut_sequential(planted, vector)
        with track() as par:
            sweep_cut(planted, vector, parallel=True)
        # The paper: "On a single thread, parallel sweep is slower than
        # sequential sweep due to overheads of the parallel algorithm
        # (e.g., scanning over the edges several times instead of once)."
        assert par.work > seq.work


class TestProxiesEndToEnd:
    @pytest.mark.parametrize("name", proxy_names())
    def test_pipeline_on_every_proxy(self, name):
        graph = load_proxy(name, scale=0.05)
        degrees = graph.degrees()
        seed = int(np.argmax(degrees > 0))
        result = local_cluster(graph, seed, method="pr-nibble", alpha=0.05, eps=1e-4)
        assert result.size >= 1
        stats = cluster_stats(graph, result.cluster)
        assert stats.conductance == pytest.approx(result.conductance)

    def test_mesh_proxies_terminate_fast(self):
        # The paper's observation: meshes have no good local clusters and
        # the diffusions touch little of the graph.
        graph = load_proxy("3D-grid", scale=0.2)
        result = local_cluster(graph, 0, method="pr-nibble", alpha=0.05, eps=1e-4)
        assert result.diffusion.support_size() < graph.num_vertices / 5
