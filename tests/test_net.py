"""Tests for the network serving plane (repro.serve.net).

The load-bearing properties: outcomes served over the socket are
bit-identical to in-process :func:`repro.core.local_cluster` for every
method; each connection's replies come back in its own request order even
when an error or an expensive job lands in the middle; the round-robin
admission loop keeps interactive clients flowing past one greedy bulk
client; a full admission queue answers with a structured 429 instead of
buffering; and :meth:`DiffusionServer.close` drains mid-flight work to
completion before the connections see EOF.

Driven through plain ``asyncio.run`` (no pytest-asyncio requirement),
with real TCP sockets on ephemeral loopback ports.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import local_cluster
from repro.serve import DiffusionServer, DiffusionService

PARAMS = {"alpha": 0.05, "eps": 1e-4}


@pytest.fixture(scope="module")
def graph():
    from repro.graph import planted_partition

    return planted_partition(600, 6, intra_degree=8.0, inter_degree=1.0, seed=5)


async def connect(server):
    assert server.address is not None
    return await asyncio.open_connection(*server.address)


async def send(writer, payload):
    writer.write((json.dumps(payload) + "\n").encode("utf-8"))
    await writer.drain()


async def recv(reader):
    line = await reader.readline()
    assert line, "server closed the connection before replying"
    return json.loads(line)


async def roundtrip(server, *payloads):
    """One NDJSON connection: send every payload, then read every reply."""
    reader, writer = await connect(server)
    for payload in payloads:
        await send(writer, payload)
    replies = [await recv(reader) for _ in payloads]
    writer.close()
    return replies


class TestWireResults:
    def test_concurrent_clients_bit_identical_to_local_cluster(self, graph):
        """Four concurrent socket clients, one per method — every reply
        matches the in-process API bit for bit (satellite contract)."""
        queries = {
            "nibble": {"seeds": [0], "params": {}},
            "pr-nibble": {"seeds": [50, 200], "params": dict(PARAMS)},
            "hk-pr": {"seeds": [300], "params": {"t": 4.0}},
            "rand-hk-pr": {"seeds": [450], "params": {}, "rng": 7},
        }

        async def client(server, method, query):
            payloads = [
                {
                    "v": 1,
                    "seeds": [seed],
                    "method": method,
                    "params": query["params"],
                    "rng": query.get("rng", 0),
                    "include_cluster": True,
                    "id": f"{method}-{seed}",
                }
                for seed in query["seeds"]
            ]
            return await roundtrip(server, *payloads)

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    results = await asyncio.gather(
                        *(client(server, m, q) for m, q in queries.items())
                    )
            return dict(zip(queries, results))

        served = asyncio.run(scenario())
        for method, query in queries.items():
            for seed, reply in zip(query["seeds"], served[method]):
                expected = local_cluster(
                    graph, seed, method=method,
                    rng=query.get("rng", 0), **query["params"],
                )
                assert reply["id"] == f"{method}-{seed}"
                assert reply["method"] == method
                assert reply["cluster"] == expected.cluster.tolist()
                assert reply["conductance"] == expected.conductance
                assert reply["size"] == expected.size

    def test_http_and_ndjson_replies_identical(self, graph):
        """Both framings on one port, same codec: byte-identical reply
        objects for the same request."""
        request = {"v": 1, "seeds": [0], "params": dict(PARAMS), "id": "q"}

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    ndjson = (await roundtrip(server, request))[0]

                    body = json.dumps(request).encode()
                    reader, writer = await connect(server)
                    writer.write(
                        b"POST /v1/cluster HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                    )
                    await writer.drain()
                    status = (await reader.readline()).decode()
                    length = 0
                    while True:
                        header = await reader.readline()
                        if header in (b"\r\n", b"\n"):
                            break
                        if header.lower().startswith(b"content-length:"):
                            length = int(header.split(b":")[1])
                    http = json.loads(await reader.readexactly(length))
                    writer.close()
                    return ndjson, status, http

        ndjson, status, http = asyncio.run(scenario())
        assert status.startswith("HTTP/1.1 200 OK")
        seconds_free = lambda r: {k: v for k, v in r.items() if k != "seconds"}  # noqa: E731
        assert seconds_free(ndjson) == seconds_free(http)


class TestPerClientOrdering:
    def test_replies_in_request_order_even_around_errors(self, graph):
        """An expensive first request, an instantly-rejected second and a
        cheap third still stream back 1, 2, 3 on the same connection."""

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    return await roundtrip(
                        server,
                        {"id": "slow", "seeds": [0],
                         "params": {"alpha": 0.01, "eps": 1e-7}},
                        {"id": "bad", "seeds": [10**9]},
                        {"id": "fast", "seeds": [1],
                         "params": {"alpha": 0.5, "eps": 1e-2}},
                    )

        replies = asyncio.run(scenario())
        assert [r["id"] for r in replies] == ["slow", "bad", "fast"]
        assert replies[0]["size"] > 0
        assert replies[1]["error"]["field"] == "seeds"
        assert "out of range" in replies[1]["error"]["message"]
        assert replies[2]["size"] > 0

    def test_default_reply_ids_are_positional(self, graph):
        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    return await roundtrip(
                        server, {"seeds": [0]}, {"seeds": [1]}, {"not json": 1e999}
                    )

        replies = asyncio.run(scenario())
        assert [r["id"] for r in replies] == [1, 2, 3]


class TestFairness:
    def test_interactive_client_flows_past_greedy_bulk_client(self, graph):
        """One bulk client floods 16 requests; seven interactive clients
        with one request each all finish before the bulk backlog does
        (round-robin admission — queue depth buys no extra slots)."""

        async def bulk_client(server, done_counter):
            payloads = [
                {"id": f"b{i}", "seeds": [i], "priority": "bulk",
                 "params": dict(PARAMS)}
                for i in range(16)
            ]
            replies = await roundtrip(server, *payloads)
            return replies

        async def interactive_client(server, name, bulk_progress):
            # Connect *after* the bulk flood is queued.
            await asyncio.sleep(0.05)
            reply = (await roundtrip(
                server, {"id": name, "seeds": [0], "params": dict(PARAMS)}
            ))[0]
            return reply, bulk_progress()

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service, max_inflight=1) as server:
                    def bulk_progress():
                        return server.stats.replies

                    results = await asyncio.gather(
                        bulk_client(server, bulk_progress),
                        *(interactive_client(server, f"i{n}", bulk_progress)
                          for n in range(7)),
                    )
                    return results, dict(server.stats.by_priority)

        (bulk_replies, *interactive), by_priority = asyncio.run(scenario())
        assert [r["id"] for r in bulk_replies] == [f"b{i}" for i in range(16)]
        total = 16 + 7
        for reply, replies_done_at_finish in interactive:
            assert reply["size"] > 0
            # Every interactive reply lands before the whole workload is
            # done — the greedy client did not starve anyone.
            assert replies_done_at_finish < total
        assert by_priority == {"bulk": 16, "interactive": 7}

    def test_rate_limit_paces_admissions(self, graph):
        """rate=5/burst=1: three requests cannot all be admitted in the
        first burst — the wall clock shows the two refill waits."""

        async def scenario():
            loop = asyncio.get_running_loop()
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service, rate=5, burst=1) as server:
                    begin = loop.time()
                    await roundtrip(
                        server,
                        *({"seeds": [s], "params": dict(PARAMS)} for s in range(3)),
                    )
                    return loop.time() - begin

        assert asyncio.run(scenario()) >= 0.3  # two ~0.2 s refills, minus slack

    def test_full_admission_queue_rejects_with_429(self, graph):
        """max_pending=1 + a slow bucket: the second request waits in the
        queue, the third gets an immediate structured 429."""

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(
                    service, max_pending=1, rate=5, burst=1
                ) as server:
                    reader, writer = await connect(server)
                    await send(writer, {"id": "q1", "seeds": [0],
                                        "params": dict(PARAMS)})
                    first = await recv(reader)  # q1 admitted and answered
                    await send(writer, {"id": "q2", "seeds": [1],
                                        "params": dict(PARAMS)})
                    await send(writer, {"id": "q3", "seeds": [2],
                                        "params": dict(PARAMS)})
                    second, third = await recv(reader), await recv(reader)
                    writer.close()
                    return first, second, third, server.stats.rejected

        first, second, third, rejected = asyncio.run(scenario())
        assert first["size"] > 0 and second["size"] > 0
        assert third["error"]["code"] == 429
        assert "queue full" in third["error"]["message"]
        assert rejected == 1


class TestDrain:
    def test_clean_drain_mid_flight(self, graph):
        """close() with five requests in flight: all five replies arrive,
        in order, then EOF — nothing is dropped, nothing hangs."""

        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                server = await DiffusionServer(service).start()
                reader, writer = await connect(server)
                for i in range(5):
                    await send(writer, {"id": f"q{i}", "seeds": [i],
                                        "params": dict(PARAMS)})
                while server.stats.requests < 5:  # all five read, none done
                    await asyncio.sleep(0.001)
                await server.close()  # drain: finish all five, then EOF
                replies = [await recv(reader) for _ in range(5)]
                assert await reader.readline() == b""  # EOF after the flush
                writer.close()
                return replies, server.stats

        replies, stats = asyncio.run(scenario())
        assert [r["id"] for r in replies] == [f"q{i}" for i in range(5)]
        assert all(r["size"] > 0 for r in replies)
        assert stats.replies == 5 and stats.rejected == 0
        assert "replies=5" in stats.describe()

    def test_new_connections_refused_after_close(self, graph):
        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                server = await DiffusionServer(service).start()
                address = server.address
                await server.close()
                with pytest.raises(OSError):
                    await asyncio.open_connection(*address)

        asyncio.run(scenario())

    def test_close_is_idempotent_and_unstarted_close_is_safe(self, graph):
        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                await DiffusionServer(service).close()  # never started
                server = await DiffusionServer(service).start()
                await server.close()
                await server.close()

        asyncio.run(scenario())


class TestHTTPFraming:
    def _exchange(self, raw):
        """Write one raw HTTP request, return (status_line, reply_dict)."""

        async def scenario(graph):
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    reader, writer = await connect(server)
                    writer.write(raw)
                    await writer.drain()
                    status = (await reader.readline()).decode()
                    length = 0
                    while True:
                        header = await reader.readline()
                        if header in (b"\r\n", b"\n", b""):
                            break
                        if header.lower().startswith(b"content-length:"):
                            length = int(header.split(b":")[1])
                    body = json.loads(await reader.readexactly(length))
                    writer.close()
                    return status, body

        return scenario

    def test_get_is_405(self, graph):
        status, body = asyncio.run(
            self._exchange(b"GET /v1/cluster HTTP/1.1\r\n\r\n")(graph)
        )
        assert status.startswith("HTTP/1.1 405")
        assert body["error"]["code"] == 405

    def test_unknown_endpoint_is_404(self, graph):
        payload = json.dumps({"seeds": [0]}).encode()
        raw = (
            b"POST /nope HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(payload), payload)
        )
        status, body = asyncio.run(self._exchange(raw)(graph))
        assert status.startswith("HTTP/1.1 404")
        assert "/v1/cluster" in body["error"]["message"]

    def test_bad_field_is_400_with_field_name(self, graph):
        payload = json.dumps(
            {"v": 1, "seeds": [0], "params": {"epsilon": 1e-4}}
        ).encode()
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
            % (len(payload), payload)
        )
        status, body = asyncio.run(self._exchange(raw)(graph))
        assert status.startswith("HTTP/1.1 400")
        assert body["error"]["field"] == "params.epsilon"

    def test_keep_alive_serves_consecutive_posts(self, graph):
        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    reader, writer = await connect(server)
                    replies = []
                    for seed in (0, 1):
                        body = json.dumps(
                            {"seeds": [seed], "params": dict(PARAMS)}
                        ).encode()
                        writer.write(
                            b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                            % (len(body), body)
                        )
                        await writer.drain()
                        status = (await reader.readline()).decode()
                        assert status.startswith("HTTP/1.1 200")
                        length = 0
                        while True:
                            header = await reader.readline()
                            if header in (b"\r\n", b"\n"):
                                break
                            if header.lower().startswith(b"content-length:"):
                                length = int(header.split(b":")[1])
                        replies.append(json.loads(await reader.readexactly(length)))
                    writer.close()
                    return replies

        replies = asyncio.run(scenario())
        assert [r["seeds"] for r in replies] == [[0], [1]]
        assert all(r["size"] > 0 for r in replies)


class TestWireValidation:
    def test_structured_errors_name_the_offending_field(self, graph):
        async def scenario():
            async with DiffusionService(graph, max_linger=0.001) as service:
                async with DiffusionServer(service) as server:
                    return await roundtrip(
                        server,
                        {"v": 1, "seeds": [0], "bogus": 1, "id": "a"},
                        {"seeds": [0], "method": "page-rank", "id": "b"},
                        {"seeds": [0], "kernel": "fortran", "id": "c"},
                        {"seeds": [0], "priority": "urgent", "id": "d"},
                    )

        replies = asyncio.run(scenario())
        errors = {r["id"]: r["error"] for r in replies}
        assert errors["a"]["field"] == "bogus"
        assert "wire schema v1" in errors["a"]["message"]
        assert errors["b"]["field"] == "method"
        assert errors["c"]["field"] == "kernel"
        assert errors["d"]["field"] == "priority"
        assert all(e["code"] == 400 for e in errors.values())


class TestCLIListen:
    def test_serve_listen_round_trip_over_a_real_socket(self, tmp_path):
        """`repro serve --listen` in a subprocess: parse the bound address
        from stderr, round-trip a request, close stdin, clean exit."""
        import socket
        import subprocess
        import sys

        from repro.graph import paper_figure1_graph, save_npz

        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(path),
             "--listen", "127.0.0.1:0"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = proc.stderr.readline()
            assert banner.startswith("serve: listening on "), banner
            host, port = banner.rsplit(" ", 1)[1].strip().rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                sock.sendall(
                    (json.dumps({"id": "q", "seeds": 0,
                                 "params": {"eps": 1e-4}}) + "\n").encode()
                )
                stream = sock.makefile("r")
                reply = json.loads(stream.readline())
            assert reply["id"] == "q" and reply["size"] > 0
            # communicate() closes stdin — the supervisor hang-up signal
            # that asks the server to drain and exit.
            _, err = proc.communicate(input="", timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "requests=1" in err and "replies=1" in err
