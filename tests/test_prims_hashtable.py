"""Tests for the vectorised linear-probing hash table (repro.prims.hashtable).

The table is checked against a plain dict model, including under randomised
operation sequences (the hypothesis tests), heavy collision loads and
growth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prims import IntFloatHashTable

keys_strategy = st.lists(st.integers(min_value=0, max_value=2**50), min_size=0, max_size=200)


class TestBasicOperations:
    def test_empty_table(self):
        table = IntFloatHashTable()
        assert len(table) == 0
        assert 7 not in table
        assert table.lookup(np.array([1, 2, 3])).tolist() == [0.0, 0.0, 0.0]

    def test_accumulate_and_lookup(self):
        table = IntFloatHashTable()
        table.accumulate(np.array([5, 5, 9]), np.array([1.0, 2.0, 3.0]))
        assert table.get_one(5) == 3.0
        assert table.get_one(9) == 3.0
        assert table.get_one(123) == 0.0
        assert len(table) == 2

    def test_bottom_element_is_zero(self):
        # The paper's sparse-set convention: absent keys read as ⊥ = 0.
        table = IntFloatHashTable()
        assert table.lookup(np.array([42]), default=0.0)[0] == 0.0
        assert table.lookup(np.array([42]), default=-1.0)[0] == -1.0

    def test_assign_overwrites(self):
        table = IntFloatHashTable()
        table.assign(np.array([1, 2]), np.array([10.0, 20.0]))
        table.assign(np.array([2, 3]), np.array([99.0, 30.0]))
        assert table.get_one(1) == 10.0
        assert table.get_one(2) == 99.0
        assert table.get_one(3) == 30.0

    def test_assign_duplicate_keys_last_wins(self):
        table = IntFloatHashTable()
        table.assign(np.array([7, 7, 7]), np.array([1.0, 2.0, 3.0]))
        assert table.get_one(7) == 3.0
        assert len(table) == 1

    def test_scalar_operations(self):
        table = IntFloatHashTable()
        table.set_one(11, 1.5)
        table.add_one(11, 0.5)
        table.add_one(12, 2.0)
        assert table.get_one(11) == 2.0
        assert table.get_one(12) == 2.0
        assert 11 in table and 13 not in table

    def test_items_returns_all_entries(self):
        table = IntFloatHashTable()
        expected = {k: float(k) * 2 for k in range(50)}
        table.assign(np.arange(50), np.arange(50) * 2.0)
        keys, values = table.items()
        assert dict(zip(keys.tolist(), values.tolist())) == expected

    def test_clear(self):
        table = IntFloatHashTable()
        table.assign(np.arange(100), 1.0)
        table.clear()
        assert len(table) == 0
        assert table.get_one(5) == 0.0

    def test_empty_batches_are_noops(self):
        table = IntFloatHashTable()
        table.accumulate(np.array([], dtype=np.int64), np.array([]))
        table.assign(np.array([], dtype=np.int64), np.array([]))
        assert len(table) == 0


class TestGrowthAndCollisions:
    def test_growth_preserves_contents(self):
        table = IntFloatHashTable()  # minimum capacity
        n = 10_000
        table.accumulate(np.arange(n), np.ones(n))
        assert len(table) == n
        assert table.capacity >= 2 * n  # load factor <= 1/2
        assert np.array_equal(table.lookup(np.arange(n)), np.ones(n))

    def test_load_factor_bounded(self):
        table = IntFloatHashTable()
        for start in range(0, 5000, 500):
            table.accumulate(np.arange(start, start + 500), 1.0)
            assert len(table) * 2 <= table.capacity

    def test_adversarial_same_slot_keys(self):
        # Keys spaced by the capacity multiple all target nearby slots,
        # exercising long probe chains.
        table = IntFloatHashTable()
        keys = np.arange(64, dtype=np.int64) * (2**40)
        table.accumulate(keys, np.arange(64, dtype=np.float64))
        assert np.array_equal(table.lookup(keys), np.arange(64, dtype=np.float64))

    def test_incremental_vs_batch_equivalence(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 500, size=1000)
        deltas = rng.random(1000)
        batch = IntFloatHashTable()
        batch.accumulate(keys, deltas)
        incremental = IntFloatHashTable()
        for k, d in zip(keys.tolist(), deltas.tolist()):
            incremental.add_one(k, d)
        bk, bv = batch.items()
        got = dict(zip(bk.tolist(), bv.tolist()))
        want_keys, want_values = incremental.items()
        want = dict(zip(want_keys.tolist(), want_values.tolist()))
        assert set(got) == set(want)
        for key in got:
            assert got[key] == pytest.approx(want[key], rel=1e-12)


class TestAgainstDictModel:
    @given(keys_strategy, st.data())
    def test_accumulate_matches_dict(self, keys, data):
        deltas = data.draw(
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=len(keys),
                max_size=len(keys),
            )
        )
        table = IntFloatHashTable()
        table.accumulate(np.asarray(keys, dtype=np.int64), np.asarray(deltas))
        model: dict[int, float] = {}
        for k, d in zip(keys, deltas):
            model[k] = model.get(k, 0.0) + d
        assert len(table) == len(model)
        for k, v in model.items():
            assert table.get_one(k) == pytest.approx(v, rel=1e-9, abs=1e-12)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["accumulate", "assign", "lookup"]),
                st.lists(st.integers(0, 40), min_size=1, max_size=20),
            ),
            max_size=20,
        )
    )
    def test_operation_sequences_match_dict(self, operations):
        table = IntFloatHashTable()
        model: dict[int, float] = {}
        for op, key_list in operations:
            keys = np.asarray(key_list, dtype=np.int64)
            values = np.asarray([float(k) + 1.0 for k in key_list])
            if op == "accumulate":
                table.accumulate(keys, values)
                for k, v in zip(key_list, values.tolist()):
                    model[k] = model.get(k, 0.0) + v
            elif op == "assign":
                table.assign(keys, values)
                for k, v in zip(key_list, values.tolist()):
                    model[k] = v
            else:
                got = table.lookup(keys)
                want = [model.get(k, 0.0) for k in key_list]
                assert got.tolist() == pytest.approx(want, rel=1e-9, abs=1e-12)
        assert len(table) == len(model)
