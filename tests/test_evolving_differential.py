"""Differential spine of the evolving-graph plane.

The incremental path (:func:`repro.core.pr_nibble.pr_nibble_update`) and
the cross-version cache reuse (:func:`repro.cache.advance_version`) are
both *shortcuts* whose only excuse is matching what a cold run on the
new version would produce.  Hypothesis generates version chains —
random base graphs plus random insert/delete batches — and checks:

* the incremental state satisfies exactly the invariants a cold
  ``pr_nibble_sequential`` run at the same ``eps`` guarantees: the
  ``|r(v)| < eps * d(v)`` terminal condition, and the push invariant
  ``p + M r = M s`` (via :func:`pr_nibble_residual` the carried residual
  must *be* the one the pagerank vector implies);
* incremental and cold solutions agree to the theory bound: both are
  ``M (s - r)`` with ``|r| <= eps * d`` entrywise, so their L1 gap over
  positive-degree vertices is at most ``2 * eps * vol(G)``;
* updates far from the seed's support leave the execution literally
  untouched: incremental output is bit-identical to cold, sweep and all;
* cache entries migrated across a version are *never stale*: any hit
  served on the new version equals a cold recompute bit-for-bit;
* post-splice CSR arrays are first-class citizens of every execution
  plane: serial, process-pool and sharded backends (and every compiled
  kernel available) produce identical outcomes on an updated version.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ResultCache, advance_version
from repro.core import PRNibbleParams, pr_nibble_residual, pr_nibble_update, sweep_cut
from repro.core.pr_nibble import pr_nibble_sequential
from repro.core.result import vector_items
from repro.engine import BatchEngine, DiffusionJob
from repro.graph import EvolvingGraph, cycle_graph, from_edge_list
from repro.kernels import available_kernels

MAX_VERTICES = 20

vertex = st.integers(0, MAX_VERTICES - 1)
edge = st.tuples(vertex, vertex).filter(lambda pair: pair[0] != pair[1])
edge_lists = st.lists(edge, min_size=1, max_size=60)


@st.composite
def chains(draw, max_batches=2):
    """A version chain: random base graph plus 1..max_batches update batches."""
    base = from_edge_list(draw(edge_lists), num_vertices=MAX_VERTICES)
    # Mixed thresholds exercise both materialisation paths in one chain.
    threshold = draw(st.sampled_from([0.0, 0.25, 1.0]))
    chain = EvolvingGraph(base, rebuild_threshold=threshold)
    for _ in range(draw(st.integers(1, max_batches))):
        insertions = draw(st.lists(edge, max_size=6))
        deletions = [
            pair
            for pair in draw(st.lists(edge, max_size=6))
            if tuple(sorted(pair)) not in {tuple(sorted(ins)) for ins in insertions}
        ]
        chain.apply_updates(insertions=insertions, deletions=deletions)
    return chain


params_grid = st.sampled_from(
    [
        PRNibbleParams(alpha=0.1, eps=1e-4, optimized=True),
        PRNibbleParams(alpha=0.1, eps=1e-4, optimized=False),
        PRNibbleParams(alpha=0.05, eps=1e-3, optimized=True),
    ]
)


def positive_degree_l1_gap(graph, left, right) -> float:
    """L1 distance between two sparse vectors over positive-degree vertices."""
    keys = set(vector_items(left)[0].tolist()) | set(vector_items(right)[0].tolist())
    left = dict(zip(*(arr.tolist() for arr in vector_items(left))))
    right = dict(zip(*(arr.tolist() for arr in vector_items(right))))
    return sum(
        abs(left.get(v, 0.0) - right.get(v, 0.0))
        for v in keys
        if graph.degree(v) > 0
    )


@given(chain=chains(), seed=vertex, params=params_grid)
def test_incremental_maintains_cold_invariants(chain, seed, params):
    prior = pr_nibble_sequential(chain.at(0).graph, seed, params)
    for k in range(1, len(chain)):
        prior = pr_nibble_update(chain.at(k), prior, seed, params=params)
    final = chain.latest.graph
    residual = prior.extras["residual"]
    assert prior.extras["incremental"] is True

    # 1. Terminal condition: every positive-degree vertex is below the
    #    push-eligibility threshold (signed: deletions retract mass).
    keys, values = vector_items(residual)
    for v, r_v in zip(keys.tolist(), values.tolist()):
        degree = final.degree(int(v))
        if degree > 0:
            assert abs(r_v) < params.eps * degree

    # 2. Push invariant p + M r = M s: the carried residual must equal the
    #    residual the pagerank vector implies on the final graph.
    implied = pr_nibble_residual(final, prior.vector, seed, params.alpha)
    implied_map = dict(zip(*(arr.tolist() for arr in vector_items(implied))))
    carried_map = dict(zip(keys.tolist(), values.tolist()))
    for v in set(implied_map) | set(carried_map):
        assert implied_map.get(v, 0.0) == pytest.approx(
            carried_map.get(v, 0.0), abs=1e-9
        )

    # 3. Solution gap vs a cold run, bounded by the approximation theory.
    cold = pr_nibble_sequential(final, seed, params)
    volume = len(final.neighbors)
    gap = positive_degree_l1_gap(final, prior.vector, cold.vector)
    assert gap <= 2.0 * params.eps * volume + 1e-12


def test_far_update_is_bit_identical_to_cold():
    # An update disjoint from the diffusion's support changes nothing the
    # run reads, so incremental must land on the *same* state as cold —
    # not approximately: identically, sweep included.
    chain = EvolvingGraph(cycle_graph(200))
    params = PRNibbleParams(alpha=0.1, eps=1e-3)
    prior = pr_nibble_sequential(chain.at(0).graph, 0, params)
    v1 = chain.apply_updates(insertions=[(100, 103)], deletions=[(110, 111)])
    incremental = pr_nibble_update(v1, prior, 0, params=params)
    cold = pr_nibble_sequential(v1.graph, 0, params)
    assert incremental.extras["corrected_endpoints"] == 0
    assert incremental.pushes == 0  # nothing to re-push
    inc_keys, inc_values = vector_items(incremental.vector)
    cold_keys, cold_values = vector_items(cold.vector)
    assert np.array_equal(np.sort(inc_keys), np.sort(cold_keys))
    inc_map = dict(zip(inc_keys.tolist(), inc_values.tolist()))
    cold_map = dict(zip(cold_keys.tolist(), cold_values.tolist()))
    assert inc_map == cold_map
    inc_sweep = sweep_cut(v1.graph, incremental.vector)
    cold_sweep = sweep_cut(v1.graph, cold.vector)
    assert inc_sweep.best_conductance == cold_sweep.best_conductance
    assert np.array_equal(inc_sweep.order, cold_sweep.order)


def test_incremental_requires_residual_and_parent(small_cycle):
    chain = EvolvingGraph(small_cycle)
    params = PRNibbleParams(alpha=0.1, eps=1e-3)
    with pytest.raises(ValueError, match="no parent"):
        pr_nibble_update(chain.at(0), pr_nibble_sequential(small_cycle, 0, params), 0)
    v1 = chain.apply_updates(insertions=[(0, 6)])
    prior = pr_nibble_sequential(small_cycle, 0, params)
    prior.extras.pop("residual")
    with pytest.raises(ValueError, match="no residual"):
        pr_nibble_update(v1, prior, 0, params=params)


@settings(max_examples=20)
@given(chain=chains(max_batches=1), seeds=st.lists(vertex, min_size=1, max_size=4))
def test_migrated_cache_entries_are_never_stale(chain, seeds):
    # Whatever advance_version decides to carry forward, a hit served on
    # the new version must equal a cold recompute on the new version.
    cache = ResultCache()
    warm = BatchEngine(chain, cache=cache, include_vectors=True, graph_version=0)
    jobs = [
        DiffusionJob.make(seed, params={"alpha": 0.1, "eps": 1e-3})
        for seed in sorted(set(seeds))
    ]
    warm.run(jobs)
    advance_version(cache, chain.at(1))
    replayed = BatchEngine(chain, cache=cache, include_vectors=True).run(jobs)
    cold = BatchEngine(chain.at(1).graph, include_vectors=True).run(jobs)
    hits = 0
    for replay, reference in zip(replayed, cold):
        if not replay.cached:
            continue
        hits += 1
        assert replay.support_size == reference.support_size
        assert np.array_equal(replay.vector_keys, reference.vector_keys)
        assert np.array_equal(replay.vector_values, reference.vector_values)
        if reference.sweep is not None:
            assert replay.sweep.best_conductance == reference.sweep.best_conductance
    # Not vacuous in aggregate: hypothesis will generate disjoint updates.


class TestUpdatedVersionAcrossPlanes:
    """Post-splice arrays are valid inputs to every execution backend."""

    def build_chain(self, planted):
        chain = EvolvingGraph(planted)
        chain.apply_updates(
            insertions=[(0, 1500), (7, 9)], deletions=[(0, 1), (200, 201)]
        )
        return chain

    def jobs(self):
        return [
            DiffusionJob.make(seed, params={"alpha": 0.1, "eps": 1e-4})
            for seed in (0, 50, 200, 1500)
        ]

    def outcomes_equal(self, left, right):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert a.support_size == b.support_size
            assert a.pushes == b.pushes
            assert np.array_equal(a.vector_keys, b.vector_keys)
            assert np.array_equal(a.vector_values, b.vector_values)

    @pytest.fixture
    def reference(self, planted):
        chain = self.build_chain(planted)
        return chain, BatchEngine(chain, include_vectors=True).run(self.jobs())

    @pytest.mark.parametrize("workers", [2])
    def test_process_backend_matches_serial(self, reference, workers):
        chain, serial = reference
        engine = BatchEngine(chain, workers=workers, include_vectors=True)
        try:
            self.outcomes_equal(engine.run(self.jobs()), serial)
        finally:
            engine.backend.close() if hasattr(engine.backend, "close") else None

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_backend_matches_serial(self, reference, shards):
        chain, serial = reference
        engine = BatchEngine(chain, shards=shards, include_vectors=True)
        self.outcomes_equal(engine.run(self.jobs()), serial)

    @pytest.mark.parametrize(
        "kernel",
        [name for name in available_kernels() if name != "python"]
        or [pytest.param("none", marks=pytest.mark.skip(reason="no compiled kernel"))],
    )
    def test_compiled_kernels_match_python(self, reference, kernel):
        chain, serial = reference
        engine = BatchEngine(chain, kernel=kernel, parallel=False, include_vectors=True)
        python = BatchEngine(chain, parallel=False, include_vectors=True)
        self.outcomes_equal(engine.run(self.jobs()), python.run(self.jobs()))
