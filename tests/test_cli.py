"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import paper_figure1_graph, save_npz, write_edge_list


class TestGraphsCommand:
    def test_lists_all_proxies(self, capsys):
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        for name in ("soc-LJ", "Yahoo", "3D-grid"):
            assert name in out


class TestGenerateCommand:
    def test_generate_rand_local_npz(self, tmp_path, capsys):
        out = tmp_path / "g.npz"
        assert main(["generate", "rand-local", str(out), "--n", "500"]) == 0
        assert out.exists()
        assert "wrote CSRGraph" in capsys.readouterr().out

    def test_generate_proxy_edge_list(self, tmp_path):
        out = tmp_path / "g.txt"
        assert main(
            ["generate", "proxy", str(out), "--name", "3D-grid", "--scale", "0.05"]
        ) == 0
        assert out.read_text().startswith("#")

    def test_generate_grid_adjacency(self, tmp_path):
        out = tmp_path / "g.adj"
        assert main(["generate", "3d-grid", str(out), "--n", "64"]) == 0
        assert out.read_text().startswith("AdjacencyGraph")


class TestClusterCommand:
    def test_cluster_on_graph_file(self, tmp_path, capsys):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        code = main(
            [
                "cluster",
                str(path),
                "--method",
                "pr-nibble",
                "--seed",
                "0",
                "--param",
                "eps=1e-4",
                "--param",
                "alpha=0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phi=" in out and "members:" in out

    def test_cluster_with_profile(self, tmp_path, capsys):
        path = tmp_path / "fig1.txt"
        write_edge_list(paper_figure1_graph(), path)
        assert main(["cluster", str(path), "--seed", "0", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "simT40=" in out and "speedup=" in out

    def test_cluster_default_seed_is_max_degree(self, tmp_path, capsys):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        assert main(["cluster", str(path)]) == 0
        assert "seed: 3" in capsys.readouterr().out  # vertex D has degree 4

    def test_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "definitely-not-a-graph"])

    def test_bad_param_rejected(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        with pytest.raises(SystemExit):
            main(["cluster", str(path), "--param", "epsilon"])

    def test_cluster_on_proxy(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        assert main(["cluster", "3D-grid", "--param", "eps=1e-4"]) == 0
        assert "cluster:" in capsys.readouterr().out


class TestNcpCommand:
    def test_ncp_csv(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        out = tmp_path / "ncp.csv"
        code = main(
            [
                "ncp",
                "randLocal",
                str(out),
                "--seeds",
                "3",
                "--alpha",
                "0.05",
                "--eps",
                "1e-4",
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines[0] == "size,conductance"
        assert len(lines) > 1


class TestBatchCommand:
    def test_batch_csv_and_summary(self, tmp_path, capsys):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        out = tmp_path / "batch.csv"
        code = main(
            [
                "batch",
                str(path),
                str(out),
                "--seed",
                "0",
                "--seed",
                "5",
                "--grid",
                "alpha=0.1,0.01",
                "--param",
                "eps=1e-4",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "batch: 4 jobs" in printed
        assert "jobs/s" in printed and "best cluster:" in printed
        lines = out.read_text().splitlines()
        assert lines[0].startswith("job,method,seed,params")
        assert len(lines) == 5  # header + 2 seeds x 2 alphas
        assert "alpha=0.1;eps=0.0001" in lines[1]

    def test_batch_workers_match_serial(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        serial, pooled = tmp_path / "serial.csv", tmp_path / "pooled.csv"
        common = ["--seed", "0", "--seed", "5", "--param", "eps=1e-4"]
        assert main(["batch", str(path), str(serial), *common]) == 0
        assert main(["batch", str(path), str(pooled), *common, "--workers", "2"]) == 0

        def stable(text: str) -> list[list[str]]:
            # Drop the per-job seconds column — the only non-deterministic field.
            return [line.split(",")[:-1] for line in text.splitlines()]

        assert stable(serial.read_text()) == stable(pooled.read_text())

    def test_batch_bad_grid_rejected(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        with pytest.raises(SystemExit):
            main(["batch", str(path), str(tmp_path / "o.csv"), "--grid", "alpha"])

    def test_batch_random_seeds_on_proxy(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.05")
        out = tmp_path / "batch.csv"
        code = main(
            ["batch", "3D-grid", str(out), "--num-seeds", "3", "--param", "eps=1e-4"]
        )
        assert code == 0
        assert "batch: 3 jobs" in capsys.readouterr().out


class TestShardFlags:
    def _graph(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        return path

    def test_batch_sharded_matches_serial(self, tmp_path):
        path = self._graph(tmp_path)
        serial, sharded = tmp_path / "serial.csv", tmp_path / "sharded.csv"
        base = ["--seed", "0", "--seed", "5", "--param", "eps=1e-4"]
        assert main(["batch", str(path), str(serial), *base]) == 0
        assert (
            main(
                ["batch", str(path), str(sharded), *base,
                 "--shards", "2", "--max-resident-shards", "1"]
            )
            == 0
        )

        def stable(text):  # drop the per-job seconds column
            return [line.rsplit(",", 1)[0] for line in text.splitlines()]

        assert stable(serial.read_text()) == stable(sharded.read_text())

    def test_shard_tuning_flags_require_shards(self, tmp_path):
        path = self._graph(tmp_path)
        out = tmp_path / "batch.csv"
        with pytest.raises(SystemExit, match="--max-resident-shards requires --shards"):
            main(["batch", str(path), str(out), "--seed", "0",
                  "--max-resident-shards", "2"])
        with pytest.raises(SystemExit, match="--spill-shards requires --shards"):
            main(["serve", str(path), "--spill-shards", "2"])

    def test_shards_conflicts_with_pool_flags(self, tmp_path):
        path = self._graph(tmp_path)
        out = tmp_path / "batch.csv"
        with pytest.raises(SystemExit, match="incompatible with --workers"):
            main(["batch", str(path), str(out), "--seed", "0",
                  "--shards", "2", "--workers", "4"])
        with pytest.raises(SystemExit, match="--start-method"):
            main(["serve", str(path), "--shards", "2", "--start-method", "spawn"])


class TestNcpWorkers:
    def test_ncp_workers_identical_csv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        serial, pooled = tmp_path / "serial.csv", tmp_path / "pooled.csv"
        common = ["randLocal", "--seeds", "3", "--alpha", "0.05", "--eps", "1e-4"]
        assert main(["ncp", common[0], str(serial), *common[1:]]) == 0
        assert main(["ncp", common[0], str(pooled), *common[1:], "--workers", "2"]) == 0
        assert serial.read_text() == pooled.read_text()


class TestServeCommand:
    def _request_lines(self, *requests):
        import io
        import json

        return io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")

    def test_serve_answers_in_request_order(self, tmp_path, capsys, monkeypatch):
        import json

        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        monkeypatch.setattr(
            "sys.stdin",
            self._request_lines(
                {"id": "q1", "seeds": 0, "params": {"eps": 1e-4}},
                {"id": "q2", "seeds": [4], "priority": "bulk"},
                {"id": "q3", "seeds": 1},
            ),
        )
        assert main(["serve", str(path), "--max-linger", "0"]) == 0
        captured = capsys.readouterr()
        replies = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in replies] == ["q1", "q2", "q3"]
        assert all(r["size"] > 0 for r in replies)
        assert replies[0]["method"] == "pr-nibble"
        assert "serve: submitted=3" in captured.err

    def test_serve_reports_bad_requests_and_continues(self, tmp_path, capsys, monkeypatch):
        import json

        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                "this is not json\n"
                + json.dumps({"seeds": 9999}) + "\n"
                + json.dumps({"seeds": 0}) + "\n"
            ),
        )
        assert main(["serve", str(path)]) == 0
        replies = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        # Errors are structured objects naming the offending field, not
        # stringified tracebacks (shared codec with the socket transport).
        assert "not valid JSON" in replies[0]["error"]["message"]
        assert replies[0]["error"]["code"] == 400
        assert "out of range" in replies[1]["error"]["message"]
        assert replies[1]["error"]["field"] == "seeds"
        assert replies[2]["size"] > 0

    def test_serve_start_method_without_workers_rejected(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", str(path), "--start-method", "spawn"])

    def test_serve_with_cache_marks_replays(self, tmp_path, capsys, monkeypatch):
        import json

        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        monkeypatch.setattr(
            "sys.stdin",
            self._request_lines({"seeds": 0}, {"seeds": 0}),
        )
        assert main(["serve", str(path), "--cache"]) == 0
        replies = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [r["cached"] for r in replies] == [False, True]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "graphs"],
            capture_output=True,
            text=True,
            check=True,
        )
        assert "soc-LJ" in result.stdout


class TestUpdateCommand:
    def _graph_path(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        return path

    def test_update_with_loose_edges_writes_new_version(self, tmp_path, capsys):
        path = self._graph_path(tmp_path)
        out = tmp_path / "v1.npz"
        assert main(
            ["update", str(path), str(out), "--insert", "0", "3", "--delete", "0", "1"]
        ) == 0
        assert out.exists()
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("version 0: fingerprint ")
        assert lines[1].startswith("version 1: fingerprint ")
        assert "+1/-1 requested" in lines[1]
        assert "(delta-splice)" in lines[1] or "(rebuild)" in lines[1]
        assert lines[-1].startswith("wrote ")
        # The written graph is the updated one, loadable by other commands.
        assert main(["cluster", str(out), "--seed", "0", "--param", "eps=1e-4"]) == 0

    def test_update_file_batches_become_versions(self, tmp_path, capsys):
        path = self._graph_path(tmp_path)
        updates = tmp_path / "updates.txt"
        updates.write_text(
            "# warm-up batch\n"
            "+ 0 3\n"
            "- 0 1\n"
            "--\n"
            "+ 0 1\n"
        )
        out = tmp_path / "v2.npz"
        assert main(["update", str(path), str(out), "--updates", str(updates)]) == 0
        output = capsys.readouterr().out
        assert "version 1: fingerprint" in output
        assert "version 2: fingerprint" in output

    def test_update_without_edits_rejected(self, tmp_path):
        path = self._graph_path(tmp_path)
        with pytest.raises(SystemExit, match="nothing to apply"):
            main(["update", str(path), str(tmp_path / "out.npz")])

    def test_malformed_update_file_names_line(self, tmp_path):
        path = self._graph_path(tmp_path)
        updates = tmp_path / "updates.txt"
        updates.write_text("+ 0 3\n* 1 2\n")
        with pytest.raises(SystemExit, match=r"updates\.txt:2: expected"):
            main(["update", str(path), str(tmp_path / "out.npz"), "--updates", str(updates)])

    def test_non_integer_vertices_name_line(self, tmp_path):
        path = self._graph_path(tmp_path)
        updates = tmp_path / "updates.txt"
        updates.write_text("+ a b\n")
        with pytest.raises(SystemExit, match=r"updates\.txt:1: vertex ids"):
            main(["update", str(path), str(tmp_path / "out.npz"), "--updates", str(updates)])


class TestVersionFlags:
    def _graph_and_updates(self, tmp_path):
        path = tmp_path / "fig1.npz"
        save_npz(paper_figure1_graph(), path)
        updates = tmp_path / "updates.txt"
        updates.write_text("- 0 1\n--\n+ 0 1\n")
        return path, updates

    def test_cluster_at_version_prints_chain_position(self, tmp_path, capsys):
        path, updates = self._graph_and_updates(tmp_path)
        assert main(
            [
                "cluster", str(path), "--seed", "0", "--param", "eps=1e-4",
                "--updates", str(updates), "--at-version", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "version 1/2: fingerprint " in out
        assert "phi=" in out

    def test_cluster_updates_default_to_latest_version(self, tmp_path, capsys):
        path, updates = self._graph_and_updates(tmp_path)
        assert main(
            [
                "cluster", str(path), "--seed", "0", "--param", "eps=1e-4",
                "--updates", str(updates),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "version 2/2: fingerprint " in out
        # v2 re-inserts the deleted edge: identical answer to the base graph.
        assert main(["cluster", str(path), "--seed", "0", "--param", "eps=1e-4"]) == 0
        base_out = capsys.readouterr().out
        phi = next(line for line in out.splitlines() if "phi=" in line)
        assert phi in base_out

    def test_missing_version_rejected(self, tmp_path):
        path, updates = self._graph_and_updates(tmp_path)
        with pytest.raises(SystemExit, match=r"--at-version 9 does not exist"):
            main(
                [
                    "cluster", str(path), "--seed", "0",
                    "--updates", str(updates), "--at-version", "9",
                ]
            )

    def test_serve_honours_wire_graph_version(self, tmp_path, capsys, monkeypatch):
        import io
        import json

        path, updates = self._graph_and_updates(tmp_path)
        requests = [
            {"id": "pinned", "seeds": 0, "graph_version": 1, "params": {"eps": 1e-4}},
            {"id": "latest", "seeds": 0, "params": {"eps": 1e-4}},
            {"id": "missing", "seeds": 0, "graph_version": 9},
        ]
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n"),
        )
        assert main(
            ["serve", str(path), "--updates", str(updates), "--max-linger", "0"]
        ) == 0
        replies = {
            r["id"]: r
            for r in map(json.loads, capsys.readouterr().out.splitlines())
        }
        # v1 deletes an edge at vertex 0; v2 restores it, so the pinned
        # reply must differ from the latest-version reply.
        assert replies["pinned"]["size"] > 0 and replies["latest"]["size"] > 0
        assert (
            replies["pinned"]["pushes"] != replies["latest"]["pushes"]
            or replies["pinned"]["size"] != replies["latest"]["size"]
        )
        assert replies["missing"]["error"]["code"] == 404
        assert replies["missing"]["error"]["field"] == "graph_version"
